//! Cross-rack traffic analysis (paper §2.2 and Figure 3).
//!
//! For host-contiguous rings, the network cost signature is how many ring
//! edges cross rack boundaries. An optimal (locality-aware) ring visits
//! each rack contiguously and therefore crosses exactly `R` times for `R`
//! racks (cyclically); a worst-case ring alternates racks on every hop. The
//! paper's *cross-rack ratio* normalizes a ring's crossings to the optimal
//! ring's.

use mccs_sim::Rng;
use mccs_topology::{HostId, Topology};

/// Number of rack transitions of a cyclic host sequence.
pub fn cross_rack_edges(topo: &Topology, host_ring: &[HostId]) -> usize {
    let n = host_ring.len();
    if n < 2 {
        return 0;
    }
    (0..n)
        .filter(|&i| {
            let a = topo.rack_of(host_ring[i]);
            let b = topo.rack_of(host_ring[(i + 1) % n]);
            a != b
        })
        .count()
}

/// Crossings of the optimal ring over the same hosts: `R` for `R > 1`
/// racks, `0` for a single rack.
pub fn optimal_cross_rack_edges(topo: &Topology, hosts: &[HostId]) -> usize {
    let mut racks: Vec<_> = hosts.iter().map(|&h| topo.rack_of(h)).collect();
    racks.sort_unstable();
    racks.dedup();
    if racks.len() <= 1 {
        0
    } else {
        racks.len()
    }
}

/// The paper's cross-rack ratio: a ring's crossings over the optimal
/// ring's. Both zero (single rack) counts as ratio 1.
pub fn cross_rack_ratio(topo: &Topology, host_ring: &[HostId]) -> f64 {
    let actual = cross_rack_edges(topo, host_ring);
    let optimal = optimal_cross_rack_edges(topo, host_ring);
    if optimal == 0 {
        1.0
    } else {
        actual as f64 / optimal as f64
    }
}

/// Expected cross-rack ratio of a uniformly random host ring over `hosts`,
/// estimated from `samples` shuffles — the Figure 3 estimator ("if ring
/// ordering is randomly chosen").
pub fn expected_random_ratio(
    topo: &Topology,
    hosts: &[HostId],
    samples: usize,
    rng: &mut Rng,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut ring = hosts.to_vec();
    let mut total = 0.0;
    for _ in 0..samples {
        rng.shuffle(&mut ring);
        total += cross_rack_ratio(topo, &ring);
    }
    total / samples as f64
}

/// The worst-case (adversarial) ratio over `hosts`: every edge crossing
/// when no rack holds a cyclic majority. With `h` hosts per rack fully
/// packed, this is `h` — the paper's "2x [2 hosts/rack] ... becomes 4x
/// [4 hosts/rack]".
pub fn worst_case_ratio(topo: &Topology, hosts: &[HostId]) -> f64 {
    // Round-robin racks to maximize transitions.
    let mut by_rack: std::collections::BTreeMap<_, Vec<HostId>> = Default::default();
    for &h in hosts {
        by_rack.entry(topo.rack_of(h)).or_default().push(h);
    }
    let mut queues: Vec<Vec<HostId>> = by_rack.into_values().collect();
    let mut ring = Vec::with_capacity(hosts.len());
    // repeatedly take from the currently largest queue not equal to the
    // previous rack (greedy round-robin yields maximal alternation)
    let mut prev: Option<usize> = None;
    for _ in 0..hosts.len() {
        let (idx, _) = queues
            .iter()
            .enumerate()
            .filter(|(i, q)| Some(*i) != prev && !q.is_empty())
            .max_by_key(|(_, q)| q.len())
            .or_else(|| queues.iter().enumerate().find(|(_, q)| !q.is_empty()))
            .expect("hosts remain");
        ring.push(queues[idx].pop().expect("nonempty"));
        prev = Some(idx);
    }
    cross_rack_ratio(topo, &ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_sim::Bandwidth;
    use mccs_topology::presets::{self, SpineLeafConfig};

    fn topo_hosts_per_rack(hpr: usize, racks: usize) -> Topology {
        presets::spine_leaf(&SpineLeafConfig {
            spines: 2,
            leaves: racks,
            hosts_per_leaf: hpr,
            gpus_per_host: 1,
            nic_bandwidth: Bandwidth::gbps(100.0),
            leaf_spine_bandwidth: Bandwidth::gbps(100.0),
        })
    }

    #[test]
    fn optimal_ring_crosses_once_per_rack() {
        let t = topo_hosts_per_rack(2, 3);
        let hosts: Vec<HostId> = (0..6).map(HostId).collect();
        // id order = rack-contiguous = optimal
        assert_eq!(cross_rack_edges(&t, &hosts), 3);
        assert_eq!(optimal_cross_rack_edges(&t, &hosts), 3);
        assert!((cross_rack_ratio(&t, &hosts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_ring_crosses_every_edge() {
        let t = topo_hosts_per_rack(2, 2);
        // racks: {0,1}, {2,3}; alternate them
        let ring = vec![HostId(0), HostId(2), HostId(1), HostId(3)];
        assert_eq!(cross_rack_edges(&t, &ring), 4);
        assert!((cross_rack_ratio(&t, &ring) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_matches_hosts_per_rack() {
        for hpr in [2usize, 4] {
            let t = topo_hosts_per_rack(hpr, 4);
            let hosts: Vec<HostId> = (0..(hpr * 4) as u32).map(HostId).collect();
            let w = worst_case_ratio(&t, &hosts);
            assert!(
                (w - hpr as f64).abs() < 1e-12,
                "hpr={hpr}: worst-case ratio {w}"
            );
        }
    }

    #[test]
    fn single_rack_job_has_ratio_one() {
        let t = topo_hosts_per_rack(4, 2);
        let hosts = vec![HostId(0), HostId(1), HostId(2)];
        assert_eq!(optimal_cross_rack_edges(&t, &hosts), 0);
        assert!((cross_rack_ratio(&t, &hosts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_ratio_grows_with_job_size() {
        // The Figure 3 trend: larger jobs suffer worse expected ratios.
        let t = topo_hosts_per_rack(2, 64);
        let mut rng = Rng::seed_from(42);
        let small: Vec<HostId> = (0..4).map(HostId).collect();
        let large: Vec<HostId> = (0..64).map(HostId).collect();
        let r_small = expected_random_ratio(&t, &small, 300, &mut rng);
        let r_large = expected_random_ratio(&t, &large, 300, &mut rng);
        assert!(
            r_large > r_small,
            "expected ratio should grow: {r_small} vs {r_large}"
        );
        // asymptote below 2 for 2 hosts/rack
        assert!(r_large < 2.0 + 1e-9);
        assert!(r_large > 1.5);
    }

    #[test]
    fn two_host_ring() {
        let t = topo_hosts_per_rack(1, 2);
        let ring = vec![HostId(0), HostId(1)];
        // both edges (there and back) cross
        assert_eq!(cross_rack_edges(&t, &ring), 2);
        assert_eq!(optimal_cross_rack_edges(&t, &ring), 2);
    }
}
