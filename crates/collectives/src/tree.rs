//! Tree algorithms.
//!
//! The paper's prototype ports NCCL's ring AllReduce/AllGather kernels and
//! notes that "it is straightforward to implement other collective
//! operations ... and other algorithms (e.g., tree algorithms)". This
//! module provides that extension: a host-contiguous double-phase tree
//! (reduce up, broadcast down) for AllReduce and a binomial-style chain for
//! Broadcast/Reduce, with edge loads expressed as [`EdgeTask`]s so the same
//! execution machinery runs them.
//!
//! Tree AllReduce moves `S` up and `S` down each tree edge (versus
//! `2(n−1)/n·S` per ring edge), trading bandwidth for latency: fewer
//! serialized hops make trees win for small buffers — the classic
//! NCCL ring/tree crossover the algorithm chooser reproduces.

use crate::op::CollectiveOp;
use crate::schedule::{ChannelSchedule, CollectiveSchedule, EdgeTask};
use mccs_sim::Bytes;
use mccs_topology::{GpuId, Topology};

/// A rooted tree over a communicator's GPUs: `parent[i]` indexes into
/// `gpus` (`None` for the root).
#[derive(Clone, Debug)]
pub struct TreeOrder {
    gpus: Vec<GpuId>,
    parent: Vec<Option<usize>>,
}

impl TreeOrder {
    /// A balanced binary tree over `gpus` in the given order (position 0 is
    /// the root; position `i`'s parent is `(i−1)/2`). Supplying a
    /// locality order (hosts contiguous) keeps most edges local.
    pub fn binary(gpus: Vec<GpuId>) -> Self {
        assert!(!gpus.is_empty(), "empty tree");
        let parent = (0..gpus.len())
            .map(|i| if i == 0 { None } else { Some((i - 1) / 2) })
            .collect();
        TreeOrder { gpus, parent }
    }

    /// A chain (degenerate tree): each node's parent is its predecessor.
    /// This is the pipeline topology for Broadcast/Reduce.
    pub fn chain(gpus: Vec<GpuId>) -> Self {
        assert!(!gpus.is_empty(), "empty chain");
        let parent = (0..gpus.len())
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        TreeOrder { gpus, parent }
    }

    /// Participant count.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// Whether the tree is empty (never true; constructors reject empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The GPUs, in construction order.
    pub fn gpus(&self) -> &[GpuId] {
        &self.gpus
    }

    /// Depth of the tree (edges on the longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        (0..self.gpus.len())
            .map(|mut i| {
                let mut d = 0;
                while let Some(p) = self.parent[i] {
                    d += 1;
                    i = p;
                }
                d
            })
            .max()
            .unwrap_or(0)
    }

    /// The directed `(child, parent)` edges.
    pub fn up_edges(&self) -> Vec<(GpuId, GpuId)> {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (self.gpus[i], self.gpus[p])))
            .collect()
    }
}

/// Build a tree schedule for `op`. AllReduce sends `S` up every edge
/// (reduce) and `S` down every edge (broadcast); Broadcast sends `S` down;
/// Reduce sends `S` up. AllGather/ReduceScatter fall back to ring-like
/// per-edge loads and are better served by [`CollectiveSchedule::ring`].
pub fn tree_schedule(
    topo: &Topology,
    op: CollectiveOp,
    size: Bytes,
    trees: &[TreeOrder],
) -> CollectiveSchedule {
    assert!(!trees.is_empty(), "need at least one channel tree");
    let n = trees[0].len();
    assert!(
        trees.iter().all(|t| t.len() == n),
        "trees over different GPU sets"
    );
    let k = trees.len() as u64;
    let channels = trees
        .iter()
        .enumerate()
        .map(|(c, tree)| {
            let share = size.split(k, c as u64);
            let mut tasks = Vec::new();
            let mut push = |from: GpuId, to: GpuId, bytes: Bytes| {
                if bytes == Bytes::ZERO {
                    return;
                }
                if topo.same_host(from, to) {
                    tasks.push(EdgeTask::IntraHost { from, to, bytes });
                } else {
                    tasks.push(EdgeTask::InterHost {
                        from,
                        to,
                        src_nic: topo.nic_of_gpu(from),
                        dst_nic: topo.nic_of_gpu(to),
                        bytes,
                    });
                }
            };
            for (child, parent) in tree.up_edges() {
                match op {
                    CollectiveOp::AllReduce(_) => {
                        push(child, parent, share); // reduce up
                        push(parent, child, share); // broadcast down
                    }
                    CollectiveOp::Reduce { .. } => push(child, parent, share),
                    CollectiveOp::Broadcast { .. } => push(parent, child, share),
                    CollectiveOp::AllGather | CollectiveOp::ReduceScatter(_) => {
                        // gather/scatter over the tree: S up or down
                        push(child, parent, share);
                        push(parent, child, share);
                    }
                }
            }
            ChannelSchedule {
                channel: c,
                share,
                tasks,
            }
        })
        .collect();
    CollectiveSchedule {
        op,
        size,
        ranks: n,
        channels,
    }
}

/// The OpenMPI-style static chooser (§2.1: libraries pick among built-in
/// algorithms "based on a set of static factors like data length and the
/// number of participants"): trees for small buffers or very large
/// communicators, rings otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// Bandwidth-optimal ring.
    Ring,
    /// Latency-optimal tree.
    Tree,
}

/// Pick ring vs tree for an AllReduce-like op.
pub fn choose_algorithm(size: Bytes, ranks: usize) -> Algorithm {
    // Ring latency grows linearly in ranks; trees logarithmically. The
    // crossover in NCCL sits around a few hundred KiB for moderate rings.
    let threshold = Bytes::kib(256).as_u64() * (ranks as u64).max(1);
    if size.as_u64() * 8 < threshold {
        Algorithm::Tree
    } else {
        Algorithm::Ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::all_reduce_sum;
    use mccs_topology::presets;

    fn gpus(n: u32) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn binary_tree_structure() {
        let t = TreeOrder::binary(gpus(7));
        assert_eq!(t.len(), 7);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.up_edges().len(), 6);
    }

    #[test]
    fn chain_structure() {
        let t = TreeOrder::chain(gpus(5));
        assert_eq!(t.depth(), 4);
        assert_eq!(t.up_edges().len(), 4);
    }

    #[test]
    fn allreduce_tree_moves_size_both_ways() {
        let topo = presets::testbed();
        let tree = TreeOrder::binary(gpus(8));
        let s = tree_schedule(&topo, all_reduce_sum(), Bytes::mib(4), &[tree]);
        // 7 edges, 2 tasks each
        assert_eq!(s.task_count(), 14);
        assert!(s.channels[0]
            .tasks
            .iter()
            .all(|t| t.bytes() == Bytes::mib(4)));
    }

    #[test]
    fn broadcast_tree_moves_down_only() {
        let topo = presets::testbed();
        let tree = TreeOrder::chain(gpus(4));
        let s = tree_schedule(
            &topo,
            CollectiveOp::Broadcast { root: 0 },
            Bytes::mib(2),
            &[tree],
        );
        assert_eq!(s.task_count(), 3);
    }

    #[test]
    fn tree_uses_fewer_network_bytes_than_ring_for_allreduce() {
        use crate::ring::RingOrder;
        let topo = presets::testbed();
        // one GPU per host so every edge is inter-host
        let ids = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let size = Bytes::mib(8);
        let ring = CollectiveSchedule::ring(
            &topo,
            all_reduce_sum(),
            size,
            &[RingOrder::new(ids.clone())],
        );
        let tree = tree_schedule(&topo, all_reduce_sum(), size, &[TreeOrder::binary(ids)]);
        // ring: 4 edges * 1.5S = 6S; tree: 3 edges * 2S = 6S — equal here,
        // but tree wins on serialized depth (2 vs 4 hops).
        assert_eq!(ring.total_network_bytes(), tree.total_network_bytes());
        assert!(TreeOrder::binary(gpus(4)).depth() < 3);
    }

    #[test]
    fn chooser_picks_tree_for_small_ring_for_large() {
        assert_eq!(choose_algorithm(Bytes::kib(32), 8), Algorithm::Tree);
        assert_eq!(choose_algorithm(Bytes::mib(64), 8), Algorithm::Ring);
        // bigger communicators shift the crossover up
        assert_eq!(choose_algorithm(Bytes::mib(1), 128), Algorithm::Tree);
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn rejects_empty() {
        TreeOrder::binary(vec![]);
    }
}
