//! # mccs-collectives — collective algorithms and schedules
//!
//! The algorithm layer shared by the MCCS service (`mccs-core`) and the
//! NCCL-like baseline (`mccs-baseline`): operation semantics, ring
//! construction, per-edge transfer schedules with multi-channel splitting,
//! tree algorithms, bandwidth accounting (NCCL-tests definitions), and the
//! cross-rack traffic analysis behind the paper's Figure 3.
//!
//! ## Byte accounting
//!
//! All sizes follow the NCCL-tests convention the paper plots (its Figure 6
//! x-axis "Data Size" is the output buffer): a ring over `n` ranks moves
//! `2(n−1)/n · S` bytes per ring edge for AllReduce and `(n−1)/n · S` for
//! AllGather. Bus bandwidth is algorithm bandwidth times the same factor.
//!
//! ## Module map
//! * [`op`] — operation kinds, data types, reduction operators.
//! * [`ring`] — ring orders: raw, NCCL-default (host-grouped in user rank
//!   order), and validation.
//! * [`schedule`] — per-edge transfer schedules with channel splitting and
//!   NIC assignment.
//! * [`tree`] — tree algorithms (the paper notes these are a
//!   straightforward addition; included for completeness).
//! * [`bandwidth`] — algorithm/bus bandwidth conversions.
//! * [`crossrack`] — cross-rack flow counting and ratios (Figure 3).

pub mod bandwidth;
pub mod crossrack;
pub mod op;
pub mod ring;
pub mod schedule;
pub mod tree;

pub use bandwidth::{algo_bandwidth, bus_bandwidth, bus_factor};
pub use op::{CollectiveOp, DataType, ReduceKind};
pub use ring::RingOrder;
pub use schedule::{ChannelSchedule, CollectiveSchedule, EdgeTask, ScheduleKey};
