//! Algorithm and bus bandwidth (NCCL-tests definitions, paper ref [25]).
//!
//! * **Algorithm bandwidth** (`algbw`) — buffer size divided by execution
//!   time; what Figure 6 plots.
//! * **Bus bandwidth** (`busbw`) — `algbw` scaled by an op-dependent factor
//!   so that a ring running at hardware line rate reports the line rate
//!   regardless of participant count; what Figure 8 plots ("it reflects
//!   the hardware peak bandwidth for inter-GPU communication").

use crate::op::CollectiveOp;
use mccs_sim::{Bandwidth, Bytes, Nanos};

/// `algbw = size / time`.
pub fn algo_bandwidth(size: Bytes, time: Nanos) -> Bandwidth {
    let secs = time.as_secs_f64();
    if secs <= 0.0 {
        return Bandwidth::ZERO;
    }
    Bandwidth::bytes_per_sec(size.as_f64() / secs)
}

/// The `busbw / algbw` factor for `op` over `n` ranks.
///
/// AllReduce: `2(n−1)/n`; AllGather/ReduceScatter: `(n−1)/n`;
/// Broadcast/Reduce: `1`.
pub fn bus_factor(op: CollectiveOp, n: usize) -> f64 {
    assert!(n >= 1, "empty communicator");
    let n_f = n as f64;
    match op {
        CollectiveOp::AllReduce(_) => 2.0 * (n_f - 1.0) / n_f,
        CollectiveOp::AllGather | CollectiveOp::ReduceScatter(_) => (n_f - 1.0) / n_f,
        CollectiveOp::Broadcast { .. } | CollectiveOp::Reduce { .. } => 1.0,
    }
}

/// `busbw = algbw * bus_factor`.
pub fn bus_bandwidth(op: CollectiveOp, n: usize, size: Bytes, time: Nanos) -> Bandwidth {
    algo_bandwidth(size, time) * bus_factor(op, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::all_reduce_sum;

    #[test]
    fn algbw_is_size_over_time() {
        let bw = algo_bandwidth(Bytes::new(1_000_000_000), Nanos::from_secs(1));
        assert!((bw.as_gbytes_per_sec() - 1.0).abs() < 1e-12);
        assert_eq!(algo_bandwidth(Bytes::mib(1), Nanos::ZERO), Bandwidth::ZERO);
    }

    #[test]
    fn bus_factors() {
        assert!((bus_factor(all_reduce_sum(), 4) - 1.5).abs() < 1e-12);
        assert!((bus_factor(CollectiveOp::AllGather, 4) - 0.75).abs() < 1e-12);
        assert!((bus_factor(CollectiveOp::Broadcast { root: 0 }, 4) - 1.0).abs() < 1e-12);
        assert!((bus_factor(all_reduce_sum(), 2) - 1.0).abs() < 1e-12);
    }

    /// A ring whose bottleneck edge carries `2(n-1)/n*S` at link rate `B`
    /// must report `busbw == B` — the invariant that makes bus bandwidth
    /// comparable across communicator sizes.
    #[test]
    fn ring_at_line_rate_reports_line_rate() {
        for n in [2usize, 4, 8, 32] {
            let link = Bandwidth::gbps(50.0);
            let size = Bytes::mib(128);
            let edge = all_reduce_sum().ring_edge_bytes(size, n);
            let time = link.transfer_time(edge);
            let bus = bus_bandwidth(all_reduce_sum(), n, size, time);
            let err = (bus.as_gbps() - 50.0).abs();
            assert!(err < 0.1, "n={n}: busbw {}", bus.as_gbps());
        }
    }
}
