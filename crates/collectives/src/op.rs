//! Collective operation semantics.

use mccs_sim::Bytes;
use std::fmt;

/// Element data types (sizes matter for count-to-bytes conversion at the
/// API boundary; the simulator itself moves bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    /// 8-bit integer.
    Int8,
    /// 16-bit float (half).
    Float16,
    /// bfloat16.
    BFloat16,
    /// 32-bit float.
    Float32,
    /// 64-bit float.
    Float64,
    /// 32-bit integer.
    Int32,
    /// 64-bit integer.
    Int64,
}

impl DataType {
    /// Bytes per element.
    pub const fn size(self) -> u64 {
        match self {
            DataType::Int8 => 1,
            DataType::Float16 | DataType::BFloat16 => 2,
            DataType::Float32 | DataType::Int32 => 4,
            DataType::Float64 | DataType::Int64 => 8,
        }
    }

    /// `count` elements as bytes.
    pub fn bytes_for(self, count: u64) -> Bytes {
        Bytes::new(count * self.size())
    }
}

/// Reduction operators for reducing collectives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReduceKind {
    /// Elementwise sum (the deep-learning gradient case).
    #[default]
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Arithmetic mean.
    Avg,
}

/// A collective operation kind.
///
/// `root` ranks are indices within the communicator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CollectiveOp {
    /// Every rank ends with the elementwise reduction of all ranks' data.
    AllReduce(ReduceKind),
    /// Every rank ends with the concatenation of all ranks' chunks.
    AllGather,
    /// Every rank ends with one reduced chunk of the full buffer.
    ReduceScatter(ReduceKind),
    /// `root`'s buffer is copied to every rank.
    Broadcast {
        /// Source rank.
        root: usize,
    },
    /// The reduction of all ranks' data lands on `root` only.
    Reduce {
        /// Destination rank.
        root: usize,
        /// Reduction operator.
        kind: ReduceKind,
    },
}

impl CollectiveOp {
    /// Bytes each ring edge must carry for a ring execution over `n` ranks
    /// with reference buffer size `size` (NCCL-tests "size" semantics:
    /// the output buffer for AllReduce/AllGather/Broadcast, the input
    /// buffer for ReduceScatter/Reduce).
    ///
    /// * AllReduce — reduce-scatter phase + allgather phase: `2(n−1)/n·S`.
    /// * AllGather / ReduceScatter — one phase: `(n−1)/n·S`.
    /// * Broadcast / Reduce — pipelined chain: every edge carries `S`
    ///   (except that a ring-shaped chain has one unused edge; we model the
    ///   full ring for uniformity, a ≤`1/n` overestimate).
    pub fn ring_edge_bytes(self, size: Bytes, n: usize) -> Bytes {
        assert!(n >= 1, "empty communicator");
        if n == 1 {
            return Bytes::ZERO;
        }
        let s = size.as_f64();
        let n_f = n as f64;
        let per_edge = match self {
            CollectiveOp::AllReduce(_) => 2.0 * (n_f - 1.0) / n_f * s,
            CollectiveOp::AllGather | CollectiveOp::ReduceScatter(_) => (n_f - 1.0) / n_f * s,
            CollectiveOp::Broadcast { .. } | CollectiveOp::Reduce { .. } => s,
        };
        Bytes::new(per_edge.round() as u64)
    }

    /// Whether the op performs elementwise reduction (needs reduce kernels).
    pub fn is_reducing(self) -> bool {
        matches!(
            self,
            CollectiveOp::AllReduce(_)
                | CollectiveOp::ReduceScatter(_)
                | CollectiveOp::Reduce { .. }
        )
    }

    /// Short name as printed in reports ("allreduce", ...).
    pub fn name(self) -> &'static str {
        match self {
            CollectiveOp::AllReduce(_) => "allreduce",
            CollectiveOp::AllGather => "allgather",
            CollectiveOp::ReduceScatter(_) => "reducescatter",
            CollectiveOp::Broadcast { .. } => "broadcast",
            CollectiveOp::Reduce { .. } => "reduce",
        }
    }
}

impl fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Convenience constructor for the most common op.
pub fn all_reduce_sum() -> CollectiveOp {
    CollectiveOp::AllReduce(ReduceKind::Sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_sizes() {
        assert_eq!(DataType::Float32.size(), 4);
        assert_eq!(DataType::Float16.bytes_for(1000), Bytes::new(2000));
    }

    #[test]
    fn ring_edge_bytes_formulas() {
        let s = Bytes::mib(8);
        // n=4 AllReduce: 2*3/4*S = 1.5*S
        assert_eq!(
            all_reduce_sum().ring_edge_bytes(s, 4),
            Bytes::new(s.as_u64() * 3 / 2)
        );
        // n=4 AllGather: 3/4*S
        assert_eq!(
            CollectiveOp::AllGather.ring_edge_bytes(s, 4),
            Bytes::new(s.as_u64() * 3 / 4)
        );
        // Broadcast carries S on each edge
        assert_eq!(CollectiveOp::Broadcast { root: 0 }.ring_edge_bytes(s, 4), s);
    }

    #[test]
    fn single_rank_is_free() {
        assert_eq!(
            all_reduce_sum().ring_edge_bytes(Bytes::mib(1), 1),
            Bytes::ZERO
        );
    }

    #[test]
    fn edge_bytes_grow_toward_asymptote() {
        let s = Bytes::mib(64);
        let b2 = all_reduce_sum().ring_edge_bytes(s, 2);
        let b8 = all_reduce_sum().ring_edge_bytes(s, 8);
        let b64 = all_reduce_sum().ring_edge_bytes(s, 64);
        assert!(b2 < b8 && b8 < b64);
        assert!(b64.as_u64() < 2 * s.as_u64(), "bounded by 2S");
    }

    #[test]
    fn reducing_classification() {
        assert!(all_reduce_sum().is_reducing());
        assert!(CollectiveOp::Reduce {
            root: 0,
            kind: ReduceKind::Max
        }
        .is_reducing());
        assert!(!CollectiveOp::AllGather.is_reducing());
        assert!(!CollectiveOp::Broadcast { root: 2 }.is_reducing());
    }

    #[test]
    fn names() {
        assert_eq!(format!("{}", CollectiveOp::AllGather), "allgather");
        assert_eq!(all_reduce_sum().name(), "allreduce");
    }
}
