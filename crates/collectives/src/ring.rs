//! Ring orders.
//!
//! A [`RingOrder`] is a cyclic permutation of a communicator's GPUs. How it
//! is chosen is the heart of the paper:
//!
//! * **NCCL default** ([`RingOrder::nccl_default`]) — NCCL optimizes the
//!   *intra-host* segment (GPUs of one host are contiguous in the ring) but
//!   chains *hosts* in user-rank order (§4.2: "NCCL simply connects
//!   inter-host rings according to the ordering of user-specified ranks").
//!   In a cloud, user rank order is oblivious to racks, which is what makes
//!   the ring cross racks repeatedly (Figure 3).
//! * **Locality-aware** — computed by the provider policy in
//!   `mccs-control`, which has the topology; this module only represents
//!   and validates orders.

use mccs_topology::{GpuId, HostId, Topology};
use std::collections::BTreeMap;

/// A cyclic order over a communicator's GPUs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RingOrder {
    gpus: Vec<GpuId>,
}

impl RingOrder {
    /// From an explicit GPU sequence.
    ///
    /// # Panics
    /// Panics if the sequence is empty or contains duplicates.
    pub fn new(gpus: Vec<GpuId>) -> Self {
        assert!(!gpus.is_empty(), "empty ring");
        let mut seen = gpus.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), gpus.len(), "duplicate GPU in ring");
        RingOrder { gpus }
    }

    /// The ring NCCL builds from a user rank order: host segments in
    /// first-appearance order, each host's GPUs contiguous (NCCL's
    /// intra-host optimization), GPUs within a host in rank order.
    pub fn nccl_default(topo: &Topology, rank_order: &[GpuId]) -> Self {
        let mut host_order: Vec<HostId> = Vec::new();
        let mut per_host: BTreeMap<HostId, Vec<GpuId>> = BTreeMap::new();
        for &g in rank_order {
            let h = topo.host_of_gpu(g);
            if !per_host.contains_key(&h) {
                host_order.push(h);
            }
            per_host.entry(h).or_default().push(g);
        }
        let gpus = host_order
            .into_iter()
            .flat_map(|h| per_host.remove(&h).expect("inserted above"))
            .collect();
        RingOrder::new(gpus)
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// Whether the ring is a single GPU (degenerate).
    pub fn is_empty(&self) -> bool {
        false // `new` rejects empty rings; method exists for clippy symmetry
    }

    /// The GPUs in ring order.
    pub fn gpus(&self) -> &[GpuId] {
        &self.gpus
    }

    /// The directed edges `(from, to)` of the ring, including the
    /// wrap-around edge.
    pub fn edges(&self) -> Vec<(GpuId, GpuId)> {
        let n = self.gpus.len();
        if n < 2 {
            return Vec::new();
        }
        (0..n)
            .map(|i| (self.gpus[i], self.gpus[(i + 1) % n]))
            .collect()
    }

    /// The ring with direction reversed (Figure 7's reconfiguration flips
    /// a clockwise ring counterclockwise to dodge a background flow).
    pub fn reversed(&self) -> RingOrder {
        let mut gpus = self.gpus.clone();
        gpus.reverse();
        RingOrder { gpus }
    }

    /// The distinct hosts in ring-traversal order (first visit). For a
    /// host-contiguous ring this is the host-level ring.
    pub fn host_sequence(&self, topo: &Topology) -> Vec<HostId> {
        let mut hosts = Vec::new();
        for &g in &self.gpus {
            let h = topo.host_of_gpu(g);
            if hosts.last() != Some(&h) && !hosts.contains(&h) {
                hosts.push(h);
            }
        }
        hosts
    }

    /// Whether every host's GPUs appear contiguously (the property NCCL's
    /// intra-host optimization guarantees, and which the inter-host edge
    /// count relies on). The wrap-around counts: a host split across the
    /// seam is still contiguous cyclically.
    pub fn is_host_contiguous(&self, topo: &Topology) -> bool {
        let n = self.gpus.len();
        // Count cyclic host transitions; contiguous iff transitions ==
        // distinct hosts (each host entered exactly once per cycle).
        let mut transitions = 0;
        for i in 0..n {
            let a = topo.host_of_gpu(self.gpus[i]);
            let b = topo.host_of_gpu(self.gpus[(i + 1) % n]);
            if a != b {
                transitions += 1;
            }
        }
        let mut hosts: Vec<HostId> = self.gpus.iter().map(|&g| topo.host_of_gpu(g)).collect();
        hosts.sort_unstable();
        hosts.dedup();
        if hosts.len() == 1 {
            return true;
        }
        transitions == hosts.len()
    }

    /// The inter-host edges `(from, to)` of the ring (edges whose endpoints
    /// sit on different hosts) — the edges that become network flows.
    pub fn inter_host_edges(&self, topo: &Topology) -> Vec<(GpuId, GpuId)> {
        self.edges()
            .into_iter()
            .filter(|&(a, b)| !topo.same_host(a, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_topology::presets;

    /// testbed: H0{g0,g1} H1{g2,g3} rack0; H2{g4,g5} H3{g6,g7} rack1.
    fn topo() -> Topology {
        presets::testbed()
    }

    fn g(ids: &[u32]) -> Vec<GpuId> {
        ids.iter().map(|&i| GpuId(i)).collect()
    }

    #[test]
    fn edges_wrap_around() {
        let r = RingOrder::new(g(&[0, 2, 4]));
        assert_eq!(
            r.edges(),
            vec![
                (GpuId(0), GpuId(2)),
                (GpuId(2), GpuId(4)),
                (GpuId(4), GpuId(0))
            ]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        RingOrder::new(g(&[0, 1, 0]));
    }

    #[test]
    fn nccl_default_groups_hosts_in_rank_order() {
        let t = topo();
        // "VM order" interleaving racks: H0, H2, H1, H3 — and within that,
        // GPUs listed per host.
        let rank_order = g(&[0, 1, 4, 5, 2, 3, 6, 7]);
        let r = RingOrder::nccl_default(&t, &rank_order);
        assert_eq!(r.gpus(), g(&[0, 1, 4, 5, 2, 3, 6, 7]).as_slice());
        assert!(r.is_host_contiguous(&t));
        assert_eq!(
            r.host_sequence(&t),
            vec![HostId(0), HostId(2), HostId(1), HostId(3)]
        );
    }

    #[test]
    fn nccl_default_regroups_scattered_ranks() {
        let t = topo();
        // User assigned ranks alternating between hosts 0 and 2.
        let rank_order = g(&[0, 4, 1, 5]);
        let r = RingOrder::nccl_default(&t, &rank_order);
        // intra-host optimization makes each host contiguous; host order is
        // first-appearance: H0 then H2.
        assert_eq!(r.gpus(), g(&[0, 1, 4, 5]).as_slice());
        assert!(r.is_host_contiguous(&t));
    }

    #[test]
    fn reversal_reverses_edges() {
        let r = RingOrder::new(g(&[0, 2, 4]));
        let rev = r.reversed();
        let mut fwd_edges = r.edges();
        fwd_edges.iter_mut().for_each(|e| *e = (e.1, e.0));
        let mut rev_edges = rev.edges();
        fwd_edges.sort_unstable();
        rev_edges.sort_unstable();
        assert_eq!(fwd_edges, rev_edges);
    }

    #[test]
    fn inter_host_edges_counted() {
        let t = topo();
        // H0 contiguous then H2 contiguous: exactly 2 inter-host edges
        // (H0->H2 and the wrap H2->H0).
        let r = RingOrder::new(g(&[0, 1, 4, 5]));
        assert_eq!(r.inter_host_edges(&t).len(), 2);
        // Alternating ring: every edge is inter-host.
        let bad = RingOrder::new(g(&[0, 4, 1, 5]));
        assert_eq!(bad.inter_host_edges(&t).len(), 4);
        assert!(!bad.is_host_contiguous(&t));
    }

    #[test]
    fn host_contiguity_across_seam() {
        let t = topo();
        // H0's GPUs split across the seam: g1 ... g0 — cyclically contiguous.
        let r = RingOrder::new(g(&[1, 4, 5, 0]));
        assert!(r.is_host_contiguous(&t));
    }

    #[test]
    fn single_host_ring_has_no_network_edges() {
        let t = topo();
        let r = RingOrder::new(g(&[0, 1]));
        assert!(r.inter_host_edges(&t).is_empty());
        assert!(r.is_host_contiguous(&t));
    }
}
