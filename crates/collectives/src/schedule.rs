//! Per-edge transfer schedules.
//!
//! A [`CollectiveSchedule`] is the concrete work a collective launches:
//! for each *channel* (parallel ring carrying a slice of the buffer, the
//! paper's "number of rings equal to the number of network multi-path
//! choices"), the set of edge transfers, split into intra-host channel
//! copies and inter-host network transfers with explicit NIC endpoints.
//!
//! ## NIC assignment
//!
//! Channel `c`'s inter-host edge out of host `H` uses the NIC affined to
//! the communicator's `c mod k`-th GPU on `H` (`k` = communicator GPUs on
//! `H`). With 2 GPUs + 2 NICs per host and 2 channels this engages both
//! NICs — NCCL's per-channel ring rotation, and the reason the paper's
//! setup 3 tenant A ("2 GPUs and 2 NICs per host") deserves twice the
//! inter-host bandwidth of tenants B/C ("1 per host").

use crate::op::CollectiveOp;
use crate::ring::RingOrder;
use mccs_sim::Bytes;
use mccs_topology::{GpuId, HostId, NicId, Topology};
use std::collections::BTreeMap;

/// One edge's transfer work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeTask {
    /// Same-host GPU-to-GPU copy over the intra-host channel.
    IntraHost {
        /// Producing GPU.
        from: GpuId,
        /// Consuming GPU.
        to: GpuId,
        /// Bytes to move.
        bytes: Bytes,
    },
    /// Cross-host transfer: becomes a network flow.
    InterHost {
        /// Producing GPU.
        from: GpuId,
        /// Consuming GPU.
        to: GpuId,
        /// NIC the flow leaves from.
        src_nic: NicId,
        /// NIC the flow arrives at.
        dst_nic: NicId,
        /// Bytes to move.
        bytes: Bytes,
    },
}

impl EdgeTask {
    /// Bytes this task moves.
    pub fn bytes(&self) -> Bytes {
        match *self {
            EdgeTask::IntraHost { bytes, .. } | EdgeTask::InterHost { bytes, .. } => bytes,
        }
    }

    /// The producing GPU.
    pub fn from_gpu(&self) -> GpuId {
        match *self {
            EdgeTask::IntraHost { from, .. } | EdgeTask::InterHost { from, .. } => from,
        }
    }

    /// Whether the task crosses hosts.
    pub fn is_inter_host(&self) -> bool {
        matches!(self, EdgeTask::InterHost { .. })
    }
}

/// One channel's ring and edge tasks.
#[derive(Clone, Debug)]
pub struct ChannelSchedule {
    /// Channel index.
    pub channel: usize,
    /// The slice of the collective buffer this channel carries.
    pub share: Bytes,
    /// Edge transfers, in ring order.
    pub tasks: Vec<EdgeTask>,
}

impl ChannelSchedule {
    /// Inter-host tasks only.
    pub fn network_tasks(&self) -> impl Iterator<Item = &EdgeTask> {
        self.tasks.iter().filter(|t| t.is_inter_host())
    }
}

/// A fully resolved collective execution plan.
#[derive(Clone, Debug)]
pub struct CollectiveSchedule {
    /// The operation.
    pub op: CollectiveOp,
    /// Reference buffer size (NCCL-tests semantics, see [`CollectiveOp`]).
    pub size: Bytes,
    /// Participant count.
    pub ranks: usize,
    /// Per-channel plans.
    pub channels: Vec<ChannelSchedule>,
}

impl CollectiveSchedule {
    /// Build a ring schedule: `size` split over `channel_rings.len()`
    /// channels, channel `c` following `channel_rings[c]`.
    ///
    /// All rings must contain the same GPU set (they are usually the same
    /// order, or per-channel variants chosen by the provider).
    pub fn ring(
        topo: &Topology,
        op: CollectiveOp,
        size: Bytes,
        channel_rings: &[RingOrder],
    ) -> Self {
        assert!(!channel_rings.is_empty(), "need at least one channel");
        let n = channel_rings[0].len();
        assert!(
            channel_rings.iter().all(|r| r.len() == n),
            "channel rings over different GPU sets"
        );
        let k = channel_rings.len() as u64;
        let channels = channel_rings
            .iter()
            .enumerate()
            .map(|(c, ring)| {
                let share = size.split(k, c as u64);
                let edge_bytes = op.ring_edge_bytes(share, n);
                let gpus_per_host = gpus_by_host(topo, ring);
                let tasks = ring
                    .edges()
                    .into_iter()
                    .filter(|_| edge_bytes > Bytes::ZERO)
                    .map(|(from, to)| {
                        if topo.same_host(from, to) {
                            EdgeTask::IntraHost {
                                from,
                                to,
                                bytes: edge_bytes,
                            }
                        } else {
                            let src_nic = channel_nic(topo, &gpus_per_host, from, c);
                            let dst_nic = channel_nic(topo, &gpus_per_host, to, c);
                            EdgeTask::InterHost {
                                from,
                                to,
                                src_nic,
                                dst_nic,
                                bytes: edge_bytes,
                            }
                        }
                    })
                    .collect();
                ChannelSchedule {
                    channel: c,
                    share,
                    tasks,
                }
            })
            .collect();
        CollectiveSchedule {
            op,
            size,
            ranks: n,
            channels,
        }
    }

    /// Total bytes crossing the network (all channels).
    pub fn total_network_bytes(&self) -> Bytes {
        self.channels
            .iter()
            .flat_map(|c| c.network_tasks())
            .map(EdgeTask::bytes)
            .sum()
    }

    /// All tasks whose producing GPU is `gpu` — the work one proxy engine
    /// owns.
    pub fn tasks_from_gpu(&self, gpu: GpuId) -> Vec<(usize, EdgeTask)> {
        self.channels
            .iter()
            .flat_map(|c| c.tasks.iter().map(move |t| (c.channel, *t)))
            .filter(|(_, t)| t.from_gpu() == gpu)
            .collect()
    }

    /// Total task count.
    pub fn task_count(&self) -> usize {
        self.channels.iter().map(|c| c.tasks.len()).sum()
    }
}

/// Identity of a ring schedule for cross-communicator caching.
///
/// Two communicators whose launches map to equal keys derive schedules
/// that are interchangeable: [`CollectiveSchedule::ring`] is a pure
/// function of (topology, op, size, channel rings), and the key captures
/// every ring property the construction reads —
///
/// * the **cyclic order** (edge set), canonicalized by rotating each ring
///   so its smallest GPU comes first, making communicators that list the
///   same ring from different starting ranks share an entry;
/// * the **per-host traversal order**, which rotation does *not*
///   preserve when the seam splits a host's GPU run: [`gpus_by_host`]
///   collects each host's GPUs in ring-traversal order and
///   [`channel_nic`] indexes into that list, so two rotations of the same
///   cyclic order can assign different NICs. Keeping the host grouping in
///   the key means a key hit implies identical NIC assignment too.
///
/// Equal keys may still produce task lists in a rotated order, but
/// [`CollectiveSchedule::tasks_from_gpu`] — the only per-rank consumer —
/// returns at most one task per channel per GPU, so the extracted work is
/// identical. Chunking is covered by the channel count (ring list length)
/// plus `size`, which determine every channel's share.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ScheduleKey {
    op: CollectiveOp,
    size: Bytes,
    rings: Vec<RingKey>,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct RingKey {
    /// The ring rotated so its smallest GPU leads (cyclic canonical form).
    canonical: Vec<GpuId>,
    /// `(host, gpu)` pairs stable-sorted by host, i.e. GPUs in
    /// ring-traversal order within each host — the flattened form of the
    /// [`gpus_by_host`] grouping [`channel_nic`] resolves NICs against
    /// (flat so building a key costs one allocation, not one per host).
    host_pairs: Vec<(HostId, GpuId)>,
}

impl ScheduleKey {
    /// The cache key for the schedule `CollectiveSchedule::ring(topo, op,
    /// size, channel_rings)` would build.
    pub fn for_ring(
        topo: &Topology,
        op: CollectiveOp,
        size: Bytes,
        channel_rings: &[RingOrder],
    ) -> Self {
        let rings = channel_rings
            .iter()
            .map(|ring| {
                let gpus = ring.gpus();
                let min_at = gpus
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, g)| g)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let mut canonical = Vec::with_capacity(gpus.len());
                canonical.extend_from_slice(&gpus[min_at..]);
                canonical.extend_from_slice(&gpus[..min_at]);
                // Stable sort by host ≡ flattening the host-ascending
                // BTreeMap of traversal-ordered per-host GPU lists.
                let mut host_pairs: Vec<(HostId, GpuId)> =
                    gpus.iter().map(|&g| (topo.host_of_gpu(g), g)).collect();
                host_pairs.sort_by_key(|&(h, _)| h);
                RingKey {
                    canonical,
                    host_pairs,
                }
            })
            .collect();
        ScheduleKey { op, size, rings }
    }
}

/// The communicator's GPUs grouped per host, in ring order.
fn gpus_by_host(topo: &Topology, ring: &RingOrder) -> BTreeMap<HostId, Vec<GpuId>> {
    let mut map: BTreeMap<HostId, Vec<GpuId>> = BTreeMap::new();
    for &g in ring.gpus() {
        map.entry(topo.host_of_gpu(g)).or_default().push(g);
    }
    map
}

/// The NIC channel `c` uses on `gpu`'s host: the NIC of the communicator's
/// `c mod k`-th GPU there.
fn channel_nic(
    topo: &Topology,
    gpus_per_host: &BTreeMap<HostId, Vec<GpuId>>,
    gpu: GpuId,
    c: usize,
) -> NicId {
    let host = topo.host_of_gpu(gpu);
    let local = &gpus_per_host[&host];
    let pick = local[c % local.len()];
    topo.nic_of_gpu(pick)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::all_reduce_sum;
    use mccs_topology::presets;

    fn topo() -> Topology {
        presets::testbed()
    }

    fn ring8(t: &Topology) -> RingOrder {
        // optimal order: H0 H1 H2 H3, GPUs contiguous
        let _ = t;
        RingOrder::new((0..8).map(GpuId).collect())
    }

    #[test]
    fn single_channel_four_ranks() {
        let t = topo();
        // one GPU per host: g0, g2, g4, g6
        let ring = RingOrder::new(vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)]);
        let s = CollectiveSchedule::ring(&t, all_reduce_sum(), Bytes::mib(8), &[ring]);
        assert_eq!(s.channels.len(), 1);
        let ch = &s.channels[0];
        assert_eq!(ch.tasks.len(), 4);
        assert!(ch.tasks.iter().all(EdgeTask::is_inter_host));
        // 2(n-1)/n * 8MiB = 12MiB per edge
        assert!(ch.tasks.iter().all(|t| t.bytes() == Bytes::mib(12)));
        assert_eq!(s.task_count(), 4);
    }

    #[test]
    fn two_channels_split_bytes_and_nics() {
        let t = topo();
        let rings = [ring8(&t), ring8(&t)];
        let s = CollectiveSchedule::ring(&t, all_reduce_sum(), Bytes::mib(16), &rings);
        assert_eq!(s.channels.len(), 2);
        for ch in &s.channels {
            assert_eq!(ch.share, Bytes::mib(8));
            // 8 edges: 4 intra-host (within each host), 4 inter-host
            assert_eq!(ch.tasks.len(), 8);
            assert_eq!(ch.network_tasks().count(), 4);
        }
        // channel 0 and channel 1 use different NICs per host
        let nic_of = |ch: &ChannelSchedule| -> Vec<NicId> {
            ch.network_tasks()
                .map(|t| match *t {
                    EdgeTask::InterHost { src_nic, .. } => src_nic,
                    _ => unreachable!(),
                })
                .collect()
        };
        let n0 = nic_of(&s.channels[0]);
        let n1 = nic_of(&s.channels[1]);
        assert!(n0.iter().zip(&n1).all(|(a, b)| a != b));
    }

    #[test]
    fn intra_host_edges_stay_off_network() {
        let t = topo();
        // 2 GPUs on one host: no network tasks at all.
        let ring = RingOrder::new(vec![GpuId(0), GpuId(1)]);
        let s = CollectiveSchedule::ring(&t, all_reduce_sum(), Bytes::mib(4), &[ring]);
        assert_eq!(s.total_network_bytes(), Bytes::ZERO);
        assert_eq!(s.channels[0].tasks.len(), 2);
        assert!(s.channels[0].tasks.iter().all(|t| !t.is_inter_host()));
    }

    #[test]
    fn tasks_from_gpu_selects_proxy_work() {
        let t = topo();
        let rings = [ring8(&t), ring8(&t)];
        let s = CollectiveSchedule::ring(&t, all_reduce_sum(), Bytes::mib(16), &rings);
        // GPU 1 is the boundary GPU of H0 (edge g1 -> g2 crosses hosts):
        // one task per channel.
        let tasks = s.tasks_from_gpu(GpuId(1));
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|(_, t)| t.is_inter_host()));
        // GPU 0's edge g0->g1 is intra-host: one per channel.
        let tasks = s.tasks_from_gpu(GpuId(0));
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|(_, t)| !t.is_inter_host()));
    }

    #[test]
    fn odd_sizes_split_without_loss() {
        let t = topo();
        let rings = [ring8(&t), ring8(&t), ring8(&t)];
        let s = CollectiveSchedule::ring(&t, all_reduce_sum(), Bytes::new(10), &rings);
        let total: Bytes = s.channels.iter().map(|c| c.share).sum();
        assert_eq!(total, Bytes::new(10));
    }

    #[test]
    fn single_gpu_communicator_is_free() {
        let t = topo();
        let ring = RingOrder::new(vec![GpuId(3)]);
        let s = CollectiveSchedule::ring(&t, all_reduce_sum(), Bytes::mib(1), &[ring]);
        assert_eq!(s.task_count(), 0);
        assert_eq!(s.total_network_bytes(), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "different GPU sets")]
    fn mismatched_channel_rings_rejected() {
        let t = topo();
        let a = RingOrder::new(vec![GpuId(0), GpuId(2)]);
        let b = RingOrder::new(vec![GpuId(0), GpuId(2), GpuId(4)]);
        CollectiveSchedule::ring(&t, all_reduce_sum(), Bytes::mib(1), &[a, b]);
    }

    #[test]
    fn schedule_key_shares_rotations_that_preserve_host_order() {
        let t = topo();
        let op = all_reduce_sum();
        let size = Bytes::mib(8);
        let key = |gpus: Vec<u32>| {
            let ring = RingOrder::new(gpus.into_iter().map(GpuId).collect());
            ScheduleKey::for_ring(&t, op, size, &[ring])
        };
        // A rotation whose seam falls between host runs is the same
        // schedule: same edges, same per-host traversal order.
        assert_eq!(key(vec![0, 1, 4, 5]), key(vec![4, 5, 0, 1]));
        // A rotation that splits H0's run reverses its traversal order
        // ([1, 0] vs [0, 1]), which changes channel-NIC assignment — the
        // key must distinguish it even though the cyclic order is equal.
        assert_ne!(key(vec![0, 1, 4, 5]), key(vec![1, 4, 5, 0]));
        // Different cyclic orders never collide.
        assert_ne!(key(vec![0, 1, 4, 5]), key(vec![0, 4, 1, 5]));
        // Op, size and channel count are all part of the identity.
        let ring = RingOrder::new(vec![GpuId(0), GpuId(2)]);
        let base = ScheduleKey::for_ring(&t, op, size, std::slice::from_ref(&ring));
        assert_ne!(
            base,
            ScheduleKey::for_ring(
                &t,
                CollectiveOp::AllGather,
                size,
                std::slice::from_ref(&ring)
            )
        );
        assert_ne!(
            base,
            ScheduleKey::for_ring(&t, op, Bytes::mib(16), std::slice::from_ref(&ring))
        );
        assert_ne!(
            base,
            ScheduleKey::for_ring(&t, op, size, &[ring.clone(), ring])
        );
    }

    #[test]
    fn equal_keys_mean_equal_per_gpu_tasks() {
        let t = topo();
        let op = all_reduce_sum();
        let size = Bytes::mib(8);
        let a = RingOrder::new(vec![GpuId(0), GpuId(1), GpuId(4), GpuId(5)]);
        let b = RingOrder::new(vec![GpuId(4), GpuId(5), GpuId(0), GpuId(1)]);
        assert_eq!(
            ScheduleKey::for_ring(&t, op, size, std::slice::from_ref(&a)),
            ScheduleKey::for_ring(&t, op, size, std::slice::from_ref(&b))
        );
        let sa = CollectiveSchedule::ring(&t, op, size, &[a]);
        let sb = CollectiveSchedule::ring(&t, op, size, &[b]);
        for g in [0, 1, 4, 5] {
            assert_eq!(sa.tasks_from_gpu(GpuId(g)), sb.tasks_from_gpu(GpuId(g)));
        }
    }

    #[test]
    fn one_nic_per_host_shares_nic_across_channels() {
        let t = topo();
        // 4-GPU setup: one GPU per host; 2 channels must both exit through
        // the single NIC each host contributes.
        let ring = RingOrder::new(vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)]);
        let s =
            CollectiveSchedule::ring(&t, all_reduce_sum(), Bytes::mib(8), &[ring.clone(), ring]);
        let nics: Vec<NicId> = s
            .channels
            .iter()
            .flat_map(|c| c.network_tasks())
            .map(|t| match *t {
                EdgeTask::InterHost { src_nic, .. } => src_nic,
                _ => unreachable!(),
            })
            .collect();
        // channel 0 and 1 out of H0 both use g0's NIC.
        assert_eq!(nics[0], t.nic_of_gpu(GpuId(0)));
        assert!(nics.contains(&t.nic_of_gpu(GpuId(0))));
        let h0_nics: Vec<_> = nics
            .iter()
            .filter(|n| t.nic(**n).host == mccs_topology::HostId(0))
            .collect();
        assert_eq!(h0_nics.len(), 2);
        assert_eq!(h0_nics[0], h0_nics[1]);
    }
}
