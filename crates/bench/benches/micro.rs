//! Criterion microbenchmarks of the core data structures and algorithms:
//! the max-min rate allocator, ring construction, the FFA solver, the
//! event queue, and an end-to-end testbed collective — the hot paths of
//! every experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mccs_collectives::op::all_reduce_sum;
use mccs_collectives::{CollectiveSchedule, RingOrder, ScheduleKey};
use mccs_control::flow_policy::{ffa, JobFlows};
use mccs_control::{optimal_rings, ChannelPolicy};
use mccs_core::world::WorldScheduleCache;
use mccs_netsim::maxmin::{allocate, FlowDemand};
use mccs_netsim::{FlowSpec, Network};
use mccs_sim::{Bandwidth, Bytes, EventQueue, Nanos, Rng};
use mccs_topology::presets::{self, SpineLeafConfig};
use mccs_topology::GpuId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A pass-through allocator that counts heap allocations, so the churn
/// benchmarks can report allocations-per-solve alongside time-per-solve.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; only bumps a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    f();
    ALLOC_COUNT.load(Ordering::Relaxed) - before
}

fn bench_maxmin(c: &mut Criterion) {
    // 200 flows over 64 links, random 4-link paths.
    let mut rng = Rng::seed_from(1);
    let caps: Vec<Bandwidth> = (0..64).map(|_| Bandwidth::gbps(100.0)).collect();
    let flows: Vec<FlowDemand> = (0..200)
        .map(|_| {
            let links = (0..4).map(|_| rng.index(64)).collect();
            FlowDemand::fair(links, None)
        })
        .collect();
    c.bench_function("maxmin/200flows-64links", |b| {
        b.iter(|| allocate(std::hint::black_box(&flows), std::hint::black_box(&caps)))
    });
}

fn bench_ring_builder(c: &mut Criterion) {
    let topo = presets::spine_leaf(&SpineLeafConfig::paper_large_scale());
    let gpus: Vec<GpuId> = (0..256).map(|i| GpuId(i * 3)).collect();
    c.bench_function("ring/optimal-256gpus", |b| {
        b.iter(|| optimal_rings(&topo, std::hint::black_box(&gpus), ChannelPolicy::Fixed(4)))
    });
}

fn bench_schedule(c: &mut Criterion) {
    let topo = presets::testbed();
    let ring = RingOrder::new((0..8).map(GpuId).collect());
    let rings = [ring.clone(), ring];
    c.bench_function("schedule/8gpu-2ch", |b| {
        b.iter(|| {
            CollectiveSchedule::ring(
                &topo,
                all_reduce_sum(),
                Bytes::mib(128),
                std::hint::black_box(&rings),
            )
        })
    });
}

fn bench_ffa_solver(c: &mut Criterion) {
    // The §6.5 rescheduling cost the paper quotes (<1 ms for a 32-GPU
    // job): solve FFA for 8 concurrent 32-GPU jobs at once.
    let topo = presets::spine_leaf(&SpineLeafConfig::paper_large_scale());
    let jobs: Vec<JobFlows> = (0..8)
        .map(|j| {
            let gpus: Vec<GpuId> = (0..32).map(|i| GpuId(j * 32 + i)).collect();
            let rings = optimal_rings(&topo, &gpus, ChannelPolicy::Fixed(4));
            JobFlows::from_rings(&topo, &rings, 0)
        })
        .collect();
    c.bench_function("ffa/8jobs-32gpus", |b| {
        b.iter(|| ffa(&topo, std::hint::black_box(&jobs)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("eventqueue/push-pop-10k", |b| {
        b.iter_batched(
            || {
                let mut rng = Rng::seed_from(3);
                (0..10_000u64)
                    .map(|i| (Nanos::from_nanos(rng.below(1 << 30)), i))
                    .collect::<Vec<_>>()
            },
            |items| {
                let mut q = EventQueue::new();
                for (t, v) in items {
                    q.schedule(t, v);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_netsim_collective(c: &mut Criterion) {
    // Full flow-level simulation of one 8-flow collective on the testbed.
    let topo = Arc::new(presets::testbed());
    c.bench_function("netsim/8flow-collective", |b| {
        b.iter(|| {
            let mut net = Network::new(Arc::clone(&topo));
            for i in 0..4u32 {
                net.start_flow(
                    Nanos::ZERO,
                    FlowSpec::ecmp(
                        mccs_topology::NicId(i),
                        mccs_topology::NicId(i + 4),
                        Bytes::mib(32),
                        u64::from(i),
                    ),
                );
                net.start_flow(
                    Nanos::ZERO,
                    FlowSpec::ecmp(
                        mccs_topology::NicId(i + 4),
                        mccs_topology::NicId(i),
                        Bytes::mib(32),
                        u64::from(i) + 8,
                    ),
                );
            }
            let done = net.advance_to(Nanos::from_secs(10));
            assert_eq!(done.len(), 8);
        })
    });
}

fn bench_flow_churn(c: &mut Criterion) {
    // Membership churn on the 768-GPU cluster: one flow admitted and one
    // cancelled against a standing population of N concurrent flows.
    // The population models the paper's steady state — many jobs' ring
    // flows under compact placement, so each flow is rack-local and the
    // flow×link graph decomposes into rack-sized connected components.
    // The incremental allocator re-solves only the component the change
    // touches; the from-scratch oracle re-solves all N flows on every
    // membership event.
    let cfg = SpineLeafConfig::paper_large_scale();
    let topo = Arc::new(presets::spine_leaf(&cfg));
    let racks = cfg.leaves as u64;
    let nics_per_rack = (cfg.hosts_per_leaf * cfg.gpus_per_host) as u32;
    let random_spec = |rng: &mut Rng| {
        let base = rng.below(racks) as u32 * nics_per_rack;
        let src = base + rng.below(u64::from(nics_per_rack)) as u32;
        let mut dst = base + rng.below(u64::from(nics_per_rack)) as u32;
        if dst == src {
            dst = base + (dst - base + 1) % nics_per_rack;
        }
        // Unbounded fair flows: the population never drains mid-sample.
        FlowSpec {
            src: mccs_topology::NicId(src),
            dst: mccs_topology::NicId(dst),
            bytes: None,
            routing: mccs_netsim::RouteChoice::Ecmp {
                hash: rng.next_u64(),
            },
            rate_cap: None,
            tag: 0,
            guaranteed: false,
            tenant: (rng.below(8)) as u32,
        }
    };
    for &n in &[10usize, 100, 1000] {
        for &(label, incremental) in &[("incremental", true), ("from-scratch", false)] {
            let mut rng = Rng::seed_from(0xC0FFEE ^ n as u64);
            let mut net = Network::new(Arc::clone(&topo));
            net.set_incremental(incremental);
            for _ in 0..n {
                net.start_flow(Nanos::ZERO, random_spec(&mut rng));
            }
            c.bench_function(&format!("churn/{n}flows/{label}"), |b| {
                b.iter(|| {
                    let id = net.start_flow(Nanos::ZERO, random_spec(&mut rng));
                    net.cancel_flow(Nanos::ZERO, id);
                })
            });
        }
    }
    for &n in &[10usize, 100, 1000] {
        let median = |label: &str| {
            c.results()
                .iter()
                .find(|r| r.name == format!("churn/{n}flows/{label}"))
                .expect("benched above")
                .median_ns
        };
        println!(
            "churn/{n}flows incremental speedup: {:.1}x",
            median("from-scratch") / median("incremental")
        );
    }
}

fn bench_churn_steady_state(c: &mut Criterion) {
    // The amortized hot path: the SAME traffic shape recurs (iterating
    // collectives, TS pause/resume cycles), so the incremental solver's
    // remap cache hits and the reusable scratch keeps the whole
    // re-solve allocation-free in steady state. The from-scratch oracle
    // rebuilds its flow x link problem on every membership event.
    let cfg = SpineLeafConfig::paper_large_scale();
    let topo = Arc::new(presets::spine_leaf(&cfg));
    let racks = cfg.leaves as u64;
    let nics_per_rack = (cfg.hosts_per_leaf * cfg.gpus_per_host) as u32;
    let population_spec = |rng: &mut Rng| {
        let base = rng.below(racks) as u32 * nics_per_rack;
        let src = base + rng.below(u64::from(nics_per_rack)) as u32;
        let mut dst = base + rng.below(u64::from(nics_per_rack)) as u32;
        if dst == src {
            dst = base + (dst - base + 1) % nics_per_rack;
        }
        FlowSpec {
            src: mccs_topology::NicId(src),
            dst: mccs_topology::NicId(dst),
            bytes: None,
            routing: mccs_netsim::RouteChoice::Ecmp {
                hash: rng.next_u64(),
            },
            rate_cap: None,
            tag: 0,
            guaranteed: false,
            tenant: (rng.below(8)) as u32,
        }
    };
    // The recurring flow: pinned route so every recurrence has an
    // identical structural signature.
    let recurring = FlowSpec {
        src: mccs_topology::NicId(0),
        dst: mccs_topology::NicId(1),
        bytes: None,
        routing: mccs_netsim::RouteChoice::Pinned(mccs_topology::RouteId(0)),
        rate_cap: None,
        tag: 0,
        guaranteed: false,
        tenant: 0,
    };
    let n = 1000usize;
    let mut allocs = Vec::new();
    for &(label, incremental) in &[("incremental", true), ("from-scratch", false)] {
        let mut rng = Rng::seed_from(0xBEEF ^ n as u64);
        let mut net = Network::new(Arc::clone(&topo));
        net.set_incremental(incremental);
        for _ in 0..n {
            net.start_flow(Nanos::ZERO, population_spec(&mut rng));
        }
        // Warm the remap cache for both component shapes (with and
        // without the recurring flow).
        for _ in 0..2 {
            let id = net.start_flow(Nanos::ZERO, recurring);
            net.cancel_flow(Nanos::ZERO, id);
        }
        c.bench_function(&format!("churn-hot/{n}flows/{label}"), |b| {
            b.iter(|| {
                let id = net.start_flow(Nanos::ZERO, recurring);
                net.cancel_flow(Nanos::ZERO, id);
            })
        });
        let cycles = 100u64;
        let count = allocations(|| {
            for _ in 0..cycles {
                let id = net.start_flow(Nanos::ZERO, recurring);
                net.cancel_flow(Nanos::ZERO, id);
            }
        });
        allocs.push((label, count as f64 / cycles as f64));
    }
    for (label, per_cycle) in &allocs {
        println!("churn-hot/{n}flows/{label}: {per_cycle:.1} allocations/cycle");
    }
    let median = |label: &str| {
        c.results()
            .iter()
            .find(|r| r.name == format!("churn-hot/{n}flows/{label}"))
            .expect("benched above")
            .median_ns
    };
    println!(
        "churn-hot/{n}flows incremental speedup: {:.1}x",
        median("from-scratch") / median("incremental")
    );
}

fn bench_schedule_cache(c: &mut Criterion) {
    // The world-level schedule cache vs deriving the schedule per launch:
    // a steady-state collective launch is one key build + one map hit.
    // Benched at a production-ish scale (64-GPU ring, 4 channels on the
    // large spine-leaf cluster) where derivation is no longer trivial.
    let topo = presets::spine_leaf(&SpineLeafConfig::paper_large_scale());
    let gpus: Vec<GpuId> = (0..64).map(|i| GpuId(i * 3)).collect();
    let rings = optimal_rings(&topo, &gpus, ChannelPolicy::Fixed(4));
    let op = all_reduce_sum();
    let size = Bytes::mib(128);
    c.bench_function("schedule-derive/64gpu-4ch", |b| {
        b.iter(|| CollectiveSchedule::ring(&topo, op, size, std::hint::black_box(&rings)))
    });
    let mut cache = WorldScheduleCache::default();
    // Populate the single entry.
    let key = ScheduleKey::for_ring(&topo, op, size, &rings);
    cache.get_or_derive(key, || CollectiveSchedule::ring(&topo, op, size, &rings));
    c.bench_function("schedule-cache/hit-64gpu-4ch", |b| {
        b.iter(|| {
            let key = ScheduleKey::for_ring(&topo, op, size, std::hint::black_box(&rings));
            cache.get_or_derive(key, || CollectiveSchedule::ring(&topo, op, size, &rings))
        })
    });
    let median = |name: &str| {
        c.results()
            .iter()
            .find(|r| r.name == name)
            .expect("benched")
            .median_ns
    };
    println!(
        "schedule cache hit vs derive: {:.1}x",
        median("schedule-derive/64gpu-4ch") / median("schedule-cache/hit-64gpu-4ch")
    );
}

fn bench_completion_index(c: &mut Criterion) {
    // Draining a large bounded-flow population: the indexed completion
    // heap finds the next finisher in O(log F) amortized; the oracle
    // rescans every stored prediction per step, so a full drain is
    // O(F^2) in the scan alone.
    let topo = Arc::new(presets::spine_leaf(&SpineLeafConfig::paper_large_scale()));
    let n = 1000usize;
    let build = |incremental: bool| {
        let mut rng = Rng::seed_from(0xD1A1 ^ n as u64);
        let mut net = Network::new(Arc::clone(&topo));
        net.set_incremental(incremental);
        for i in 0..n {
            // Rack-local bounded flows with staggered sizes so the drain
            // produces ~n distinct completion instants.
            let base = rng.below(24) as u32 * 32;
            let src = base + rng.below(32) as u32;
            let mut dst = base + rng.below(32) as u32;
            if dst == src {
                dst = base + (dst - base + 1) % 32;
            }
            net.start_flow(
                Nanos::ZERO,
                FlowSpec::ecmp(
                    mccs_topology::NicId(src),
                    mccs_topology::NicId(dst),
                    Bytes::mib(1 + (i as u64 % 64)),
                    rng.next_u64(),
                ),
            );
        }
        net
    };
    for &(label, incremental) in &[("indexed", true), ("oracle", false)] {
        c.bench_function(&format!("completions/{n}flows-drain/{label}"), |b| {
            b.iter_batched(
                || build(incremental),
                |mut net| {
                    let done = net.advance_to(Nanos::from_secs(600));
                    assert_eq!(done.len(), n);
                },
                BatchSize::LargeInput,
            )
        });
    }
    let median = |label: &str| {
        c.results()
            .iter()
            .find(|r| r.name == format!("completions/{n}flows-drain/{label}"))
            .expect("benched above")
            .median_ns
    };
    println!(
        "completions/{n}flows indexed speedup: {:.1}x",
        median("oracle") / median("indexed")
    );
}

fn bench_scheduler_event_loop(c: &mut Criterion) {
    // The fig13 regime in miniature: one active tenant, one parked, on
    // the testbed. The naive scheduler polls every engine on every pass;
    // the wake scheduler touches only ready engines.
    use mccs_core::{Cluster, ClusterConfig};
    use mccs_ipc::CommunicatorId;
    use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
    let run = |naive: bool| {
        let mut cluster = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(9));
        cluster.set_naive_scheduler(naive);
        let tenants = [
            (
                "hot",
                CommunicatorId(1),
                [GpuId(0), GpuId(2), GpuId(4), GpuId(6)],
                None,
            ),
            (
                "cold",
                CommunicatorId(2),
                [GpuId(1), GpuId(3), GpuId(5), GpuId(7)],
                Some(Nanos::from_millis(40)),
            ),
        ];
        for (name, comm, gpus, sleep) in tenants {
            let ranks = gpus
                .iter()
                .enumerate()
                .map(|(rank, &gpu)| {
                    let size = Bytes::mib(4);
                    let mut steps = vec![
                        ScriptStep::Alloc { size, slot: 0 },
                        ScriptStep::Alloc { size, slot: 1 },
                        ScriptStep::CommInit {
                            comm,
                            world: gpus.to_vec(),
                            rank,
                        },
                    ];
                    if let Some(t) = sleep {
                        steps.push(ScriptStep::SleepUntil(t));
                    }
                    steps.push(ScriptStep::Collective {
                        comm,
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    });
                    let prog = ScriptedProgram::new(format!("{name}/r{rank}"), steps);
                    (gpu, Box::new(prog) as Box<dyn AppProgram>)
                })
                .collect();
            cluster.add_app(name, ranks);
        }
        cluster.run_until_quiescent(Nanos::from_secs(10));
    };
    for &(label, naive) in &[("wake", false), ("naive", true)] {
        c.bench_function(&format!("scheduler/idle-heavy-testbed/{label}"), |b| {
            b.iter(|| run(naive))
        });
    }
    let median = |label: &str| {
        c.results()
            .iter()
            .find(|r| r.name == format!("scheduler/idle-heavy-testbed/{label}"))
            .expect("benched above")
            .median_ns
    };
    println!(
        "scheduler/idle-heavy-testbed wake speedup: {:.1}x",
        median("naive") / median("wake")
    );
}

criterion_group!(
    benches,
    bench_maxmin,
    bench_ring_builder,
    bench_schedule,
    bench_ffa_solver,
    bench_event_queue,
    bench_netsim_collective,
    bench_flow_churn,
    bench_churn_steady_state,
    bench_schedule_cache,
    bench_completion_index,
    bench_scheduler_event_loop
);
criterion_main!(benches);
