//! The QoS/training-workload experiments (§6.4, Figures 9 and 10).
//!
//! Setup 3 of Figure 5b: tenant A trains VGG-19 (data parallel, 4 GPUs,
//! 2 NICs/host), tenants B and C fine-tune GPT-2.7B (tensor parallel,
//! 2 GPUs each, 1 NIC/host). All three replay calibrated traces through
//! the MCCS traffic generator; the controller applies one of four
//! strategies:
//!
//! * **ECMP** — optimal rings, hashed routing (MCCS(-FFA));
//! * **FFA** — fair flow assignment;
//! * **PFA** — one inter-rack route reserved for A;
//! * **PFA+TS** — additionally, C is gated into B's idle windows.

use crate::setups::multi_app_setup;
use mccs_control::{
    apply_traffic_schedule, optimize_cluster, ChannelPolicy, FlowAssignment, PolicySpec,
};
use mccs_core::{Cluster, ClusterConfig};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_sim::Nanos;
use mccs_topology::{presets, RouteId};
use mccs_workloads::generator::spawn_traffic_app;
use mccs_workloads::{gpt27b_tensor_parallel, vgg19_data_parallel, IterationTrace};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The four strategies of Figure 9.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QosStrategy {
    /// Optimal rings, ECMP routing.
    Ecmp,
    /// Fair flow assignment.
    Ffa,
    /// Priority flow assignment (A prioritized, one route reserved).
    Pfa,
    /// PFA plus traffic scheduling (B prioritized over C).
    PfaTs,
}

impl QosStrategy {
    /// All four, in the paper's plotting order.
    pub const ALL: [QosStrategy; 4] = [
        QosStrategy::Ecmp,
        QosStrategy::Ffa,
        QosStrategy::Pfa,
        QosStrategy::PfaTs,
    ];

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            QosStrategy::Ecmp => "ECMP",
            QosStrategy::Ffa => "FFA",
            QosStrategy::Pfa => "PFA",
            QosStrategy::PfaTs => "PFA+TS",
        }
    }
}

/// Workload iteration counts (kept modest so ten trials stay fast).
pub const VGG_ITERS: usize = 6;
/// GPT fine-tuning iterations for tenants B and C.
pub const GPT_ITERS: usize = 3;

/// When tenant workloads start issuing collectives.
pub const START: Nanos = Nanos::from_millis(20);

fn traces() -> [IterationTrace; 3] {
    [
        vgg19_data_parallel(VGG_ITERS),
        gpt27b_tensor_parallel(GPT_ITERS),
        gpt27b_tensor_parallel(GPT_ITERS),
    ]
}

fn policy_for(strategy: QosStrategy, apps: &[AppId]) -> PolicySpec {
    let assignment = match strategy {
        QosStrategy::Ecmp => FlowAssignment::Ecmp,
        QosStrategy::Ffa => FlowAssignment::Ffa,
        QosStrategy::Pfa | QosStrategy::PfaTs => FlowAssignment::Pfa {
            priorities: BTreeMap::from([(apps[0], 0u32)]),
            reserved: BTreeSet::from([RouteId(0)]),
        },
    };
    PolicySpec {
        optimal_rings: true,
        channels: ChannelPolicy::MatchNics,
        assignment,
    }
}

/// One tenant's outcome of a QoS run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Job completion time, measured from [`START`] to the app's last
    /// collective completion.
    pub jct: Nanos,
    /// Completion time of each training iteration.
    pub iter_ends: Vec<Nanos>,
    /// Collectives the service cleanly failed back to this tenant
    /// (zero on these fault-free runs; reported explicitly so a fault
    /// would show up in the figures instead of silently shrinking the
    /// sample).
    pub failed: usize,
}

/// One full run: returns per-app outcomes.
pub fn run_qos(strategy: QosStrategy, trial: u64) -> Vec<AppRun> {
    let topo = Arc::new(presets::testbed());
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::with_seed(0xF19 + trial));
    let placements = multi_app_setup(3);
    let traces = traces();
    let mut apps = Vec::new();
    for (i, (p, trace)) in placements.iter().zip(&traces).enumerate() {
        let comm = CommunicatorId(100 + 31 * trial + i as u64);
        // Stagger B and C so their bursts decorrelate, as independent
        // fine-tuning jobs would.
        let start = START + Nanos::from_micros(7_300 * i as u64);
        apps.push(spawn_traffic_app(
            &mut cluster,
            p.name,
            comm,
            &p.gpus,
            trace,
            start,
        ));
    }
    // Registration, then the strategy.
    cluster.run_until(Nanos::from_millis(2));
    optimize_cluster(&mut cluster, &policy_for(strategy, &apps));

    if strategy == QosStrategy::PfaTs {
        // Warm up long enough to profile B's iteration pattern, then gate
        // C into B's idle windows (the offline-profiling step of §5).
        cluster.run_until(START + Nanos::from_millis(700));
        let ok = apply_traffic_schedule(&mut cluster, apps[1], &[apps[2]]);
        assert!(ok, "TS needs a discoverable period in B's trace");
    }

    cluster.run_until_quiescent(Nanos::from_secs(600));
    apps.iter()
        .zip(&traces)
        .map(|(&app, trace)| {
            let tl = cluster.mgmt().timeline(app);
            let failed = cluster
                .mgmt()
                .tenant_outcomes(app)
                .iter()
                .filter(|r| r.failed)
                .count();
            let per_iter = trace.collectives_per_iteration();
            assert_eq!(
                tl.len() + failed,
                per_iter * trace.iterations,
                "collectives lost without a completion or a clean failure"
            );
            let jct = tl.last().expect("ran").completed_at.expect("done") - START;
            let iter_ends: Vec<Nanos> = tl
                .chunks(per_iter)
                .map(|c| c.last().expect("chunk").completed_at.expect("done"))
                .collect();
            AppRun {
                jct,
                iter_ends,
                failed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape_pfa_speeds_up_a() {
        // The headline QoS claims: PFA speeds A up vs FFA; ECMP is the
        // slowest for A; TS speeds B up relative to plain PFA.
        let ecmp = run_qos(QosStrategy::Ecmp, 0);
        let ffa = run_qos(QosStrategy::Ffa, 0);
        let pfa = run_qos(QosStrategy::Pfa, 0);
        let pfa_ts = run_qos(QosStrategy::PfaTs, 0);

        for run in [&ecmp, &ffa, &pfa, &pfa_ts] {
            assert!(
                run.iter().all(|r| r.failed == 0),
                "fault-free QoS runs must not fail collectives"
            );
        }
        let a = |r: &Vec<AppRun>| r[0].jct.as_secs_f64();
        let b = |r: &Vec<AppRun>| r[1].jct.as_secs_f64();
        let c = |r: &Vec<AppRun>| r[2].jct.as_secs_f64();

        assert!(
            a(&pfa) < a(&ffa) * 1.02,
            "PFA should not slow A down vs FFA: {} vs {}",
            a(&pfa),
            a(&ffa)
        );
        assert!(
            a(&ffa) < a(&ecmp) * 1.05,
            "FFA should not slow A down vs ECMP: {} vs {}",
            a(&ffa),
            a(&ecmp)
        );
        assert!(
            b(&pfa_ts) < b(&pfa) * 1.02,
            "TS should help B: {} vs {}",
            b(&pfa_ts),
            b(&pfa)
        );
        assert!(
            c(&pfa_ts) >= c(&pfa) * 0.98,
            "C pays for B's priority: {} vs {}",
            c(&pfa_ts),
            c(&pfa)
        );
    }
}
