//! Terminal table and CSV rendering for the figure regenerators.

use mccs_sim::stats::Summary;

/// Format a bandwidth in GB/s with two decimals.
pub fn fmt_gbps(v: f64) -> String {
    format!("{v:.2}")
}

/// Format `mean [p5, p95]` of a summary, in the summary's units.
pub fn fmt_summary(s: &Summary) -> String {
    let (lo, hi) = s.p95_interval();
    format!("{:.2} [{:.2},{:.2}]", s.mean(), lo, hi)
}

/// Print an aligned table: `headers` then `rows`.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Print a CSV block (machine-readable twin of the table) between
/// `# begin csv <tag>` / `# end csv` markers.
pub fn print_csv(tag: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("# begin csv {tag}");
    println!("{}", headers.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
    println!("# end csv");
}

/// Render CDF points as rows `(value, percentile)`.
pub fn cdf_rows(points: &[(f64, f64)]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|&(v, p)| vec![format!("{v:.3}"), format!("{p:.4}")])
        .collect()
}

/// One table cell as a JSON value: a bare number when it parses as a
/// finite float, a quoted (escaped) string otherwise.
fn json_cell(cell: &str) -> String {
    match cell.parse::<f64>() {
        Ok(v) if v.is_finite() => cell.to_owned(),
        _ => format!("\"{}\"", cell.replace('\\', "\\\\").replace('"', "\\\"")),
    }
}

/// Serialize a CSV-shaped table as a JSON array of row objects keyed by
/// `headers` — the machine-readable twin every figure binary embeds in
/// its `results/BENCH_*.json` record.
pub fn json_rows(headers: &[&str], rows: &[Vec<String>]) -> String {
    let objs: Vec<String> = rows
        .iter()
        .map(|row| {
            assert_eq!(row.len(), headers.len(), "ragged json row");
            let fields: Vec<String> = headers
                .iter()
                .zip(row)
                .map(|(h, c)| format!("\"{h}\":{}", json_cell(c)))
                .collect();
            format!("{{{}}}", fields.join(","))
        })
        .collect();
    format!("[{}]", objs.join(","))
}

/// Write the machine-readable record of a figure run to
/// `results/BENCH_<bench>.json`:
/// `{"bench":"<bench>","sim_workers":N,<body>}`. The worker count the
/// figure ran with is part of the record's metadata so `bench_check`
/// flags a baseline regenerated under a different pool size — figures
/// must be digest-invariant in `MCCS_SIM_WORKERS`, and comparing records
/// from different counts is exactly how that is enforced. Creates
/// `results/` if needed; failure to write is reported, not fatal (the
/// human-readable report already went to stdout).
pub fn write_bench_json(bench: &str, body: &str) {
    let workers = mccs_sim::par::workers_from_env();
    let json = format!("{{\"bench\":\"{bench}\",\"sim_workers\":{workers},{body}}}\n");
    let out = format!("results/BENCH_{bench}.json");
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all("results")?;
        std::fs::write(&out, &json)
    };
    match write() {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            &["col", "value"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
        print_csv("t", &["col", "value"], &[vec!["a".into(), "1".into()]]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn summary_formatting() {
        let s = Summary::new([1.0, 2.0, 3.0]);
        let f = fmt_summary(&s);
        assert!(f.starts_with("2.00 ["));
        assert_eq!(fmt_gbps(4.1666), "4.17");
    }

    #[test]
    fn cdf_rows_shape() {
        let rows = cdf_rows(&[(1.0, 0.5), (2.0, 1.0)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], "1.0000");
    }

    #[test]
    fn json_rows_types_cells() {
        let j = json_rows(
            &["name", "value"],
            &[
                vec!["alpha \"x\"".into(), "1.25".into()],
                vec!["beta".into(), "12.3%".into()],
            ],
        );
        assert_eq!(
            j,
            "[{\"name\":\"alpha \\\"x\\\"\",\"value\":1.25},\
             {\"name\":\"beta\",\"value\":\"12.3%\"}]"
        );
    }

    #[test]
    fn json_rows_rejects_non_finite_numbers() {
        let j = json_rows(&["v"], &[vec!["NaN".into()], vec!["inf".into()]]);
        // NaN/inf parse as floats but are not valid JSON numbers.
        assert_eq!(j, "[{\"v\":\"NaN\"},{\"v\":\"inf\"}]");
    }
}
