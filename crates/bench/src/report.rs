//! Terminal table and CSV rendering for the figure regenerators.

use mccs_sim::stats::Summary;

/// Format a bandwidth in GB/s with two decimals.
pub fn fmt_gbps(v: f64) -> String {
    format!("{v:.2}")
}

/// Format `mean [p5, p95]` of a summary, in the summary's units.
pub fn fmt_summary(s: &Summary) -> String {
    let (lo, hi) = s.p95_interval();
    format!("{:.2} [{:.2},{:.2}]", s.mean(), lo, hi)
}

/// Print an aligned table: `headers` then `rows`.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Print a CSV block (machine-readable twin of the table) between
/// `# begin csv <tag>` / `# end csv` markers.
pub fn print_csv(tag: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("# begin csv {tag}");
    println!("{}", headers.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
    println!("# end csv");
}

/// Render CDF points as rows `(value, percentile)`.
pub fn cdf_rows(points: &[(f64, f64)]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|&(v, p)| vec![format!("{v:.3}"), format!("{p:.4}")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            &["col", "value"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
        print_csv("t", &["col", "value"], &[vec!["a".into(), "1".into()]]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn summary_formatting() {
        let s = Summary::new([1.0, 2.0, 3.0]);
        let f = fmt_summary(&s);
        assert!(f.starts_with("2.00 ["));
        assert_eq!(fmt_gbps(4.1666), "4.17");
    }

    #[test]
    fn cdf_rows_shape() {
        let rows = cdf_rows(&[(1.0, 0.5), (2.0, 1.0)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], "1.0000");
    }
}
