//! Figure 8 — multi-application bus bandwidth across the four Figure 5b
//! setups, 128 MB AllReduce, under NCCL / NCCL(OR) / MCCS(-FFA) / MCCS.
//!
//! Bus bandwidth normalizes algorithm bandwidth by the op factor so the
//! numbers reflect per-app hardware utilization independent of
//! communicator size; the aggregate shows network utilization and the
//! per-app split shows fairness (2:1:1 in setup 3).
//!
//! Run: `cargo run --release -p mccs-bench --bin fig8_multi_app [trials]`

use mccs_bench::report::{json_rows, print_csv, print_table, write_bench_json};
use mccs_bench::variants::run_apps;
use mccs_bench::{multi_app_setup, AppSpec, SystemVariant};
use mccs_collectives::bus_bandwidth;
use mccs_collectives::op::all_reduce_sum;
use mccs_sim::stats::Summary;
use mccs_sim::Bytes;

const SIZE: Bytes = Bytes::mib(128);

/// Iterations per app, inversely sized to its expected per-collective
/// time so all tenants stay active over the same span (a tenant whose
/// last collectives run uncontended would otherwise inflate its mean);
/// the first and last samples are trimmed for the same reason.
fn iters_for(gpu_count: usize) -> usize {
    if gpu_count >= 4 {
        8
    } else {
        6
    }
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!(
        "== Figure 8: multi-application bus bandwidth ({trials} trials, 128MB AllReduce) ==\n"
    );
    println!("note: the paper labels the ECMP ablation MCCS(-FFA); it is the same");
    println!("variant as Figure 6's MCCS(-FA).\n");

    let mut setups_json = Vec::new();
    for setup in 1..=4usize {
        let apps = multi_app_setup(setup);
        println!(
            "--- Setup {setup}: {} ---",
            apps.iter()
                .map(|a| format!("{}({} GPUs)", a.name, a.gpus.len()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for variant in SystemVariant::ALL {
            let mut per_app: Vec<Vec<f64>> = vec![Vec::new(); apps.len()];
            for trial in 0..trials {
                let specs: Vec<AppSpec> = apps
                    .iter()
                    .map(|p| AppSpec {
                        placement: p.clone(),
                        op: all_reduce_sum(),
                        size: SIZE,
                        iters: iters_for(p.gpus.len()),
                    })
                    .collect();
                let lats = run_apps(variant, &specs, trial);
                for (i, app_lats) in lats.iter().enumerate() {
                    let n = apps[i].gpus.len();
                    let trimmed = &app_lats[1..app_lats.len() - 1];
                    for &lat in trimmed {
                        per_app[i].push(
                            bus_bandwidth(all_reduce_sum(), n, SIZE, lat).as_gbytes_per_sec(),
                        );
                    }
                }
            }
            let mut cells = vec![variant.label().to_owned()];
            let mut csv_row = vec![variant.label().to_owned()];
            let mut aggregate = 0.0;
            for (i, samples) in per_app.iter().enumerate() {
                let s = Summary::new(samples.iter().copied());
                let (lo, hi) = s.p95_interval();
                cells.push(format!(
                    "{}={:.2} [{:.2},{:.2}]",
                    apps[i].name,
                    s.mean(),
                    lo,
                    hi
                ));
                csv_row.push(format!("{:.4}", s.mean()));
                aggregate += s.mean();
            }
            cells.push(format!("{aggregate:.2}"));
            csv_row.push(format!("{aggregate:.4}"));
            rows.push(cells);
            csv.push(csv_row);
        }
        let mut headers = vec!["system"];
        let app_headers: Vec<String> = apps
            .iter()
            .map(|a| format!("busbw {} (GB/s)", a.name))
            .collect();
        for h in &app_headers {
            headers.push(h);
        }
        headers.push("aggregate");
        print_table(&headers, &rows);
        println!();
        let mut csv_headers = vec!["system"];
        for a in &apps {
            csv_headers.push(a.name);
        }
        csv_headers.push("aggregate");
        print_csv(&format!("fig8 setup{setup}"), &csv_headers, &csv);
        println!();
        setups_json.push(format!(
            "{{\"setup\":{setup},\"rows\":{}}}",
            json_rows(&csv_headers, &csv)
        ));
    }
    write_bench_json(
        "fig8_multi_app",
        &format!("\"trials\":{trials},\"setups\":[{}]", setups_json.join(",")),
    );
    println!(
        "paper shape: MCCS achieves the highest aggregate in every setup\n\
         (+75% over NCCL on average) and fair splits — equal shares in\n\
         setups 1/2/4, ~2:1:1 in setup 3 where A holds twice the NICs;\n\
         MCCS(-FFA)'s ECMP shows collisions and unfairness."
    );
}
