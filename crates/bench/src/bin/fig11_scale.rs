//! Figure 11 — CDF of per-job AllReduce-completion speedup vs random
//! rings on the 768-GPU cluster, for OR and OR+FFA, under random and
//! compact placement.
//!
//! 50 ResNet-50 jobs (100 MB gradients) of 16 or 32 GPUs arrive as a
//! Poisson process (λ = 200 ms); each experiment runs `runs` times
//! (paper: 5) and speedups aggregate over all jobs of all runs.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig11_scale [runs]`

use mccs_bench::report::{cdf_rows, print_csv};
use mccs_bench::scale::{plan_jobs, run_scale, speedups, ScaleConfig, ScaleVariant};
use mccs_sim::stats::{cdf_points, Summary};
use mccs_topology::presets::{spine_leaf, SpineLeafConfig};
use mccs_workloads::Placement;
use std::sync::Arc;

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("== Figure 11: at-scale speedup CDFs ({runs} runs/panel) ==");
    println!("cluster: 16 spines x 24 leaves x 4 hosts x 8 GPUs = 768 GPUs, 200G links\n");
    let topo = Arc::new(spine_leaf(&SpineLeafConfig::paper_large_scale()));

    for placement in [Placement::Random, Placement::Compact] {
        let label = match placement {
            Placement::Random => "random placement",
            Placement::Compact => "compact placement",
        };
        println!("--- {label} ---");
        let mut or_speedups = Vec::new();
        let mut orffa_speedups = Vec::new();
        for run in 0..runs {
            let cfg = ScaleConfig::paper(placement, 0xF16 + run);
            let plan = plan_jobs(&topo, &cfg);
            let random = run_scale(Arc::clone(&topo), &plan, ScaleVariant::RandomRing, &cfg);
            let or = run_scale(Arc::clone(&topo), &plan, ScaleVariant::OptimalRing, &cfg);
            let orffa =
                run_scale(Arc::clone(&topo), &plan, ScaleVariant::OptimalRingFfa, &cfg);
            or_speedups.extend(speedups(&random, &or));
            orffa_speedups.extend(speedups(&random, &orffa));
        }
        let or_mean = Summary::new(or_speedups.iter().copied()).mean();
        let orffa_mean = Summary::new(orffa_speedups.iter().copied()).mean();
        println!("OR mean speedup:     {or_mean:.2}x");
        println!("OR+FFA mean speedup: {orffa_mean:.2}x\n");
        print_csv(
            &format!("fig11 {label} OR"),
            &["speedup", "cdf"],
            &cdf_rows(&cdf_points(or_speedups)),
        );
        print_csv(
            &format!("fig11 {label} OR+FFA"),
            &["speedup", "cdf"],
            &cdf_rows(&cdf_points(orffa_speedups)),
        );
        println!();
    }
    println!(
        "paper shape: random placement OR 2.63x / OR+FFA 3.27x mean speedup;\n\
         compact placement OR 3.28x / OR+FFA 3.43x, with FFA adding little\n\
         under compact placement (jobs rarely span more than two racks)."
    );
}
