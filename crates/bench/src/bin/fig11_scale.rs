//! Figure 11 — CDF of per-job AllReduce-completion speedup vs random
//! rings on the 768-GPU cluster, for OR and OR+FFA, under random and
//! compact placement.
//!
//! 50 ResNet-50 jobs (100 MB gradients) of 16 or 32 GPUs arrive as a
//! Poisson process (λ = 200 ms); each experiment runs `runs` times
//! (paper: 5) and speedups aggregate over all jobs of all runs.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig11_scale [runs]`

use mccs_bench::report::{cdf_rows, print_csv, write_bench_json};
use mccs_bench::scale::{plan_jobs, run_scale, speedups, JobResult, ScaleConfig, ScaleVariant};
use mccs_sim::stats::{cdf_points, Summary};
use mccs_topology::presets::{spine_leaf, SpineLeafConfig};
use mccs_workloads::Placement;
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock and simulated-JCT aggregates for one variant of one panel.
#[derive(Default)]
struct VariantStats {
    wall_secs: f64,
    jct_secs: Vec<f64>,
}

impl VariantStats {
    fn absorb(&mut self, wall: f64, jobs: &[JobResult]) {
        self.wall_secs += wall;
        self.jct_secs
            .extend(jobs.iter().map(|j| j.mean_allreduce.as_secs_f64()));
    }

    fn mean_jct_ms(&self) -> f64 {
        Summary::new(self.jct_secs.iter().copied()).mean() * 1e3
    }
}

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("== Figure 11: at-scale speedup CDFs ({runs} runs/panel) ==");
    println!("cluster: 16 spines x 24 leaves x 4 hosts x 8 GPUs = 768 GPUs, 200G links\n");
    let topo = Arc::new(spine_leaf(&SpineLeafConfig::paper_large_scale()));

    let mut panels_json = Vec::new();
    for placement in [Placement::Random, Placement::Compact] {
        let label = match placement {
            Placement::Random => "random placement",
            Placement::Compact => "compact placement",
        };
        println!("--- {label} ---");
        let mut or_speedups = Vec::new();
        let mut orffa_speedups = Vec::new();
        let variants = [
            ScaleVariant::RandomRing,
            ScaleVariant::OptimalRing,
            ScaleVariant::OptimalRingFfa,
        ];
        let mut stats: Vec<VariantStats> =
            variants.iter().map(|_| VariantStats::default()).collect();
        for run in 0..runs {
            let cfg = ScaleConfig::paper(placement, 0xF16 + run);
            let plan = plan_jobs(&topo, &cfg);
            let mut results = Vec::new();
            for (v, s) in variants.iter().zip(&mut stats) {
                let t0 = Instant::now();
                let jobs = run_scale(Arc::clone(&topo), &plan, *v, &cfg);
                s.absorb(t0.elapsed().as_secs_f64(), &jobs);
                results.push(jobs);
            }
            or_speedups.extend(speedups(&results[0], &results[1]));
            orffa_speedups.extend(speedups(&results[0], &results[2]));
        }
        let or_mean = Summary::new(or_speedups.iter().copied()).mean();
        let orffa_mean = Summary::new(orffa_speedups.iter().copied()).mean();
        println!("OR mean speedup:     {or_mean:.2}x");
        println!("OR+FFA mean speedup: {orffa_mean:.2}x");
        let variant_names = ["random_ring", "optimal_ring", "optimal_ring_ffa"];
        let mut variants_json = Vec::new();
        for (name, s) in variant_names.iter().zip(&stats) {
            println!(
                "{name:<17} wall-clock {:>7.2} s   mean simulated JCT {:>8.2} ms",
                s.wall_secs,
                s.mean_jct_ms()
            );
            variants_json.push(format!(
                "{{\"name\":\"{name}\",\"wall_clock_s\":{:.4},\"mean_simulated_jct_ms\":{:.4}}}",
                s.wall_secs,
                s.mean_jct_ms()
            ));
        }
        println!();
        print_csv(
            &format!("fig11 {label} OR"),
            &["speedup", "cdf"],
            &cdf_rows(&cdf_points(or_speedups)),
        );
        print_csv(
            &format!("fig11 {label} OR+FFA"),
            &["speedup", "cdf"],
            &cdf_rows(&cdf_points(orffa_speedups)),
        );
        println!();
        let placement_name = match placement {
            Placement::Random => "random",
            Placement::Compact => "compact",
        };
        panels_json.push(format!(
            "{{\"placement\":\"{placement_name}\",\"or_mean_speedup\":{or_mean:.4},\
             \"orffa_mean_speedup\":{orffa_mean:.4},\"variants\":[{}]}}",
            variants_json.join(",")
        ));
    }
    // Machine-readable record alongside the human-readable report.
    write_bench_json(
        "fig11_scale",
        &format!("\"runs\":{runs},\"panels\":[{}]", panels_json.join(",")),
    );
    println!(
        "paper shape: random placement OR 2.63x / OR+FFA 3.27x mean speedup;\n\
         compact placement OR 3.28x / OR+FFA 3.43x, with FFA adding little\n\
         under compact placement (jobs rarely span more than two racks)."
    );
}
