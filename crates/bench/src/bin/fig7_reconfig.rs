//! Figure 7 — runtime ring reconfiguration around a background flow.
//!
//! Four switches in a ring, one training host (2 GPUs, 2×50G NICs) and
//! one traffic host (100G NIC) per switch; inter-switch links 100G. An
//! 8-GPU AllReduce job runs a clockwise ring. At t=7.5s a 75 Gbps
//! background flow starts on the clockwise sw0→sw1 link, collapsing the
//! job's bandwidth; at t=12s the controller reverses the ring, and the
//! job recovers without interruption.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig7_reconfig`

use mccs_bench::report::{json_rows, print_csv, write_bench_json};
use mccs_collectives::op::all_reduce_sum;
use mccs_collectives::{algo_bandwidth, RingOrder};
use mccs_core::config::RouteMap;
use mccs_core::{Cluster, ClusterConfig};
use mccs_ipc::CommunicatorId;
use mccs_netsim::FlowSpec;
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bandwidth, Bytes, Nanos, TimeSeries};
use mccs_topology::{GpuId, PodId, SwitchRole, TopologyBuilder};
use std::sync::Arc;

/// Ring-of-4-switches with a training host and a traffic host per switch.
fn ring_topology() -> mccs_topology::Topology {
    let mut b = TopologyBuilder::new();
    let racks: Vec<_> = (0..4).map(|_| b.add_rack(PodId(0))).collect();
    let switches: Vec<_> = (0..4)
        .map(|i| b.add_switch(SwitchRole::Generic, Some(racks[i])))
        .collect();
    for i in 0..4 {
        b.connect_switches(switches[i], switches[(i + 1) % 4], Bandwidth::gbps(100.0));
    }
    // Training hosts first: hosts 0-3, GPUs 0-7, NICs 0-7.
    for i in 0..4 {
        b.add_host(racks[i], switches[i], 2, Bandwidth::gbps(50.0));
    }
    // Traffic hosts: hosts 4-7, GPUs/NICs 8-11.
    for i in 0..4 {
        b.add_host(racks[i], switches[i], 1, Bandwidth::gbps(100.0));
    }
    b.build()
}

const SIZE: Bytes = Bytes::mib(64);
const END: Nanos = Nanos::from_millis(20_000);
const BG_START: Nanos = Nanos::from_millis(7_500);
const RECONFIG: Nanos = Nanos::from_millis(12_000);

fn main() {
    println!("== Figure 7: adapting to background flows at runtime ==\n");
    let topo = Arc::new(ring_topology());
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::with_seed(7));

    // The 8-GPU job over the four training hosts, clockwise world order.
    let comm = CommunicatorId(1);
    let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
    let iters = 4000; // more than fits in 20s; we cut the run at END
    let ranks = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = ScriptedProgram::new(
                format!("ar/r{rank}"),
                vec![
                    ScriptStep::Alloc {
                        size: SIZE,
                        slot: 0,
                    },
                    ScriptStep::Alloc {
                        size: SIZE,
                        slot: 1,
                    },
                    ScriptStep::CommInit {
                        comm,
                        world: gpus.clone(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm,
                        op: all_reduce_sum(),
                        size: SIZE,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                    ScriptStep::Repeat {
                        from_step: 3,
                        times: iters - 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn AppProgram>)
        })
        .collect();
    let app = cluster.add_app("ar8", ranks);

    // Phase 1: free run.
    cluster.run_until(BG_START);
    // Phase 2: 75G background flow on the clockwise sw0 -> sw1 link
    // (traffic host at switch 0 -> traffic host at switch 1: NICs 8 -> 9).
    let now = cluster.world.clock;
    let bg = cluster.world.net.start_flow(
        now,
        FlowSpec::background(
            mccs_topology::NicId(8),
            mccs_topology::NicId(9),
            Bandwidth::gbps(75.0),
            0,
        ),
    );
    println!(
        "t={:.1}s  background flow of 75 Gbps starts",
        now.as_secs_f64()
    );
    cluster.run_until(RECONFIG);
    // Phase 3: the controller reverses the ring.
    let info = cluster.mgmt().communicator(comm).expect("registered");
    let reversed: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
    cluster.mgmt().reconfigure(comm, reversed, RouteMap::ecmp());
    println!(
        "t={:.1}s  reconfiguration issued: ring reversed (epoch {} -> {})",
        cluster.world.clock.as_secs_f64(),
        info.epoch,
        info.epoch + 1
    );
    cluster.run_until(END);
    cluster.world.net.cancel_flow(cluster.world.clock, bg);

    // Per-collective algorithm bandwidth over time.
    let mut series = TimeSeries::new("algbw");
    for rec in cluster.mgmt().timeline(app) {
        let done = rec.completed_at.expect("complete");
        if done > END {
            break;
        }
        let bw = algo_bandwidth(SIZE, rec.latency().expect("complete"));
        series.push(done, bw.as_gbytes_per_sec());
    }
    let rows: Vec<Vec<String>> = series
        .windowed_means(Nanos::from_millis(500))
        .into_iter()
        .map(|(t, v)| vec![format!("{:.2}", t.as_secs_f64()), format!("{v:.2}")])
        .collect();
    print_csv("fig7", &["elapsed_s", "algbw_gbs"], &rows);

    // Summary of the three phases.
    let phase = |from: Nanos, to: Nanos| series.mean_in(from, to).unwrap_or(0.0);
    let before = phase(Nanos::from_millis(2_000), BG_START);
    let during = phase(BG_START + Nanos::from_millis(500), RECONFIG);
    let after = phase(RECONFIG + Nanos::from_millis(500), END);
    println!("\nphase means (GB/s): before={before:.2}  during-bg={during:.2}  after-reconfig={after:.2}");
    write_bench_json(
        "fig7_reconfig",
        &format!(
            "\"phase_means_gbps\":{{\"before\":{before:.4},\"during_bg\":{during:.4},\
             \"after_reconfig\":{after:.4}}},\"series\":{}",
            json_rows(&["elapsed_s", "algbw_gbs"], &rows)
        ),
    );
    println!(
        "paper shape: ~5.9 -> ~1.7 -> ~5.9 GB/s (drop when the background\n\
         flow lands on the clockwise path, immediate recovery after the\n\
         transparent ring reversal)."
    );
    assert!(
        during < before * 0.45,
        "background flow should crush bandwidth"
    );
    assert!(
        after > before * 0.9,
        "reconfiguration should restore bandwidth"
    );
}
