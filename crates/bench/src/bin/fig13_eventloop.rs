//! Figure 13 (extension) — event-loop cost of the wake-driven scheduler.
//!
//! A 128-GPU spine-leaf cluster hosts 16 staggered tenants: each sleeps
//! until its slot, runs a short AllReduce burst, and goes quiet. At any
//! instant ~1–2 tenants are active and the other ~240 engines are parked,
//! which is exactly the regime the ready-set scheduler exists for: the
//! naive oracle polls every engine on every pass regardless, so its cost
//! per sim step is O(world size) while the wake scheduler's is O(ready
//! work).
//!
//! The same workload runs under both schedulers. Observable digests must
//! match (scheduling is not allowed to change behavior); the poll
//! counters then quantify the win:
//!
//! * **step-throughput gain** — naive polls / wake polls to retire the
//!   identical virtual run (each poll is one engine step, so fewer polls
//!   for the same work = proportionally higher step throughput);
//! * **wasted-poll-ratio reduction** — wasted polls *per useful poll*
//!   (both schedulers retire exactly the same useful polls, an invariant
//!   this figure asserts). Normalizing by work keeps the ratio honest:
//!   wasted-over-total saturates at 1.0 on an idle-heavy world, hiding
//!   any improvement behind the naive oracle's 0.999.
//!
//! Both are deterministic (pinned seed, virtual time) and gated by
//! `bench_check`; wall-clock fields are informational only.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig13_eventloop`

use mccs_bench::report::{print_table, write_bench_json};
use mccs_collectives::op::all_reduce_sum;
use mccs_core::{Cluster, ClusterConfig};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bandwidth, Bytes, Nanos};
use mccs_topology::presets::{spine_leaf, SpineLeafConfig};
use mccs_topology::GpuId;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 13;
const SIZE: Bytes = Bytes::mib(4);
const ITERS: usize = 2;
const TENANTS: usize = 16;
/// Gap between tenant activity slots — the idle heaviness knob.
const SLOT: Nanos = Nanos::from_millis(4);

/// Acceptance floors (the reason this figure exists).
const MIN_STEP_GAIN: f64 = 5.0;
const MIN_WASTED_REDUCTION: f64 = 10.0;

/// 4 spines x 4 leaves x 4 hosts x 8 GPUs = 128 GPUs, oversubscription 8.
fn topology() -> SpineLeafConfig {
    SpineLeafConfig {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 4,
        gpus_per_host: 8,
        nic_bandwidth: Bandwidth::gbps(100.0),
        leaf_spine_bandwidth: Bandwidth::gbps(100.0),
    }
}

/// Tenant `t` owns GPU slot `t % 8` of eight alternating hosts, so every
/// ring crosses hosts (and racks) and exercises proxy + transport + net.
fn tenant_gpus(t: usize) -> Vec<GpuId> {
    (0..8).map(|k| GpuId((k * 16 + t) as u32)).collect()
}

fn rank_program(t: usize, rank: usize, world: &[GpuId]) -> ScriptedProgram {
    let comm = CommunicatorId(1 + t as u64);
    ScriptedProgram::new(
        format!("el-t{t}/r{rank}"),
        vec![
            ScriptStep::Alloc {
                size: SIZE,
                slot: 0,
            },
            ScriptStep::Alloc {
                size: SIZE,
                slot: 1,
            },
            ScriptStep::CommInit {
                comm,
                world: world.to_vec(),
                rank,
            },
            // Staggered slots: while tenant t works, the other 15 idle.
            ScriptStep::SleepUntil(SLOT * (t as u64 + 1)),
            ScriptStep::Collective {
                comm,
                op: all_reduce_sum(),
                size: SIZE,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 4,
                times: ITERS - 1,
            },
        ],
    )
}

struct RunStats {
    digest: u64,
    polls: u64,
    wasted: u64,
    wakes: u64,
    waves: u64,
    max_group: u64,
    wall_s: f64,
}

impl RunStats {
    fn useful(&self) -> u64 {
        self.polls - self.wasted
    }

    /// Wasted polls per useful poll — event-loop overhead per unit of
    /// retired work.
    fn wasted_ratio(&self) -> f64 {
        self.wasted as f64 / self.useful() as f64
    }
}

fn run(naive: bool, workers: usize) -> RunStats {
    let mut cluster = Cluster::new(
        Arc::new(spine_leaf(&topology())),
        ClusterConfig::with_seed(SEED),
    );
    cluster.set_naive_scheduler(naive);
    cluster.set_sim_workers(workers);
    for t in 0..TENANTS {
        let gpus = tenant_gpus(t);
        let ranks = gpus
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let prog = rank_program(t, rank, &gpus);
                (gpu, Box::new(prog) as Box<dyn AppProgram>)
            })
            .collect();
        cluster.add_app(&format!("el-t{t}"), ranks);
    }
    let t0 = Instant::now();
    cluster.run_until_quiescent(Nanos::from_secs(120));
    let wall_s = t0.elapsed().as_secs_f64();
    for t in 0..TENANTS {
        let tl = cluster.mgmt().timeline(AppId(t as u32));
        assert_eq!(tl.len(), ITERS, "tenant {t} lost collectives");
    }
    let s = cluster.scheduler_stats();
    RunStats {
        digest: cluster.observable_digest(),
        polls: s.polls,
        wasted: s.wasted_polls,
        wakes: s.wakes,
        waves: s.waves,
        max_group: s.max_group,
        wall_s,
    }
}

fn main() {
    let world = topology();
    assert_eq!(
        world.leaves * world.hosts_per_leaf * world.gpus_per_host,
        128
    );
    println!("== Figure 13 (extension): wake-driven scheduler vs naive poll-all oracle ==");
    println!(
        "cluster: 128 GPUs, {TENANTS} tenants in staggered {} ms slots ({ITERS}x {} AllReduce)\n",
        SLOT.as_secs_f64() * 1e3,
        SIZE,
    );

    let wake = run(false, 1);
    let naive = run(true, 1);
    // The same workload on the 8-worker wave pool: digest AND efficiency
    // counters must be byte-identical to the sequential wake run — the
    // pool only adds the wave/group gauges.
    let pooled = run(false, 8);
    assert_eq!(
        wake.digest, naive.digest,
        "schedulers must be observably equivalent"
    );
    assert_eq!(
        wake.digest, pooled.digest,
        "8-worker pool must be observably invisible"
    );
    assert_eq!(
        (wake.polls, wake.wasted, wake.wakes),
        (pooled.polls, pooled.wasted, pooled.wakes),
        "worker pool must not change scheduler counters"
    );
    assert!(
        pooled.waves > 0 && pooled.max_group > 0,
        "parallel run must report wave gauges"
    );
    assert_eq!(
        wake.useful(),
        naive.useful(),
        "identical runs must retire identical useful polls"
    );

    let step_gain = naive.polls as f64 / wake.polls as f64;
    let wasted_reduction = naive.wasted_ratio() / wake.wasted_ratio();

    let headers = [
        "scheduler",
        "polls",
        "wasted_polls",
        "wasted_per_useful",
        "wakes",
        "waves",
        "max_group",
        "wall_clock_s",
    ];
    let rows: Vec<Vec<String>> = [("wake", &wake), ("wake-8w", &pooled), ("naive", &naive)]
        .iter()
        .map(|(name, s)| {
            vec![
                name.to_string(),
                s.polls.to_string(),
                s.wasted.to_string(),
                format!("{:.4}", s.wasted_ratio()),
                s.wakes.to_string(),
                s.waves.to_string(),
                s.max_group.to_string(),
                format!("{:.3}", s.wall_s),
            ]
        })
        .collect();
    print_table(&headers, &rows);
    println!("\nstep-throughput gain (naive polls / wake polls):      {step_gain:.1}x");
    println!("wasted-poll-ratio reduction (wasted per useful poll): {wasted_reduction:.1}x");
    println!(
        "wall-clock: wake {:.3}s vs naive {:.3}s ({:.1}x, machine-dependent)",
        wake.wall_s,
        naive.wall_s,
        naive.wall_s / wake.wall_s
    );

    // The acceptance floors are part of the record: regenerating this
    // figure on a regression fails CI before bench_check even diffs.
    assert!(
        step_gain >= MIN_STEP_GAIN,
        "step-throughput gain {step_gain:.2}x below the {MIN_STEP_GAIN}x floor"
    );
    assert!(
        wasted_reduction >= MIN_WASTED_REDUCTION,
        "wasted-poll-ratio reduction {wasted_reduction:.2}x below the {MIN_WASTED_REDUCTION}x floor"
    );

    write_bench_json(
        "fig13_eventloop",
        &format!(
            "\"gpus\":128,\"tenants\":{TENANTS},\"iters\":{ITERS},\"useful_polls\":{},\
             \"wake\":{{\"polls\":{},\"wasted_polls\":{},\"wasted_per_useful\":{:.6},\"wakes\":{},\"wall_clock_s\":{:.4}}},\
             \"naive\":{{\"polls\":{},\"wasted_polls\":{},\"wasted_per_useful\":{:.6},\"wakes\":{},\"wall_clock_s\":{:.4}}},\
             \"pooled_8w\":{{\"polls\":{},\"waves\":{},\"max_group\":{},\"digest_equal\":true,\"wall_clock_s\":{:.4}}},\
             \"step_throughput_gain\":{step_gain:.4},\"wasted_poll_ratio_reduction\":{wasted_reduction:.4},\
             \"wall_clock_speedup\":{:.4}",
            wake.useful(),
            wake.polls,
            wake.wasted,
            wake.wasted_ratio(),
            wake.wakes,
            wake.wall_s,
            naive.polls,
            naive.wasted,
            naive.wasted_ratio(),
            naive.wakes,
            naive.wall_s,
            pooled.polls,
            pooled.waves,
            pooled.max_group,
            pooled.wall_s,
            naive.wall_s / wake.wall_s,
        ),
    );
}
