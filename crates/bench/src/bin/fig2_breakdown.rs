//! Figure 2 — training-time breakdown (idle / memcpy / compute / comm)
//! across four product groups.
//!
//! The paper's figure is measured on production models at a large social
//! network company; we substitute the calibrated synthetic profiles of
//! `mccs_workloads::models::product_group_profiles` and price their
//! collectives through the simulated testbed's measured AllReduce
//! bandwidth, then report each group's fraction per category.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig2_breakdown`

use mccs_bench::report::{json_rows, print_csv, print_table, write_bench_json};
use mccs_bench::{run_single_app, vm_order_8gpu, SystemVariant};
use mccs_collectives::op::all_reduce_sum;
use mccs_sim::{Bytes, Nanos};
use mccs_workloads::models::product_group_profiles;
use mccs_workloads::Breakdown;

fn main() {
    println!("== Figure 2: training time breakdown by product group ==\n");

    // Price collectives with the measured MCCS 8-GPU AllReduce bandwidth
    // at a representative bucket size.
    let probe_size = Bytes::new(50_000_000);
    let lat = run_single_app(
        SystemVariant::Mccs,
        all_reduce_sum(),
        probe_size,
        vm_order_8gpu(),
        3,
        0,
    );
    let mean_lat: f64 = lat.iter().map(|l| l.as_secs_f64()).sum::<f64>() / lat.len() as f64;
    let bytes_per_sec = probe_size.as_f64() / mean_lat;
    println!(
        "collective pricing: measured AllReduce algorithm bandwidth {:.2} GB/s\n",
        bytes_per_sec / 1e9
    );

    let mut rows = Vec::new();
    for profile in product_group_profiles() {
        let b = Breakdown::of(&profile, |size| {
            Nanos::from_secs_f64(size.as_f64() / bytes_per_sec)
        });
        assert!(b.is_normalized());
        rows.push(vec![
            profile.name.clone(),
            format!("{:.1}%", b.idle * 100.0),
            format!("{:.1}%", b.memcpy * 100.0),
            format!("{:.1}%", b.compute * 100.0),
            format!("{:.1}%", b.comm * 100.0),
        ]);
    }
    print_table(&["group", "idle", "memcpy", "compute", "comm"], &rows);
    println!();
    print_csv(
        "fig2",
        &["group", "idle", "memcpy", "compute", "comm"],
        &rows,
    );
    write_bench_json(
        "fig2_breakdown",
        &format!(
            "\"allreduce_bandwidth_gbps\":{:.4},\"groups\":{}",
            bytes_per_sec / 1e9,
            json_rows(&["group", "idle", "memcpy", "compute", "comm"], &rows)
        ),
    );
    println!(
        "\npaper shape: communication is a significant share of training time\n\
         in every group (the motivation for optimizing collectives)."
    );
}
