//! Figure 6 — single-application AllGather/AllReduce algorithm bandwidth
//! on the testbed, 32 KB – 512 MB, 4-GPU and 8-GPU setups, for NCCL,
//! NCCL(OR), MCCS(-FA) and MCCS.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig6_single_app [trials]`

use mccs_bench::report::{json_rows, print_csv, print_table, write_bench_json};
use mccs_bench::{run_single_app, vm_order_4gpu, vm_order_8gpu, SystemVariant};
use mccs_collectives::op::all_reduce_sum;
use mccs_collectives::{algo_bandwidth, CollectiveOp};
use mccs_sim::stats::Summary;
use mccs_sim::Bytes;

fn sizes() -> Vec<Bytes> {
    // 32KB to 512MB in factors of 4, the paper's x-axis.
    (0..8).map(|i| Bytes::kib(32 << (2 * i))).collect()
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("== Figure 6: single-application algorithm bandwidth ({trials} trials) ==\n");

    type GpuOrder = fn() -> Vec<mccs_topology::GpuId>;
    let panels: [(&str, CollectiveOp, GpuOrder); 4] = [
        ("AllGather (4-GPU)", CollectiveOp::AllGather, vm_order_4gpu),
        ("AllReduce (4-GPU)", all_reduce_sum(), vm_order_4gpu),
        ("AllGather (8-GPU)", CollectiveOp::AllGather, vm_order_8gpu),
        ("AllReduce (8-GPU)", all_reduce_sum(), vm_order_8gpu),
    ];

    let mut panels_json = Vec::new();
    for (panel, op, gpus_fn) in panels {
        println!("--- {panel} ---");
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for size in sizes() {
            let mut cells = vec![format!("{size}")];
            let mut csv_row = vec![format!("{}", size.as_u64())];
            for variant in SystemVariant::ALL {
                let mut bws = Vec::new();
                for trial in 0..trials {
                    let lats = run_single_app(variant, op, size, gpus_fn(), 3, trial);
                    for lat in lats {
                        bws.push(algo_bandwidth(size, lat).as_gbytes_per_sec());
                    }
                }
                let s = Summary::new(bws);
                let (lo, hi) = s.p95_interval();
                cells.push(format!("{:.2} [{:.2},{:.2}]", s.mean(), lo, hi));
                csv_row.push(format!("{:.4}", s.mean()));
                csv_row.push(format!("{lo:.4}"));
                csv_row.push(format!("{hi:.4}"));
            }
            rows.push(cells);
            csv.push(csv_row);
        }
        let mut headers = vec!["size"];
        for v in SystemVariant::ALL {
            headers.push(v.label());
        }
        print_table(&headers, &rows);
        println!();
        let csv_headers = [
            "size_bytes",
            "nccl_mean",
            "nccl_p5",
            "nccl_p95",
            "nccl_or_mean",
            "nccl_or_p5",
            "nccl_or_p95",
            "mccs_nofa_mean",
            "mccs_nofa_p5",
            "mccs_nofa_p95",
            "mccs_mean",
            "mccs_p5",
            "mccs_p95",
        ];
        print_csv(&format!("fig6 {panel}"), &csv_headers, &csv);
        println!();
        panels_json.push(format!(
            "{{\"panel\":\"{panel}\",\"rows\":{}}}",
            json_rows(&csv_headers, &csv)
        ));
    }
    write_bench_json(
        "fig6_single_app",
        &format!("\"trials\":{trials},\"panels\":[{}]", panels_json.join(",")),
    );
    println!(
        "paper shape: MCCS trails the library baselines below ~8MB (IPC\n\
         latency), converges by 8MB, and wins at large sizes — up to ~2.4x\n\
         over NCCL on the 8-GPU setup at 512MB, with MCCS > MCCS(-FA) where\n\
         ECMP collisions occur."
    );
}
