//! Figure 14 (extension) — hyperscale soak: a ≥10k-GPU fat-tree under
//! arrival-process tenant churn.
//!
//! The at-scale study (Figure 11) runs the paper's 768-GPU cluster; this
//! figure is the order-of-magnitude stress the arena-indexed hot state
//! and the rack-partitioned max-min solver exist for. A 10,240-GPU
//! spine-leaf fabric (16 spines × 40 leaves × 32 hosts × 8 GPUs) hosts a
//! Poisson arrival process of 16/32-GPU tenants (from `mccs-workloads`,
//! §6.5 parameters scaled down in duration); every arrival and departure
//! is a churn event that re-solves only its rack component plus the
//! touched spine links.
//!
//! Four records are asserted, not just reported:
//!
//! * **digest equality** — the run repeats with every netsim fast path
//!   disabled ([`Cluster::set_netsim_oracle`]: map-backed flow storage,
//!   global from-scratch solve) and the observable digests must match
//!   byte for byte;
//! * **sharded vs. global equivalence** — a six-member sweep crosses
//!   {single-queue oracle, per-rack sharded} event queues with
//!   {1, 2, 8} simulation workers, in process, and every member's digest
//!   and poll count must equal the solo run's byte for byte;
//! * **step-throughput floor** — engine polls retired per wall-clock
//!   second on the fast run (conservative: an order of magnitude under a
//!   release-build laptop, but it catches an accidental O(world) step);
//! * **peak-memory floor** — peak live heap of the fast run, measured by
//!   a counting global allocator. Dense arenas size with the *live* flow
//!   window and the link count, not with total flows ever started.
//!
//! The sweep members run *concurrently* as independent clusters on the
//! deterministic worker pool, and the wall-clock overlap (summed member
//! walls over sweep wall) is asserted ≥ 4x: with six interleaving
//! members the ratio clears the floor even on a single hardware core,
//! and a member that serializes the whole sweep (a rogue global lock)
//! drags it under.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig14_hyperscale`

use mccs_baseline::{BaselineConfig, BaselineJob, Phase, RingChoice};
use mccs_bench::report::{print_table, write_bench_json};
use mccs_bench::scale::{plan_jobs, ScaleConfig};
use mccs_collectives::op::all_reduce_sum;
use mccs_core::config::RouteMap;
use mccs_core::{Cluster, ClusterConfig};
use mccs_sim::{Bandwidth, Bytes, Nanos, Workers};
use mccs_topology::presets::{spine_leaf, SpineLeafConfig};
use mccs_workloads::Placement;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pass-through allocator tracking live and peak heap bytes. Layout sizes
/// are exact and platform-independent, so the peak is as deterministic as
/// the simulation itself and can be regression-gated by `bench_check`.
struct PeakAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

fn note_live(live: usize) {
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: defers entirely to `System`; only maintains relaxed counters.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_live(LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                note_live(LIVE_BYTES.fetch_add(grow, Ordering::Relaxed) + grow);
            } else {
                LIVE_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOCATOR: PeakAlloc = PeakAlloc;

/// Reset the peak to the current live level (so each run's peak is its
/// own, not the previous run's high-water mark).
fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

const SEED: u64 = 14;
const JOBS: usize = 96;
const ITERS: usize = 4;
const COLLECTIVE: Bytes = Bytes::mib(8);
const CHANNELS: usize = 2;

/// Acceptance floors. Throughput is wall-clock-derived and deliberately
/// an order of magnitude under a release-build laptop; it exists to catch
/// an accidental O(world)-per-step regression, not to benchmark hardware.
const MIN_POLLS_PER_SEC: f64 = 2_000.0;
/// Peak live heap ceiling for the fast run. The 10k-GPU world (topology,
/// queues, arenas) plus the live flow window fits comfortably; blowing
/// this means some table started scaling with total-flows-ever or with
/// GPUs², which is exactly what the dense arenas forbid.
const MAX_PEAK_HEAP_MIB: f64 = 256.0;
/// Wall-clock overlap floor for the six-member sharded × workers sweep.
const MIN_SWEEP_OVERLAP: f64 = 4.0;

/// 16 spines × 40 leaves × 32 hosts × 8 GPUs = 10,240 GPUs.
fn topology() -> SpineLeafConfig {
    SpineLeafConfig {
        spines: 16,
        leaves: 40,
        hosts_per_leaf: 32,
        gpus_per_host: 8,
        nic_bandwidth: Bandwidth::gbps(100.0),
        leaf_spine_bandwidth: Bandwidth::gbps(200.0),
    }
}

/// §6.5-style churn, scaled in duration so the soak stays a quick gate:
/// 16/32-GPU jobs, Poisson arrivals, short iterations.
fn workload() -> ScaleConfig {
    ScaleConfig {
        jobs: JOBS,
        mean_gap: Nanos::from_millis(10),
        sizes: vec![16, 32],
        iterations: ITERS,
        collective: COLLECTIVE,
        compute: Nanos::from_millis(2),
        channels: CHANNELS,
        baseline_channels: CHANNELS,
        placement: Placement::Random,
        seed: SEED,
    }
}

struct RunStats {
    digest: u64,
    polls: u64,
    wall_s: f64,
    peak_heap_mib: f64,
    virtual_s: f64,
    sim_shards: usize,
}

/// One soak. `shards` is the event-queue layout: `1` pins the
/// single-queue global oracle, `0` resolves to the per-rack auto layout
/// (one shard per rack plus the shared shard 0 — 41 on this fabric,
/// spanning proxies, transports and every tenant's frontends).
fn run(oracle: bool, workers: usize, shards: usize) -> RunStats {
    let topo = Arc::new(spine_leaf(&topology()));
    let cfg = workload();
    let planned = plan_jobs(&topo, &cfg);
    assert_eq!(planned.len(), JOBS, "every job must place");
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::library_mode(SEED));
    cluster.set_netsim_oracle(oracle);
    cluster.set_sim_workers(workers);
    cluster.set_sim_shards(shards);
    let mut apps = Vec::new();
    for job in &planned {
        let phases = vec![
            Phase::Compute(cfg.compute),
            Phase::Collective {
                op: all_reduce_sum(),
                size: cfg.collective,
            },
        ];
        let app = BaselineJob::spawn(
            &mut cluster,
            &format!("hs-job{}", job.id),
            BaselineConfig {
                channels: CHANNELS,
                ring: RingChoice::RandomHosts,
                routes: RouteMap::ecmp(),
                hash_salt: SEED ^ job.id as u64,
                ..Default::default()
            },
            job.gpus.clone(),
            phases,
            ITERS,
            job.start,
        );
        apps.push((job.id, app));
    }
    reset_peak();
    let t0 = Instant::now();
    cluster.run_until_quiescent(Nanos::from_secs(3600));
    let wall_s = t0.elapsed().as_secs_f64();
    let peak_heap_mib = PEAK_BYTES.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0);
    for (id, app) in &apps {
        let tl = cluster.mgmt().timeline(*app);
        assert_eq!(tl.len(), ITERS, "job {id} lost collectives");
    }
    RunStats {
        digest: cluster.observable_digest(),
        polls: cluster.scheduler_stats().polls,
        wall_s,
        peak_heap_mib,
        virtual_s: cluster.now().as_secs_f64(),
        sim_shards: cluster.sim_shards(),
    }
}

fn main() {
    let world = topology();
    let gpus = world.leaves * world.hosts_per_leaf * world.gpus_per_host;
    assert!(gpus >= 10_000, "hyperscale means ≥10k GPUs, got {gpus}");
    println!("== Figure 14 (extension): hyperscale soak, {gpus} GPUs under tenant churn ==");
    println!(
        "cluster: {} spines x {} leaves x {} hosts x {} GPUs; {JOBS} Poisson jobs, \
         {ITERS}x {COLLECTIVE} AllReduce each\n",
        world.spines, world.leaves, world.hosts_per_leaf, world.gpus_per_host,
    );

    let fast = run(false, 1, 0);
    let oracle = run(true, 1, 0);
    assert_eq!(
        fast.digest, oracle.digest,
        "arena + hierarchical solve diverged from the map-backed global oracle"
    );

    // Sharded × worker sweep, itself dispatched on the deterministic
    // worker pool: six more fast runs crossing {global single-queue,
    // per-rack sharded} event queues with {1, 2, 8} simulation workers
    // execute *concurrently* as independent clusters. Each member's
    // digest and poll count must equal the solo run's byte for byte —
    // the in-process analogue of CI's MCCS_SIM_WORKERS ×
    // MCCS_SIM_SHARDED matrix, and the sharded-vs-global comparison the
    // shard layout is gated on. The overlap ratio (summed member walls
    // over sweep wall) is asserted against `MIN_SWEEP_OVERLAP`: six
    // interleaving members clear 4x even on one hardware core, unless
    // something serializes the members. Peak-heap counters are global,
    // so sweep members don't report memory.
    const SWEEP: [(usize, usize); 6] = [(1, 1), (1, 2), (1, 8), (0, 1), (0, 2), (0, 8)];
    let t0 = Instant::now();
    let sweep = Workers::new(SWEEP.len()).run(SWEEP.len(), |i| {
        let (shards, workers) = SWEEP[i];
        run(false, workers, shards)
    });
    let sweep_wall_s = t0.elapsed().as_secs_f64();
    let member_sum_s: f64 = sweep.iter().map(|s| s.wall_s).sum();
    for (s, (shards, w)) in sweep.iter().zip(SWEEP) {
        let layout = if shards == 1 { "global" } else { "sharded" };
        assert_eq!(
            s.digest, fast.digest,
            "digest moved at sim_workers={w} ({layout} queues): \
             the pool and the shard layout must be observably invisible"
        );
        assert_eq!(
            s.polls, fast.polls,
            "poll count moved at sim_workers={w} ({layout} queues)"
        );
    }
    let sweep_overlap = member_sum_s / sweep_wall_s;

    let polls_per_sec = fast.polls as f64 / fast.wall_s;
    let headers = [
        "netsim",
        "polls",
        "virtual_s",
        "peak_heap_mib",
        "wall_clock_s",
    ];
    let rows: Vec<Vec<String>> = [("fast", &fast), ("oracle", &oracle)]
        .iter()
        .map(|(name, s)| {
            vec![
                name.to_string(),
                s.polls.to_string(),
                format!("{:.3}", s.virtual_s),
                format!("{:.1}", s.peak_heap_mib),
                format!("{:.3}", s.wall_s),
            ]
        })
        .collect();
    print_table(&headers, &rows);
    println!("\ndigests match: 0x{:016x}", fast.digest);
    println!("step throughput (fast): {polls_per_sec:.0} polls/s (floor {MIN_POLLS_PER_SEC})");
    println!(
        "peak live heap (fast):  {:.1} MiB (ceiling {MAX_PEAK_HEAP_MIB})",
        fast.peak_heap_mib
    );
    println!(
        "wall-clock: fast {:.2}s vs oracle {:.2}s ({:.1}x, machine-dependent)",
        fast.wall_s,
        oracle.wall_s,
        oracle.wall_s / fast.wall_s
    );
    println!(
        "sharded x worker sweep {{global,sharded({})}}x{{1,2,8}}: digests equal; \
         {:.2}s concurrent vs {:.2}s summed ({sweep_overlap:.1}x overlap, floor {MIN_SWEEP_OVERLAP}x)",
        fast.sim_shards, sweep_wall_s, member_sum_s,
    );

    // The floors are part of the record: regenerating this figure on a
    // regression fails CI before bench_check even diffs.
    assert!(
        polls_per_sec >= MIN_POLLS_PER_SEC,
        "step throughput {polls_per_sec:.0} polls/s under the {MIN_POLLS_PER_SEC} floor"
    );
    assert!(
        fast.peak_heap_mib <= MAX_PEAK_HEAP_MIB,
        "peak heap {:.1} MiB over the {MAX_PEAK_HEAP_MIB} MiB ceiling",
        fast.peak_heap_mib
    );
    assert!(
        sweep_overlap >= MIN_SWEEP_OVERLAP,
        "sweep overlap {sweep_overlap:.2}x under the {MIN_SWEEP_OVERLAP}x floor: \
         the six members are serializing instead of interleaving"
    );

    write_bench_json(
        "fig14_hyperscale",
        &format!(
            "\"gpus\":{gpus},\"jobs\":{JOBS},\"iters\":{ITERS},\"sim_shards\":{},\
             \"fast\":{{\"polls\":{},\"virtual_s\":{:.6},\"peak_heap_mib\":{:.2},\"wall_clock_s\":{:.4}}},\
             \"oracle\":{{\"polls\":{},\"virtual_s\":{:.6},\"peak_heap_mib\":{:.2},\"wall_clock_s\":{:.4}}},\
             \"shard_worker_sweep\":{{\"shard_members\":[1,{}],\"worker_members\":[1,2,8],\
             \"digest_equal\":true,\
             \"wall_clock_member_sum_s\":{member_sum_s:.4},\"wall_clock_sweep_s\":{sweep_wall_s:.4},\
             \"wall_clock_overlap\":{sweep_overlap:.4},\"wall_clock_overlap_floor\":{MIN_SWEEP_OVERLAP}}},\
             \"wall_clock_polls_per_s\":{polls_per_sec:.1},\
             \"wall_clock_speedup_vs_oracle\":{:.4}",
            fast.sim_shards,
            fast.polls,
            fast.virtual_s,
            fast.peak_heap_mib,
            fast.wall_s,
            oracle.polls,
            oracle.virtual_s,
            oracle.peak_heap_mib,
            oracle.wall_s,
            fast.sim_shards,
            oracle.wall_s / fast.wall_s,
        ),
    );
}
