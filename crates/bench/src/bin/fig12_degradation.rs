//! Figure 12 (extension) — degradation-aware routing under brownouts.
//!
//! Two interleaved four-host tenants AllReduce over the testbed while
//! spine 0 browns out to a swept fraction of line rate at t=4ms. Each
//! brownout level runs under both degradation policies:
//!
//! * **weighted** — the default [`DegradationPolicy`]: flows rebalance
//!   toward the route with the best estimated max-min share, so a
//!   half-rate spine keeps carrying a proportional load;
//! * **route-around** — the binary policy: any degraded route is
//!   abandoned, piling both tenants onto the survivor where cross-tenant
//!   sharing costs extra.
//!
//! All reported times are **virtual** (deterministic, seed-stable): the
//! record is diffable across runs and machines by design.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig12_degradation`

use mccs_bench::report::{json_rows, print_csv, print_table, write_bench_json};
use mccs_collectives::op::all_reduce_sum;
use mccs_core::{Cluster, ClusterConfig, DegradationPolicy};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_netsim::FaultPlan;
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId, SwitchRole};
use std::sync::Arc;

const SIZE: Bytes = Bytes::mib(8);
const ITERS: usize = 4;
const SEED: u64 = 61;
const BROWNOUT_AT: Nanos = Nanos::from_millis(4);
/// Remaining capacity fractions swept (per mille): healthy down to 25%.
const LEVELS: [u32; 4] = [1000, 750, 500, 250];

fn rank_program(name: &str, comm: CommunicatorId, rank: usize, world: &[GpuId]) -> ScriptedProgram {
    ScriptedProgram::new(
        format!("{name}/r{rank}"),
        vec![
            ScriptStep::Alloc {
                size: SIZE,
                slot: 0,
            },
            ScriptStep::Alloc {
                size: SIZE,
                slot: 1,
            },
            ScriptStep::CommInit {
                comm,
                world: world.to_vec(),
                rank,
            },
            ScriptStep::Collective {
                comm,
                op: all_reduce_sum(),
                size: SIZE,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 3,
                times: ITERS - 1,
            },
        ],
    )
}

/// Every link touching the first spine switch (the brownout domain).
fn spine0_links(cluster: &Cluster) -> Vec<LinkId> {
    let topo = &cluster.world.topo;
    let spine = topo
        .switches()
        .iter()
        .find(|s| s.role == SwitchRole::Spine)
        .expect("testbed has spines")
        .id;
    topo.links()
        .iter()
        .filter(|l| {
            matches!(l.from, Endpoint::Switch(s) if s == spine)
                || matches!(l.to, Endpoint::Switch(s) if s == spine)
        })
        .map(|l| l.id)
        .collect()
}

/// One cell of the sweep: makespan and failure-machinery counters for the
/// two-tenant brownout at `milli` remaining capacity under `policy`.
fn run_cell(policy: DegradationPolicy, milli: u32) -> (Nanos, u64, u64) {
    let mut cfg = ClusterConfig::with_seed(SEED);
    cfg.service.degradation = policy;
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    let tenants = [
        (
            "brown-a",
            CommunicatorId(1),
            [GpuId(0), GpuId(2), GpuId(4), GpuId(6)],
        ),
        (
            "brown-b",
            CommunicatorId(2),
            [GpuId(1), GpuId(3), GpuId(5), GpuId(7)],
        ),
    ];
    for (name, comm, gpus) in tenants {
        let ranks = gpus
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let prog = rank_program(name, comm, rank, &gpus);
                (gpu, Box::new(prog) as Box<dyn AppProgram>)
            })
            .collect();
        cluster.add_app(name, ranks);
    }
    let domain = spine0_links(&cluster);
    cluster.install_fault_plan(FaultPlan::new().degrade_group(BROWNOUT_AT, &domain, milli));
    cluster.run_until_quiescent(Nanos::from_secs(60));
    let mut makespan = Nanos::ZERO;
    for app in [AppId(0), AppId(1)] {
        let tl = cluster.mgmt().timeline(app);
        assert_eq!(tl.len(), ITERS, "brownout sweep lost collectives");
        makespan = makespan.max(tl.last().expect("ran").completed_at.expect("complete"));
    }
    let counters = cluster.mgmt().health_counters();
    assert_eq!(counters.collectives_failed, 0);
    (makespan, counters.flow_rebalances, counters.recoveries)
}

fn main() {
    println!("== Figure 12 (extension): brownout sweep, weighted vs route-around ==\n");
    let policies = [
        ("weighted", DegradationPolicy::default()),
        ("route_around", DegradationPolicy::route_around()),
    ];
    let headers = [
        "capacity_milli",
        "policy",
        "makespan_ms",
        "rebalances",
        "recoveries",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for milli in LEVELS {
        for (name, policy) in policies {
            let (makespan, rebalances, recoveries) = run_cell(policy, milli);
            rows.push(vec![
                milli.to_string(),
                name.to_string(),
                format!("{:.3}", makespan.as_secs_f64() * 1e3),
                rebalances.to_string(),
                recoveries.to_string(),
            ]);
        }
    }
    print_table(&headers, &rows);
    print_csv("fig12_degradation", &headers, &rows);
    write_bench_json(
        "fig12_degradation",
        &format!("\"rows\":{}", json_rows(&headers, &rows)),
    );
}
