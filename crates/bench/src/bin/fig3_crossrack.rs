//! Figure 3 — cross-rack ratio of random rings vs job size.
//!
//! (a) a cluster with 2 hosts per rack (the "empirical" production shape:
//!     each rack connects two 8-GPU hosts) — worst case 2x;
//! (b) 4 hosts per rack (simulated) — worst case 4x.
//!
//! Jobs are perfectly packed onto hosts (as the paper assumes) and the
//! ring order over hosts is uniformly random; we report the expected
//! cross-rack ratio and the worst case per job size.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig3_crossrack`

use mccs_bench::report::{json_rows, print_csv, print_table, write_bench_json};
use mccs_collectives::crossrack;
use mccs_sim::{Bandwidth, Rng};
use mccs_topology::presets::{spine_leaf, SpineLeafConfig};
use mccs_topology::HostId;

fn panel(hosts_per_rack: usize, label: &str) -> Vec<Vec<String>> {
    const GPUS_PER_HOST: usize = 8;
    let racks = 256; // large enough that the biggest job fits packed
    let topo = spine_leaf(&SpineLeafConfig {
        spines: 2,
        leaves: racks,
        hosts_per_leaf: hosts_per_rack,
        gpus_per_host: GPUS_PER_HOST,
        nic_bandwidth: Bandwidth::gbps(200.0),
        leaf_spine_bandwidth: Bandwidth::gbps(200.0),
    });
    let mut rng = Rng::seed_from(3);
    let mut rows = Vec::new();
    for exp in 3..=10 {
        let job_gpus = 1usize << exp; // 8 .. 1024
        let job_hosts = job_gpus / GPUS_PER_HOST;
        if job_hosts == 0 {
            continue;
        }
        // Perfectly packed: the first `job_hosts` hosts (rack-contiguous).
        let hosts: Vec<HostId> = (0..job_hosts as u32).map(HostId).collect();
        let expected = crossrack::expected_random_ratio(&topo, &hosts, 500, &mut rng);
        let worst = crossrack::worst_case_ratio(&topo, &hosts);
        rows.push(vec![
            label.to_owned(),
            job_gpus.to_string(),
            format!("{expected:.2}"),
            format!("{worst:.2}"),
        ]);
    }
    rows
}

fn main() {
    println!("== Figure 3: cross-rack ratio of random vs optimal rings ==\n");
    let mut rows = panel(2, "2 hosts/rack");
    rows.extend(panel(4, "4 hosts/rack"));
    print_table(
        &[
            "panel",
            "job size (GPUs)",
            "E[ratio] random ring",
            "worst case",
        ],
        &rows,
    );
    println!();
    print_csv(
        "fig3",
        &["panel", "job_gpus", "expected_ratio", "worst_case"],
        &rows,
    );
    write_bench_json(
        "fig3_crossrack",
        &format!(
            "\"rows\":{}",
            json_rows(
                &["panel", "job_gpus", "expected_ratio", "worst_case"],
                &rows
            )
        ),
    );
    println!(
        "\npaper shape: the expected ratio grows with job size toward the\n\
         worst case — 2x with 2 hosts/rack (Fig. 3a), 4x with 4 hosts/rack\n\
         (Fig. 3b)."
    );
}
