//! Figure 10 — normalized training throughput under dynamic job arrivals
//! and policy changes.
//!
//! Tenant A (VGG) occupies the cluster from the start; B (GPT) arrives at
//! t1, C (GPT) at t2 — all sharing under FFA. At t3 the administrator
//! prioritizes A with PFA; at t4 B is further prioritized over C with
//! traffic scheduling. Each tenant's windowed throughput (collective bytes
//! completed per second) is normalized to its own first stable phase after
//! arrival, the paper's FFA reference.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig10_dynamic`

use mccs_bench::report::{json_rows, print_csv, write_bench_json};
use mccs_bench::setups::multi_app_setup;
use mccs_control::{
    apply_traffic_schedule, optimize_cluster, ChannelPolicy, FlowAssignment, PolicySpec,
};
use mccs_core::{Cluster, ClusterConfig};
use mccs_ipc::CommunicatorId;
use mccs_sim::{Nanos, TimeSeries};
use mccs_topology::{presets, RouteId};
use mccs_workloads::generator::spawn_traffic_app;
use mccs_workloads::{gpt27b_tensor_parallel, vgg19_data_parallel};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

const T1: Nanos = Nanos::from_millis(2_000); // B arrives
const T2: Nanos = Nanos::from_millis(4_000); // C arrives
const T3: Nanos = Nanos::from_millis(6_000); // PFA: prioritize A
const T4: Nanos = Nanos::from_millis(8_000); // TS: prioritize B over C
const END: Nanos = Nanos::from_millis(11_000);
const WINDOW: Nanos = Nanos::from_millis(500);

fn main() {
    println!("== Figure 10: dynamic arrivals and policy changes ==\n");
    let topo = Arc::new(presets::testbed());
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::with_seed(10));
    let placements = multi_app_setup(3);

    let a = spawn_traffic_app(
        &mut cluster,
        "A",
        CommunicatorId(1),
        &placements[0].gpus,
        &vgg19_data_parallel(40),
        Nanos::from_millis(20),
    );
    let b = spawn_traffic_app(
        &mut cluster,
        "B",
        CommunicatorId(2),
        &placements[1].gpus,
        &gpt27b_tensor_parallel(16),
        T1,
    );
    let c = spawn_traffic_app(
        &mut cluster,
        "C",
        CommunicatorId(3),
        &placements[2].gpus,
        &gpt27b_tensor_parallel(12),
        T2,
    );
    let apps = [a, b, c];

    // FFA from the start (recomputed at each arrival, as the controller
    // does "when a job joins or exits").
    cluster.run_until(Nanos::from_millis(5));
    optimize_cluster(&mut cluster, &PolicySpec::mccs());
    cluster.run_until(T1);
    optimize_cluster(&mut cluster, &PolicySpec::mccs());
    cluster.run_until(T2);
    optimize_cluster(&mut cluster, &PolicySpec::mccs());
    cluster.run_until(T3);
    println!("t={:.1}s  PFA: route 0 dedicated to A", T3.as_secs_f64());
    optimize_cluster(
        &mut cluster,
        &PolicySpec {
            optimal_rings: true,
            channels: ChannelPolicy::MatchNics,
            assignment: FlowAssignment::Pfa {
                priorities: BTreeMap::from([(a, 0u32)]),
                reserved: BTreeSet::from([RouteId(0)]),
            },
        },
    );
    cluster.run_until(T4);
    println!(
        "t={:.1}s  TS: C gated into B's idle windows",
        T4.as_secs_f64()
    );
    let ok = apply_traffic_schedule(&mut cluster, b, &[c]);
    assert!(ok, "B's trace must expose a period for TS");
    cluster.run_until(END);

    // Windowed collective-byte throughput per app, each normalized to its
    // own first stable phase after arrival.
    let arrivals = [Nanos::from_millis(20), T1, T2];
    let mut all_rows: Vec<Vec<String>> = Vec::new();
    for (i, &app) in apps.iter().enumerate() {
        let mut series = TimeSeries::new(format!("app{i}"));
        for rec in cluster.mgmt().timeline(app) {
            let done = rec.completed_at.expect("complete");
            if done <= END {
                series.push(done, rec.size.as_f64());
            }
        }
        // windowed bytes/s
        let windows = series.windowed_means(WINDOW);
        let counts: Vec<(Nanos, f64)> = windows
            .iter()
            .map(|&(t, mean_bytes)| {
                // mean bytes per completion x completions per window:
                // reconstruct sum via mean * count in window
                let count = series
                    .samples()
                    .iter()
                    .filter(|&&(st, _)| st >= t && st < t + WINDOW)
                    .count();
                (t, mean_bytes * count as f64 / WINDOW.as_secs_f64())
            })
            .collect();
        // reference: mean of the first two stable windows after arrival
        let ref_start = arrivals[i] + WINDOW;
        let reference: Vec<f64> = counts
            .iter()
            .filter(|&&(t, _)| t >= ref_start && t < ref_start + WINDOW * 2)
            .map(|&(_, v)| v)
            .collect();
        let norm = if reference.is_empty() {
            1.0
        } else {
            reference.iter().sum::<f64>() / reference.len() as f64
        };
        for (t, v) in counts {
            all_rows.push(vec![
                ["A", "B", "C"][i].to_owned(),
                format!("{:.2}", t.as_secs_f64()),
                format!("{:.3}", v / norm),
            ]);
        }
    }
    // Collectives the service cleanly failed back to each tenant: zero on
    // this fault-free run, but reported explicitly so an injected fault
    // shows up in the figure's data instead of silently thinning it.
    let failed: Vec<usize> = apps
        .iter()
        .map(|&app| {
            cluster
                .mgmt()
                .tenant_outcomes(app)
                .iter()
                .filter(|r| r.failed)
                .count()
        })
        .collect();
    print_csv("fig10", &["app", "elapsed_s", "normalized_tput"], &all_rows);
    write_bench_json(
        "fig10_dynamic",
        &format!(
            "\"timeline_s\":{{\"b_arrives\":{:.3},\"c_arrives\":{:.3},\
             \"pfa\":{:.3},\"ts\":{:.3}}},\
             \"failed_collectives\":{{\"a\":{},\"b\":{},\"c\":{}}},\"rows\":{}",
            T1.as_secs_f64(),
            T2.as_secs_f64(),
            T3.as_secs_f64(),
            T4.as_secs_f64(),
            failed[0],
            failed[1],
            failed[2],
            json_rows(&["app", "elapsed_s", "normalized_tput"], &all_rows)
        ),
    );
    println!(
        "failed collectives: A={} B={} C={}",
        failed[0], failed[1], failed[2]
    );
    println!(
        "\ntimeline: B arrives {:.0}s, C arrives {:.0}s, PFA {:.0}s, TS {:.0}s",
        T1.as_secs_f64(),
        T2.as_secs_f64(),
        T3.as_secs_f64(),
        T4.as_secs_f64()
    );
    println!(
        "paper shape: A's throughput steps down as B then C arrive, steps\n\
         back up at PFA; B steps up at TS while C pays; fluctuations after\n\
         TS reflect the window schedule."
    );
}
