//! Figure 9 — job completion time of VGG (A) and two GPT fine-tunes
//! (B, C) under ECMP / FFA / PFA / PFA+TS, setup 3, normalized to FFA.
//!
//! A has the highest priority (PFA dedicates it an inter-rack route);
//! B is prioritized over C by traffic scheduling.
//!
//! Run: `cargo run --release -p mccs-bench --bin fig9_qos_jct [trials]`

use mccs_bench::qos::{run_qos, QosStrategy};
use mccs_bench::report::{json_rows, print_csv, print_table, write_bench_json};
use mccs_sim::stats::Summary;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("== Figure 9: JCT under scheduling/QoS strategies ({trials} trials) ==");
    println!("workloads: A=VGG-19 DP (4 GPUs), B,C=GPT-2.7B TP (2 GPUs each); setup 3\n");

    // Collect JCTs (and failed-collective counts) per strategy per app.
    let names = ["VGG (A)", "GPT (B)", "GPT (C)"];
    let mut jcts: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; QosStrategy::ALL.len()];
    let mut failed: Vec<usize> = vec![0; QosStrategy::ALL.len()];
    for (si, &strategy) in QosStrategy::ALL.iter().enumerate() {
        for trial in 0..trials {
            let results = run_qos(strategy, trial);
            for (ai, run) in results.iter().enumerate() {
                jcts[si][ai].push(run.jct.as_secs_f64());
                failed[si] += run.failed;
            }
        }
    }
    // Normalize to the FFA mean per app (the paper's y-axis).
    let ffa_index = 1;
    let ffa_means: Vec<f64> = (0..3)
        .map(|ai| Summary::new(jcts[ffa_index][ai].iter().copied()).mean())
        .collect();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (si, &strategy) in QosStrategy::ALL.iter().enumerate() {
        let mut cells = vec![strategy.label().to_owned()];
        let mut csv_row = vec![strategy.label().to_owned()];
        for ai in 0..3 {
            let s = Summary::new(jcts[si][ai].iter().map(|j| j / ffa_means[ai]));
            let (lo, hi) = s.p95_interval();
            cells.push(format!("{:.3} [{:.3},{:.3}]", s.mean(), lo, hi));
            csv_row.push(format!("{:.4}", s.mean()));
        }
        cells.push(failed[si].to_string());
        csv_row.push(failed[si].to_string());
        rows.push(cells);
        csv.push(csv_row);
    }
    let headers = ["strategy", names[0], names[1], names[2], "failed"];
    print_table(&headers, &rows);
    println!();
    print_csv(
        "fig9",
        &["strategy", "vgg_a", "gpt_b", "gpt_c", "failed"],
        &csv,
    );
    write_bench_json(
        "fig9_qos_jct",
        &format!(
            "\"trials\":{trials},\"normalized_to\":\"ffa\",\"rows\":{}",
            json_rows(&["strategy", "vgg_a", "gpt_b", "gpt_c", "failed"], &csv)
        ),
    );
    println!(
        "\npaper shape: ECMP slows every workload vs FFA (18/22/14%); PFA\n\
         speeds A up further (13% vs FFA / 34% vs ECMP) at B/C's expense;\n\
         PFA+TS then speeds B up (~16%) relative to PFA, paid by C."
    );
}
