//! Seeded chaos exploration gate: run a battery of `Explorer` episodes
//! over the two-tenant testbed, judge every episode with the
//! completed-xor-failed and quiescence oracles, then deterministically
//! replay every recorded decision trace and fail if any replay digest
//! diverges from its recording.
//!
//! One line per episode:
//! `episode=<i> seed=<016x> decisions=<n> actions=<n> verdict=<v> digest=<016x>`
//! — the whole output is seed-pinned and virtual-time deterministic, so
//! it doubles as a cross-process determinism probe for the driver path.
//!
//! Exit status is non-zero on any oracle violation, hang, or replay
//! divergence. Also writes `results/BENCH_chaos_explore.json` for the
//! bench-regression gate.
//!
//! Run: `cargo run --release -p mccs-bench --bin chaos_explore`

use mccs_bench::report::{json_rows, print_table, write_bench_json};
use mccs_collectives::op::all_reduce_sum;
use mccs_core::{
    episode_seed, ChaosAction, Cluster, ClusterConfig, Decision, Explorer, ExplorerConfig, Verdict,
};
use mccs_ipc::CommunicatorId;
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId, SwitchRole};
use std::process::ExitCode;
use std::sync::Arc;

fn rank_program(
    name: &str,
    comm: CommunicatorId,
    rank: usize,
    world: &[GpuId],
    size: Bytes,
    iters: usize,
) -> ScriptedProgram {
    ScriptedProgram::new(
        format!("{name}/r{rank}"),
        vec![
            ScriptStep::Alloc { size, slot: 0 },
            ScriptStep::Alloc { size, slot: 1 },
            ScriptStep::CommInit {
                comm,
                world: world.to_vec(),
                rank,
            },
            ScriptStep::Collective {
                comm,
                op: all_reduce_sum(),
                size,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 3,
                times: iters - 1,
            },
        ],
    )
}

/// The fault-digest battery's workload: two four-rank AllReduce tenants
/// interleaved across every testbed host.
fn two_tenant_cluster(seed: u64, size: Bytes, iters: usize) -> Cluster {
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(seed));
    let tenants = [
        (
            "ta",
            CommunicatorId(1),
            [GpuId(0), GpuId(2), GpuId(4), GpuId(6)],
        ),
        (
            "tb",
            CommunicatorId(2),
            [GpuId(1), GpuId(3), GpuId(5), GpuId(7)],
        ),
    ];
    for (name, comm, gpus) in tenants {
        let ranks = gpus
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let prog = rank_program(name, comm, rank, &gpus, size, iters);
                (gpu, Box::new(prog) as Box<dyn AppProgram>)
            })
            .collect();
        cluster.add_app(name, ranks);
    }
    cluster
}

/// Every link touching the first spine switch (the pinned outage domain).
fn spine0_links(cluster: &Cluster) -> Vec<LinkId> {
    let topo = &cluster.world.topo;
    let spine = topo
        .switches()
        .iter()
        .find(|s| s.role == SwitchRole::Spine)
        .expect("testbed has spines")
        .id;
    topo.links()
        .iter()
        .filter(|l| {
            matches!(l.from, Endpoint::Switch(s) if s == spine)
                || matches!(l.to, Endpoint::Switch(s) if s == spine)
        })
        .map(|l| l.id)
        .collect()
}

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Ok { completed, failed } => format!("ok({completed}c/{failed}f)"),
        Verdict::Hang { .. } => "hang".to_owned(),
        Verdict::Violation { .. } => "violation".to_owned(),
    }
}

fn main() -> ExitCode {
    let cfg = ExplorerConfig {
        seed: 0x4d43_4353, // "MCCS"
        episodes: 8,
        inject_prob: 0.02,
        max_actions: 3,
        horizon: Nanos::from_millis(40),
        deadline: Nanos::from_secs(60),
    };
    let mut explorer = Explorer::new(cfg, || two_tenant_cluster(33, Bytes::mib(8), 3));
    let reports = explorer.run();

    let mut failed = false;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, r) in reports.iter().enumerate() {
        println!(
            "episode={i} seed={:016x} decisions={} actions={} verdict={} digest={:016x}",
            r.seed,
            r.decisions_seen,
            r.trace.len(),
            verdict_label(&r.verdict),
            r.digest,
        );
        if !r.verdict.is_ok() {
            failed = true;
            println!("  FAIL oracle: {:?}", r.verdict);
            println!("  trace: {:?}", r.trace);
        }
        let replay = explorer.replay(r.seed, &r.trace);
        if replay.digest != r.digest || replay.verdict != r.verdict {
            failed = true;
            println!(
                "  FAIL replay diverged: digest {:016x} -> {:016x}, verdict {} -> {}",
                r.digest,
                replay.digest,
                verdict_label(&r.verdict),
                verdict_label(&replay.verdict),
            );
            println!("  trace: {:?}", r.trace);
        }
        let (completed, failures) = match r.verdict {
            Verdict::Ok { completed, failed } => (completed, failed),
            _ => (0, 0),
        };
        rows.push(vec![
            format!("{i}"),
            format!("{:016x}", r.seed),
            format!("{}", r.decisions_seen),
            format!("{}", r.trace.len()),
            verdict_label(&r.verdict),
            format!("{completed}"),
            format!("{failures}"),
            format!("{:016x}", r.digest),
            format!("{}", (replay.digest == r.digest) as u8),
        ]);
    }
    assert_eq!(
        reports.len(),
        cfg.episodes as usize,
        "explorer must run every configured episode"
    );
    assert!(
        reports.iter().any(|r| !r.trace.is_empty()),
        "exploration battery never injected a single fault — retune inject_prob"
    );
    // Derived seeds must all be distinct (episode streams unrelated).
    for i in 0..cfg.episodes {
        for j in (i + 1)..cfg.episodes {
            assert_ne!(episode_seed(cfg.seed, i), episode_seed(cfg.seed, j));
        }
    }

    // Pinned controller-crash episodes: hand-authored decision traces
    // replayed through the explorer (the RNG is never consulted), so the
    // crash/restart interleavings are exercised on every run regardless
    // of what the seeded search happens to sample. Each trace is run
    // twice and the doubled run must agree digest-for-digest.
    let probe = two_tenant_cluster(33, Bytes::mib(8), 3);
    let spine = spine0_links(&probe);
    drop(probe);
    let pin = |index, action| Decision {
        index,
        at: Nanos::ZERO, // recorded for humans; replay is index-driven
        action,
    };
    // The whole spine-0 domain dies at the same decision point the
    // controller crashes: the corrective drain can only come from the
    // restarted incarnation, and the late repair forces its fail-back.
    let mut crash_during_outage: Vec<Decision> = spine
        .iter()
        .map(|&l| pin(30, ChaosAction::LinkDown(l)))
        .collect();
    crash_during_outage.push(pin(30, ChaosAction::CrashController));
    crash_during_outage.push(pin(90, ChaosAction::RestartController));
    crash_during_outage.extend(spine.iter().map(|&l| pin(150, ChaosAction::LinkUp(l))));
    let pinned: Vec<(&str, u64, Vec<Decision>)> = vec![
        (
            "pin:restart_noop",
            0x7e57_0001,
            vec![
                pin(40, ChaosAction::CrashController),
                pin(120, ChaosAction::RestartController),
            ],
        ),
        ("pin:crash_during_outage", 0x7e57_0002, crash_during_outage),
    ];
    for (name, seed, trace) in &pinned {
        let rep = explorer.replay(*seed, trace);
        let rerun = explorer.replay(*seed, trace);
        println!(
            "episode={name} seed={seed:016x} decisions={} actions={} verdict={} digest={:016x}",
            rep.decisions_seen,
            rep.trace.len(),
            verdict_label(&rep.verdict),
            rep.digest,
        );
        if rep.trace.len() != trace.len() {
            failed = true;
            println!(
                "  FAIL pinned trace truncated: {} of {} decisions applied \
                 (episode quiesced before the last index)",
                rep.trace.len(),
                trace.len()
            );
        }
        if !rep.verdict.is_ok() {
            failed = true;
            println!("  FAIL oracle: {:?}", rep.verdict);
        }
        if rerun.digest != rep.digest || rerun.verdict != rep.verdict {
            failed = true;
            println!(
                "  FAIL doubled run diverged: digest {:016x} -> {:016x}, verdict {} -> {}",
                rep.digest,
                rerun.digest,
                verdict_label(&rep.verdict),
                verdict_label(&rerun.verdict),
            );
        }
        let (completed, failures) = match rep.verdict {
            Verdict::Ok { completed, failed } => (completed, failed),
            _ => (0, 0),
        };
        rows.push(vec![
            (*name).to_owned(),
            format!("{seed:016x}"),
            format!("{}", rep.decisions_seen),
            format!("{}", rep.trace.len()),
            verdict_label(&rep.verdict),
            format!("{completed}"),
            format!("{failures}"),
            format!("{:016x}", rep.digest),
            format!("{}", (rerun.digest == rep.digest) as u8),
        ]);
    }

    let headers = [
        "episode",
        "seed",
        "decisions",
        "actions",
        "verdict",
        "completed",
        "failed",
        "digest",
        "replay_ok",
    ];
    println!();
    print_table(&headers, &rows);
    write_bench_json(
        "chaos_explore",
        &format!(
            "\"episodes\":{},\"total_actions\":{},\"rows\":{}",
            reports.len(),
            reports.iter().map(|r| r.trace.len()).sum::<usize>(),
            json_rows(&headers, &rows)
        ),
    );

    if failed {
        eprintln!("\nchaos exploration gate failed");
        ExitCode::FAILURE
    } else {
        println!("\nall episodes passed both oracles and replayed byte-identically");
        ExitCode::SUCCESS
    }
}
