//! Figure 16 (extension) — controller-outage recovery latency.
//!
//! A four-rank AllReduce tenant loses the whole spine-0 outage domain at
//! the same instant the controller process crashes: the corrective drain
//! can only be issued by the *restarted* controller, after it rebuilds
//! working state from its last checkpoint and reconciles against the
//! health channel. The sweep crosses outage duration with checkpoint
//! cadence and reports the post-restart recovery latency (restart to
//! every rank back in `Normal` under the detour epoch) — the robustness
//! claim is that both axes leave it flat: snapshot resync makes long
//! outages no worse than short ones, and conservative reconciliation
//! makes lazy checkpoints no worse than eager ones.
//!
//! All reported times are **virtual** (deterministic, seed-stable).
//!
//! Run: `cargo run --release -p mccs-bench --bin fig16_control_outage`

use mccs_bench::report::{json_rows, print_csv, print_table, write_bench_json};
use mccs_collectives::op::all_reduce_sum;
use mccs_core::proxy::ReconfigState;
use mccs_core::{ChaosDriver, Cluster, ClusterConfig};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId, SwitchRole};
use std::sync::Arc;

const SIZE: Bytes = Bytes::mib(8);
const ITERS: usize = 6;
const SEED: u64 = 95;
const COMM: CommunicatorId = CommunicatorId(1);
const GPUS: [GpuId; 4] = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
const FAIL_AT: Nanos = Nanos::from_millis(10);
/// Controller outage durations swept (milliseconds down).
const OUTAGES_MS: [u64; 3] = [5, 20, 80];
/// Checkpoint cadences swept (milliseconds between snapshots).
const CKPTS_MS: [u64; 3] = [1, 5, 50];

fn rank_program(rank: usize) -> ScriptedProgram {
    ScriptedProgram::new(
        format!("outage/r{rank}"),
        vec![
            ScriptStep::Alloc {
                size: SIZE,
                slot: 0,
            },
            ScriptStep::Alloc {
                size: SIZE,
                slot: 1,
            },
            ScriptStep::CommInit {
                comm: COMM,
                world: GPUS.to_vec(),
                rank,
            },
            ScriptStep::Collective {
                comm: COMM,
                op: all_reduce_sum(),
                size: SIZE,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 3,
                times: ITERS - 1,
            },
        ],
    )
}

/// Every link touching the first spine switch (the outage domain).
fn spine0_links(cluster: &Cluster) -> Vec<LinkId> {
    let topo = &cluster.world.topo;
    let spine = topo
        .switches()
        .iter()
        .find(|s| s.role == SwitchRole::Spine)
        .expect("testbed has spines")
        .id;
    topo.links()
        .iter()
        .filter(|l| {
            matches!(l.from, Endpoint::Switch(s) if s == spine)
                || matches!(l.to, Endpoint::Switch(s) if s == spine)
        })
        .map(|l| l.id)
        .collect()
}

/// Whether every rank of the tenant is back in `Normal` at or past the
/// first detour epoch — the end of the post-restart corrective drain.
fn drained(cluster: &Cluster) -> bool {
    let ranks: Vec<_> = cluster
        .world
        .comms
        .values()
        .filter(|r| r.comm == COMM)
        .collect();
    ranks.len() == GPUS.len()
        && ranks
            .iter()
            .all(|r| matches!(r.reconfig, ReconfigState::Normal) && r.config.epoch >= 1)
}

/// One cell: crash the controller and down the spine-0 domain at 10ms,
/// restart after `outage`, and measure how long the restarted controller
/// takes to steer the tenant back onto working routes.
fn run_cell(outage: Nanos, ckpt: Nanos) -> Vec<String> {
    let mut cfg = ClusterConfig::with_seed(SEED);
    cfg.service.controller_checkpoint_interval = ckpt;
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    let ranks = GPUS
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = rank_program(rank);
            (gpu, Box::new(prog) as Box<dyn AppProgram>)
        })
        .collect();
    cluster.add_app("outage", ranks);
    let domain = spine0_links(&cluster);

    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(FAIL_AT);
    // The crash lands first: the engine never sees the link-down burst
    // live — only its restarted incarnation does, via the channel.
    driver.crash_controller();
    for &l in &domain {
        driver.link_down(l);
    }
    let restart_at = FAIL_AT + outage;
    driver.run_until(restart_at);
    driver.restart_controller();
    let recovered_at = loop {
        if drained(driver.cluster()) {
            break driver.now();
        }
        driver
            .step()
            .expect("post-restart recovery must converge before quiescence");
    };
    driver.repair_all();
    driver
        .run_to_quiescence(Nanos::from_secs(60))
        .expect("outage cell must quiesce");

    let tl = cluster.mgmt().timeline(AppId(0));
    assert_eq!(tl.len(), ITERS, "outage sweep lost collectives");
    let makespan = tl.last().expect("ran").completed_at.expect("complete");
    let counters = cluster.mgmt().health_counters();
    assert_eq!(counters.collectives_failed, 0);
    let stats = cluster.mgmt().controller_stats();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.reconciliations, 1);
    assert_eq!(stats.downtime_ns, outage.0);

    let recover = Nanos(recovered_at.0 - restart_at.0);
    vec![
        format!("{:.0}", outage.as_millis_f64()),
        format!("{:.0}", ckpt.as_millis_f64()),
        format!("{:.3}", recover.as_secs_f64() * 1e3),
        format!("{:.3}", makespan.as_secs_f64() * 1e3),
        stats.checkpoints.to_string(),
        counters.recoveries.to_string(),
        counters.failbacks.to_string(),
    ]
}

fn main() {
    println!("== Figure 16 (extension): recovery latency vs controller outage ==\n");
    let headers = [
        "outage_ms",
        "ckpt_ms",
        "recover_ms",
        "makespan_ms",
        "checkpoints",
        "recoveries",
        "failbacks",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for outage_ms in OUTAGES_MS {
        for ckpt_ms in CKPTS_MS {
            rows.push(run_cell(
                Nanos::from_millis(outage_ms),
                Nanos::from_millis(ckpt_ms),
            ));
        }
    }
    print_table(&headers, &rows);
    print_csv("fig16_control_outage", &headers, &rows);
    write_bench_json(
        "fig16_control_outage",
        &format!("\"rows\":{}", json_rows(&headers, &rows)),
    );
}
