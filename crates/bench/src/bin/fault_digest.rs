//! Determinism gate: run a fixed battery of fault scenarios and print one
//! `scenario=<name> digest=<016x>` line per run. CI executes this binary
//! twice in separate processes (cold and warm) and diffs the output
//! byte-for-byte: any hash-map iteration order, address-dependent hashing,
//! or wall-clock leakage in the fault path shows up as a digest mismatch.
//!
//! The digest is [`Cluster::observable_digest`]: the full per-rank trace
//! (issue/launch/complete/fail instants and epochs), the failure-event
//! log, and the health counters.
//!
//! Run: `cargo run --release -p mccs-bench --bin fault_digest`

use mccs_collectives::op::all_reduce_sum;
use mccs_core::{Cluster, ClusterConfig, DegradationPolicy};
use mccs_ipc::CommunicatorId;
use mccs_netsim::{FaultEvent, FaultPlan};
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId, SwitchRole};
use std::sync::Arc;

fn rank_program(
    name: &str,
    comm: CommunicatorId,
    rank: usize,
    world: &[GpuId],
    size: Bytes,
    iters: usize,
) -> ScriptedProgram {
    ScriptedProgram::new(
        format!("{name}/r{rank}"),
        vec![
            ScriptStep::Alloc { size, slot: 0 },
            ScriptStep::Alloc { size, slot: 1 },
            ScriptStep::CommInit {
                comm,
                world: world.to_vec(),
                rank,
            },
            ScriptStep::Collective {
                comm,
                op: all_reduce_sum(),
                size,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 3,
                times: iters - 1,
            },
        ],
    )
}

fn two_tenant_cluster(seed: u64, size: Bytes, iters: usize, policy: DegradationPolicy) -> Cluster {
    let mut cfg = ClusterConfig::with_seed(seed);
    cfg.service.degradation = policy;
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    let tenants = [
        (
            "ta",
            CommunicatorId(1),
            [GpuId(0), GpuId(2), GpuId(4), GpuId(6)],
        ),
        (
            "tb",
            CommunicatorId(2),
            [GpuId(1), GpuId(3), GpuId(5), GpuId(7)],
        ),
    ];
    for (name, comm, gpus) in tenants {
        let ranks = gpus
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let prog = rank_program(name, comm, rank, &gpus, size, iters);
                (gpu, Box::new(prog) as Box<dyn AppProgram>)
            })
            .collect();
        cluster.add_app(name, ranks);
    }
    cluster
}

/// Every link touching the first spine switch.
fn spine0_links(cluster: &Cluster) -> Vec<LinkId> {
    let topo = &cluster.world.topo;
    let spine = topo
        .switches()
        .iter()
        .find(|s| s.role == SwitchRole::Spine)
        .expect("testbed has spines")
        .id;
    topo.links()
        .iter()
        .filter(|l| {
            matches!(l.from, Endpoint::Switch(s) if s == spine)
                || matches!(l.to, Endpoint::Switch(s) if s == spine)
        })
        .map(|l| l.id)
        .collect()
}

fn run(name: &str, mut cluster: Cluster, plan: FaultPlan) {
    cluster.install_fault_plan(plan);
    cluster.run_until_quiescent(Nanos::from_secs(60));
    println!(
        "scenario={name} digest={:016x}",
        cluster.observable_digest()
    );
}

fn main() {
    // 1. Hard spine failure: coalesced recovery plus transport retries.
    let cluster = two_tenant_cluster(21, Bytes::mib(16), 4, DegradationPolicy::default());
    let spine = spine0_links(&cluster);
    run(
        "spine_down",
        cluster,
        FaultPlan::new().at(Nanos::from_millis(6), FaultEvent::LinkDown(spine[0])),
    );

    // 2. Correlated 50% brownout under the weighted policy (share-driven
    // rebalancing exercises the degradation-aware route selection).
    let cluster = two_tenant_cluster(61, Bytes::mib(8), 4, DegradationPolicy::default());
    let domain = spine0_links(&cluster);
    run(
        "brownout_weighted",
        cluster,
        FaultPlan::new().degrade_group(Nanos::from_millis(4), &domain, 500),
    );

    // 3. Same brownout under binary route-around (recovery-driven drain).
    let cluster = two_tenant_cluster(61, Bytes::mib(8), 4, DegradationPolicy::route_around());
    let domain = spine0_links(&cluster);
    run(
        "brownout_route_around",
        cluster,
        FaultPlan::new().degrade_group(Nanos::from_millis(4), &domain, 500),
    );

    // 4. Host crash and restart mid-run plus control-message loss:
    // the gossip resend and barrier-answer paths.
    let cluster = two_tenant_cluster(51, Bytes::mib(16), 4, DegradationPolicy::default());
    let host = cluster.world.topo.host_of_gpu(GpuId(6));
    run(
        "host_blip_lossy_control",
        cluster,
        FaultPlan::new()
            .at(Nanos::from_millis(5), FaultEvent::CrashHost(host))
            .at(Nanos::from_millis(9), FaultEvent::RestartHost(host))
            .drop_control(19)
            .drop_control(37),
    );

    // 5. Controller crash mid-drain with checkpointed restart: the
    // spine-0 outage forces a corrective drain at 10ms, the controller
    // dies 200us later with the Figure 4 barrier still propagating,
    // restarts at 40ms from its checkpoint (reconciling the drain whose
    // completion the dead incarnation never observed), and the 120ms
    // repair fails the pins back to the healthy baseline.
    let cluster = two_tenant_cluster(95, Bytes::mib(16), 4, DegradationPolicy::default());
    let domain = spine0_links(&cluster);
    let mut plan = FaultPlan::new();
    for &l in &domain {
        plan = plan.at(Nanos::from_millis(10), FaultEvent::LinkDown(l));
    }
    for &l in &domain {
        plan = plan.at(Nanos::from_millis(120), FaultEvent::LinkUp(l));
    }
    run(
        "controller_crash_mid_drain",
        cluster,
        plan.at(Nanos::from_micros(10_200), FaultEvent::CrashController)
            .at(Nanos::from_millis(40), FaultEvent::RestartController),
    );
}
