//! Bench-regression gate: compare freshly regenerated `BENCH_*.json`
//! records against the committed baselines and fail beyond tolerance.
//!
//! The figure regenerators are deterministic (pinned seeds, virtual
//! time), so every *simulated* metric must reproduce within a small
//! tolerance; only `wall_clock*` fields are machine-dependent and
//! skipped. The JSON is hand-rolled throughout the workspace (no serde),
//! so this reader is too: it flattens each record into
//! `dotted.path[i] -> leaf` pairs and diffs the two maps.
//!
//! Run: `bench_check <baseline_dir> <candidate_dir> [rel_tolerance]`
//! (default tolerance 0.05). Exits non-zero listing every violation.

use std::fmt;
use std::path::Path;
use std::process::ExitCode;

/// A JSON scalar at some path.
#[derive(Clone, Debug, PartialEq)]
enum Leaf {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl fmt::Display for Leaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Leaf::Num(v) => write!(f, "{v}"),
            Leaf::Str(s) => write!(f, "{s:?}"),
            Leaf::Bool(b) => write!(f, "{b}"),
            Leaf::Null => write!(f, "null"),
        }
    }
}

/// Minimal recursive-descent JSON reader producing `(path, leaf)` pairs
/// in document order. Rejects malformed input with a positioned error.
struct Reader<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn flatten(text: &'a str) -> Result<Vec<(String, Leaf)>, String> {
        let mut r = Reader {
            s: text.as_bytes(),
            i: 0,
        };
        let mut out = Vec::new();
        r.value("", &mut out)?;
        r.ws();
        if r.i != r.s.len() {
            return Err(format!("trailing bytes at offset {}", r.i));
        }
        Ok(out)
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char, self.i, self.s[self.i] as char
            ))
        }
    }

    fn value(&mut self, path: &str, out: &mut Vec<(String, Leaf)>) -> Result<(), String> {
        match self.peek()? {
            b'{' => self.object(path, out),
            b'[' => self.array(path, out),
            b'"' => {
                let s = self.string()?;
                out.push((path.to_owned(), Leaf::Str(s)));
                Ok(())
            }
            b't' | b'f' => {
                let v = self.keyword()?;
                out.push((path.to_owned(), Leaf::Bool(v == "true")));
                Ok(())
            }
            b'n' => {
                self.keyword()?;
                out.push((path.to_owned(), Leaf::Null));
                Ok(())
            }
            _ => {
                let v = self.number()?;
                out.push((path.to_owned(), Leaf::Num(v)));
                Ok(())
            }
        }
    }

    fn object(&mut self, path: &str, out: &mut Vec<(String, Leaf)>) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let sub = if path.is_empty() {
                key
            } else {
                format!("{path}.{key}")
            };
            self.value(&sub, out)?;
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(());
                }
                c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
            }
        }
    }

    fn array(&mut self, path: &str, out: &mut Vec<(String, Leaf)>) -> Result<(), String> {
        self.expect(b'[')?;
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(());
        }
        let mut idx = 0usize;
        loop {
            self.value(&format!("{path}[{idx}]"), out)?;
            idx += 1;
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(());
                }
                c => return Err(format!("expected ',' or ']', found {:?}", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.s.get(self.i) else {
                return Err("unterminated string".to_owned());
            };
            self.i += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            // The records only emit ASCII; keep the raw
                            // escape rather than decoding surrogates.
                            s.push_str("\\u");
                        }
                        other => s.push(other as char),
                    }
                }
                other => s.push(other as char),
            }
        }
    }

    fn keyword(&mut self) -> Result<String, String> {
        self.ws();
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_alphabetic() {
            self.i += 1;
        }
        let word = std::str::from_utf8(&self.s[start..self.i]).expect("ascii");
        match word {
            "true" | "false" | "null" => Ok(word.to_owned()),
            _ => Err(format!("unknown keyword {word:?} at offset {start}")),
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("malformed number at offset {start}"))
    }
}

/// Machine-dependent fields excluded from the diff.
fn skipped(path: &str) -> bool {
    path.contains("wall_clock")
}

/// Diff two flattened records; returns human-readable violations.
fn diff(base: &[(String, Leaf)], cand: &[(String, Leaf)], tol: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let lookup: std::collections::HashMap<&str, &Leaf> =
        cand.iter().map(|(p, l)| (p.as_str(), l)).collect();
    for (path, b) in base {
        if skipped(path) {
            continue;
        }
        let Some(c) = lookup.get(path.as_str()) else {
            violations.push(format!("{path}: present in baseline, missing in candidate"));
            continue;
        };
        match (b, c) {
            (Leaf::Num(bv), Leaf::Num(cv)) => {
                let denom = bv.abs().max(1e-12);
                let rel = (cv - bv).abs() / denom;
                if rel > tol {
                    violations.push(format!(
                        "{path}: {bv} -> {cv} ({:+.1}% > {:.1}% tolerance)",
                        (cv - bv) / denom * 100.0,
                        tol * 100.0
                    ));
                }
            }
            (b, c) if b != *c => {
                violations.push(format!("{path}: {b} -> {c}"));
            }
            _ => {}
        }
    }
    // New fields in the candidate are fine (benches grow); removed ones
    // are caught above.
    violations
}

fn check_file(base_path: &Path, cand_path: &Path, tol: f64) -> Result<Vec<String>, String> {
    let base = std::fs::read_to_string(base_path)
        .map_err(|e| format!("read {}: {e}", base_path.display()))?;
    let cand = std::fs::read_to_string(cand_path)
        .map_err(|e| format!("read {}: {e}", cand_path.display()))?;
    let base = Reader::flatten(&base).map_err(|e| format!("{}: {e}", base_path.display()))?;
    let cand = Reader::flatten(&cand).map_err(|e| format!("{}: {e}", cand_path.display()))?;
    Ok(diff(&base, &cand, tol))
}

/// Sorted `BENCH_*.json` file names in a directory.
fn bench_records(dir: &str) -> Result<Vec<String>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot list {dir}: {e}"))?;
    let mut names: Vec<String> = rd
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    Ok(names)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(base_dir), Some(cand_dir)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: bench_check <baseline_dir> <candidate_dir> [rel_tolerance]");
        return ExitCode::from(2);
    };
    let tol: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.05);

    let (baselines, candidates) = match (bench_records(base_dir), bench_records(cand_dir)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if baselines.is_empty() {
        eprintln!("no BENCH_*.json baselines in {base_dir}");
        return ExitCode::from(2);
    }

    // The record *sets* must match exactly before any contents are
    // compared: a regenerator that stopped producing a record, or a new
    // bench without a committed baseline, is a failure in itself — and
    // one a per-file read error would report far less legibly.
    let mut failed = false;
    for name in baselines.iter().filter(|n| !candidates.contains(n)) {
        failed = true;
        println!("FAIL {name}: in baseline {base_dir} but not regenerated in {cand_dir}");
    }
    for name in candidates.iter().filter(|n| !baselines.contains(n)) {
        failed = true;
        println!(
            "FAIL {name}: regenerated in {cand_dir} but no baseline in {base_dir} (commit one)"
        );
    }

    for name in baselines.iter().filter(|n| candidates.contains(n)) {
        let base_path = Path::new(base_dir).join(name);
        let cand_path = Path::new(cand_dir).join(name);
        match check_file(&base_path, &cand_path, tol) {
            Ok(v) if v.is_empty() => {
                println!("OK   {name}");
            }
            Ok(v) => {
                failed = true;
                println!("FAIL {name}");
                for line in v {
                    println!("     {line}");
                }
            }
            Err(e) => {
                failed = true;
                println!("FAIL {name}: {e}");
            }
        }
    }
    if failed {
        eprintln!("\nbench regression check failed (tolerance {tol})");
        ExitCode::FAILURE
    } else {
        println!("\nall bench records within {tol} relative tolerance");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_walks_nested_records() {
        let leaves = Reader::flatten(
            r#"{"bench":"x","m":{"a":1.5,"b":"7%"},"rows":[{"v":1},{"v":2}],"ok":true,"none":null}"#,
        )
        .expect("valid");
        assert_eq!(
            leaves,
            vec![
                ("bench".into(), Leaf::Str("x".into())),
                ("m.a".into(), Leaf::Num(1.5)),
                ("m.b".into(), Leaf::Str("7%".into())),
                ("rows[0].v".into(), Leaf::Num(1.0)),
                ("rows[1].v".into(), Leaf::Num(2.0)),
                ("ok".into(), Leaf::Bool(true)),
                ("none".into(), Leaf::Null),
            ]
        );
    }

    #[test]
    fn flatten_rejects_garbage() {
        assert!(Reader::flatten("{\"a\":}").is_err());
        assert!(Reader::flatten("{\"a\":1}x").is_err());
        assert!(Reader::flatten("\"unterminated").is_err());
    }

    #[test]
    fn diff_tolerates_small_drift_and_flags_large() {
        let base = Reader::flatten(r#"{"m":10.0,"s":"x"}"#).expect("valid");
        let ok = Reader::flatten(r#"{"m":10.4,"s":"x"}"#).expect("valid");
        let bad = Reader::flatten(r#"{"m":11.0,"s":"x"}"#).expect("valid");
        assert!(diff(&base, &ok, 0.05).is_empty());
        let v = diff(&base, &bad, 0.05);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("m:"), "{}", v[0]);
    }

    #[test]
    fn diff_flags_missing_and_changed_strings() {
        let base = Reader::flatten(r#"{"a":1,"s":"old"}"#).expect("valid");
        let cand = Reader::flatten(r#"{"s":"new","extra":5}"#).expect("valid");
        let v = diff(&base, &cand, 0.05);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("missing in candidate")));
        assert!(v.iter().any(|m| m.contains("\"old\" -> \"new\"")));
    }

    #[test]
    fn bench_records_filters_and_sorts() {
        let dir = std::env::temp_dir().join(format!("bench_check_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        for name in ["BENCH_b.json", "BENCH_a.json", "fig1.txt", "BENCH_x.txt"] {
            std::fs::write(dir.join(name), "{}").expect("write");
        }
        let names = bench_records(dir.to_str().expect("utf8")).expect("list");
        assert_eq!(names, vec!["BENCH_a.json", "BENCH_b.json"]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn sim_workers_metadata_is_compared() {
        // Worker count is record metadata, not a wall-clock field: a
        // baseline regenerated under a different `MCCS_SIM_WORKERS` must
        // be flagged, not silently accepted.
        let base = Reader::flatten(r#"{"bench":"x","sim_workers":1,"jct":2.0}"#).expect("valid");
        let cand = Reader::flatten(r#"{"bench":"x","sim_workers":8,"jct":2.0}"#).expect("valid");
        let v = diff(&base, &cand, 0.05);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("sim_workers:"), "{}", v[0]);
    }

    #[test]
    fn wall_clock_fields_are_skipped() {
        let base = Reader::flatten(r#"{"wall_clock_s":1.0,"jct":2.0}"#).expect("valid");
        let cand = Reader::flatten(r#"{"wall_clock_s":9.0,"jct":2.0}"#).expect("valid");
        assert!(diff(&base, &cand, 0.05).is_empty());
    }
}
