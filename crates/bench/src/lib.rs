//! # mccs-bench — the experiment harness
//!
//! One binary per paper figure (run `cargo run --release -p mccs-bench
//! --bin figN`), built on shared infrastructure:
//!
//! * [`variants`] — the four evaluated systems (NCCL, NCCL(OR),
//!   MCCS(-FA), MCCS) behind one `run` interface.
//! * [`setups`] — the testbed placements: tenant "VM order" rank
//!   assignments and the four multi-application setups of Figure 5b.
//! * [`scale`] — the §6.5 at-scale driver: dynamic job arrivals over the
//!   768-GPU cluster with per-variant ring/route policies.
//! * [`report`] — terminal table/CSV rendering.
//!
//! See `EXPERIMENTS.md` at the repository root for the per-figure index
//! and recorded paper-vs-measured results.

pub mod qos;
pub mod report;
pub mod scale;
pub mod setups;
pub mod variants;

pub use report::{fmt_gbps, print_table};
pub use setups::{multi_app_setup, vm_order_4gpu, vm_order_8gpu, AppPlacement};
pub use variants::{run_multi_app, run_single_app, AppSpec, SystemVariant};
