//! Testbed placements.
//!
//! The testbed (`mccs_topology::presets::testbed`) has hosts H0, H1 in
//! rack 0 and H2, H3 in rack 1; host `h` owns GPUs `2h` and `2h+1`.
//!
//! Tenants receive GPUs in **VM order** — the cloud's instance
//! enumeration, which interleaves racks (H0, H2, H1, H3): exactly the
//! situation of §2.2 where "randomly assigned ranks ... lead the ring to
//! cross racks back and forth". A rank-order (NCCL) ring over VM order
//! crosses racks on every hop; the provider's locality-aware ring crosses
//! twice.

use mccs_topology::GpuId;

/// VM-order GPU list for a 4-GPU tenant (one GPU per host):
/// H0.g0, H2.g0, H1.g0, H3.g0.
pub fn vm_order_4gpu() -> Vec<GpuId> {
    vec![GpuId(0), GpuId(4), GpuId(2), GpuId(6)]
}

/// VM-order GPU list for an 8-GPU tenant (both GPUs of every host):
/// H0, H2, H1, H3.
pub fn vm_order_8gpu() -> Vec<GpuId> {
    vec![
        GpuId(0),
        GpuId(1),
        GpuId(4),
        GpuId(5),
        GpuId(2),
        GpuId(3),
        GpuId(6),
        GpuId(7),
    ]
}

/// One tenant's name and GPU assignment (in its VM order).
#[derive(Clone, Debug)]
pub struct AppPlacement {
    /// Display name ("A", "B", "C").
    pub name: &'static str,
    /// GPUs in the tenant's rank order.
    pub gpus: Vec<GpuId>,
}

/// The four multi-application setups of Figure 5b (reconstructed; see
/// DESIGN.md §4). Host/GPU map: H0{0,1} H1{2,3} | H2{4,5} H3{6,7}.
///
/// * **S1** — two 4-GPU tenants, each on two cross-rack hosts with both
///   GPUs (2 NICs/host each).
/// * **S2** — three tenants: A and B with 1 GPU on each of two cross-rack
///   hosts; C with 1 GPU on every host.
/// * **S3** — A with both GPUs of H0 and H2 (2 NICs/host); B and C with
///   1 GPU on each of H1 and H3 (1 NIC/host) — the asymmetric setup whose
///   fair share is 2:1:1, reused for the QoS study (§6.4).
/// * **S4** — two tenants, each with one GPU on every host.
pub fn multi_app_setup(setup: usize) -> Vec<AppPlacement> {
    let g = GpuId;
    match setup {
        1 => vec![
            AppPlacement {
                name: "A",
                gpus: vec![g(0), g(1), g(4), g(5)], // H0 + H2
            },
            AppPlacement {
                name: "B",
                gpus: vec![g(2), g(3), g(6), g(7)], // H1 + H3
            },
        ],
        2 => vec![
            AppPlacement {
                name: "A",
                gpus: vec![g(0), g(4)], // H0 + H2
            },
            AppPlacement {
                name: "B",
                gpus: vec![g(2), g(6)], // H1 + H3
            },
            AppPlacement {
                name: "C",
                gpus: vec![g(1), g(5), g(3), g(7)], // all hosts, VM order
            },
        ],
        3 => vec![
            AppPlacement {
                name: "A",
                gpus: vec![g(0), g(1), g(4), g(5)], // H0 + H2, 2 NICs/host
            },
            AppPlacement {
                name: "B",
                gpus: vec![g(2), g(6)], // H1 + H3, 1 NIC/host
            },
            AppPlacement {
                name: "C",
                gpus: vec![g(3), g(7)], // H1 + H3, 1 NIC/host
            },
        ],
        4 => vec![
            AppPlacement {
                name: "A",
                gpus: vec![g(0), g(4), g(2), g(6)], // every host, VM order
            },
            AppPlacement {
                name: "B",
                gpus: vec![g(1), g(5), g(3), g(7)], // every host, VM order
            },
        ],
        other => panic!("no setup {other}; Figure 5b defines 1-4"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_topology::presets;
    use std::collections::BTreeSet;

    #[test]
    fn setups_partition_the_testbed() {
        for s in 1..=4 {
            let apps = multi_app_setup(s);
            let all: Vec<GpuId> = apps.iter().flat_map(|a| a.gpus.clone()).collect();
            let set: BTreeSet<GpuId> = all.iter().copied().collect();
            assert_eq!(set.len(), 8, "setup {s} must use all 8 GPUs once");
        }
    }

    #[test]
    fn vm_orders_interleave_racks() {
        let topo = presets::testbed();
        let hosts: Vec<_> = vm_order_4gpu()
            .iter()
            .map(|&gp| topo.rack_of(topo.host_of_gpu(gp)))
            .collect();
        // alternating racks
        assert!(hosts.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn setup3_has_asymmetric_nic_counts() {
        let topo = presets::testbed();
        let apps = multi_app_setup(3);
        let nics_per_host = |gpus: &[GpuId]| -> usize {
            use std::collections::BTreeMap;
            let mut m: BTreeMap<_, usize> = BTreeMap::new();
            for &gp in gpus {
                *m.entry(topo.host_of_gpu(gp)).or_default() += 1;
            }
            *m.values().max().expect("nonempty")
        };
        assert_eq!(nics_per_host(&apps[0].gpus), 2);
        assert_eq!(nics_per_host(&apps[1].gpus), 1);
        assert_eq!(nics_per_host(&apps[2].gpus), 1);
    }

    #[test]
    #[should_panic(expected = "no setup")]
    fn unknown_setup_rejected() {
        multi_app_setup(9);
    }
}
