//! The four evaluated systems behind one interface.
//!
//! * **NCCL** — tenant-linked library, rank-order ring, ECMP, no service
//!   overhead ([`mccs_baseline`]).
//! * **NCCL(OR)** — the same library hand-fed the provider's optimal ring
//!   (isolates MCCS's system overhead from its algorithmic gain, §6.1).
//! * **MCCS(-FA)** — the full MCCS service with locality-aware rings but
//!   ECMP routing (§6.2's ablation).
//! * **MCCS** — locality-aware rings + fair flow assignment.

use crate::setups::AppPlacement;
use mccs_baseline::{BaselineConfig, BaselineJob, Phase, RingChoice};
use mccs_collectives::CollectiveOp;
use mccs_control::{optimize_cluster, ChannelPolicy, PolicySpec};
use mccs_core::{Cluster, ClusterConfig};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::{presets, GpuId};
use std::sync::Arc;

/// The system under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemVariant {
    /// Tenant library, rank-order ring, ECMP.
    Nccl,
    /// Tenant library with the optimal ring supplied out of band.
    NcclOr,
    /// MCCS service, optimal rings, ECMP (no flow assignment).
    MccsNoFa,
    /// Full MCCS: optimal rings + FFA.
    Mccs,
}

impl SystemVariant {
    /// All four, in the paper's plotting order.
    pub const ALL: [SystemVariant; 4] = [
        SystemVariant::Nccl,
        SystemVariant::NcclOr,
        SystemVariant::MccsNoFa,
        SystemVariant::Mccs,
    ];

    /// Display label as used in the figures.
    pub fn label(&self) -> &'static str {
        match self {
            SystemVariant::Nccl => "NCCL",
            SystemVariant::NcclOr => "NCCL(OR)",
            SystemVariant::MccsNoFa => "MCCS(-FA)",
            SystemVariant::Mccs => "MCCS",
        }
    }

    fn is_service(&self) -> bool {
        matches!(self, SystemVariant::MccsNoFa | SystemVariant::Mccs)
    }

    fn policy(&self) -> PolicySpec {
        match self {
            SystemVariant::MccsNoFa => PolicySpec::mccs_no_fa(),
            SystemVariant::Mccs => PolicySpec::mccs(),
            _ => unreachable!("library variants have no controller policy"),
        }
    }
}

/// One tenant's workload for a run.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Placement (name + VM-order GPUs).
    pub placement: AppPlacement,
    /// Collective operation.
    pub op: CollectiveOp,
    /// Buffer size.
    pub size: Bytes,
    /// Back-to-back collectives to run.
    pub iters: usize,
}

/// When tenant collectives begin (leaves room for registration and the
/// controller's initial reconfiguration).
const WORKLOAD_START: Nanos = Nanos::from_millis(10);

fn scripted_rank(
    name: &str,
    comm: CommunicatorId,
    world: &[GpuId],
    rank: usize,
    op: CollectiveOp,
    size: Bytes,
    iters: usize,
) -> ScriptedProgram {
    ScriptedProgram::new(
        format!("{name}/r{rank}"),
        vec![
            ScriptStep::Alloc { size, slot: 0 },
            ScriptStep::Alloc { size, slot: 1 },
            ScriptStep::CommInit {
                comm,
                world: world.to_vec(),
                rank,
            },
            ScriptStep::SleepUntil(WORKLOAD_START),
            ScriptStep::Collective {
                comm,
                op,
                size,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 4,
                times: iters - 1,
            },
        ],
    )
}

/// Run one or more tenants on the testbed under `variant`; returns, per
/// app, the per-collective latencies. `trial` seeds placement-independent
/// randomness (IPC jitter) and — via communicator ids / hash salts — the
/// ECMP draws, like re-established connections across real trials.
pub fn run_apps(variant: SystemVariant, apps: &[AppSpec], trial: u64) -> Vec<Vec<Nanos>> {
    let topo = Arc::new(presets::testbed());
    let service = variant.is_service();
    let cfg = if service {
        ClusterConfig::with_seed(0x6E5 + trial)
    } else {
        ClusterConfig::library_mode(0x6E5 + trial)
    };
    let mut cluster = Cluster::new(Arc::clone(&topo), cfg);
    let mut ids: Vec<AppId> = Vec::new();

    if service {
        for (i, spec) in apps.iter().enumerate() {
            let comm = CommunicatorId(1 + 97 * trial + i as u64);
            let ranks = spec
                .placement
                .gpus
                .iter()
                .enumerate()
                .map(|(rank, &gpu)| {
                    let prog = scripted_rank(
                        spec.placement.name,
                        comm,
                        &spec.placement.gpus,
                        rank,
                        spec.op,
                        spec.size,
                        spec.iters,
                    );
                    (gpu, Box::new(prog) as Box<dyn AppProgram>)
                })
                .collect();
            ids.push(cluster.add_app(spec.placement.name, ranks));
        }
        // Registration completes well within a millisecond; then the
        // controller applies its policy before the workload starts.
        cluster.run_until(Nanos::from_millis(2));
        optimize_cluster(&mut cluster, &variant.policy());
    } else {
        for (i, spec) in apps.iter().enumerate() {
            let ring = match variant {
                SystemVariant::Nccl => RingChoice::RankOrder,
                SystemVariant::NcclOr => RingChoice::Explicit(mccs_control::optimal_rings(
                    &topo,
                    &spec.placement.gpus,
                    ChannelPolicy::MatchNics,
                )),
                _ => unreachable!(),
            };
            // NCCL opens at least two connections per peer; match the
            // tenant's NIC count like the service default does.
            let channels =
                mccs_control::optimal_rings(&topo, &spec.placement.gpus, ChannelPolicy::MatchNics)
                    .len()
                    .max(1);
            let app = BaselineJob::spawn(
                &mut cluster,
                spec.placement.name,
                BaselineConfig {
                    channels,
                    ring,
                    hash_salt: 1 + 97 * trial + i as u64,
                    ..Default::default()
                },
                spec.placement.gpus.clone(),
                vec![Phase::Collective {
                    op: spec.op,
                    size: spec.size,
                }],
                spec.iters,
                WORKLOAD_START,
            );
            ids.push(app);
        }
    }

    cluster.run_until_quiescent(Nanos::from_secs(600));
    ids.iter()
        .map(|&app| {
            if service {
                // Measure at the tenant (nccl-tests style): includes the
                // shim <-> service round trip the paper's §6.2 overhead
                // numbers are about.
                cluster
                    .mgmt()
                    .tenant_latencies(app)
                    .iter()
                    .map(|&(_, issued, done)| done - issued)
                    .collect()
            } else {
                let tl = cluster.mgmt().timeline(app);
                tl.iter()
                    .map(|r| r.latency().expect("completed collective"))
                    .collect()
            }
        })
        .collect()
}

/// Single-application convenience wrapper.
pub fn run_single_app(
    variant: SystemVariant,
    op: CollectiveOp,
    size: Bytes,
    gpus_vm_order: Vec<GpuId>,
    iters: usize,
    trial: u64,
) -> Vec<Nanos> {
    let apps = [AppSpec {
        placement: AppPlacement {
            name: "A",
            gpus: gpus_vm_order,
        },
        op,
        size,
        iters,
    }];
    run_apps(variant, &apps, trial).remove(0)
}

/// Multi-application convenience wrapper.
pub fn run_multi_app(
    variant: SystemVariant,
    placements: &[AppPlacement],
    op: CollectiveOp,
    size: Bytes,
    iters: usize,
    trial: u64,
) -> Vec<Vec<Nanos>> {
    let apps: Vec<AppSpec> = placements
        .iter()
        .map(|p| AppSpec {
            placement: p.clone(),
            op,
            size,
            iters,
        })
        .collect();
    run_apps(variant, &apps, trial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setups::{multi_app_setup, vm_order_4gpu, vm_order_8gpu};
    use mccs_collectives::op::all_reduce_sum;
    use mccs_sim::stats::Summary;

    fn mean_algbw(size: Bytes, lats: &[Nanos]) -> f64 {
        let s = Summary::new(
            lats.iter()
                .map(|&l| mccs_collectives::algo_bandwidth(size, l).as_gbytes_per_sec()),
        );
        s.mean()
    }

    #[test]
    fn figure6_shape_4gpu_large_message() {
        // At 512 MB the paper's ordering is NCCL < {NCCL(OR), MCCS(-FA),
        // MCCS}, with MCCS within a hair of line rate.
        let size = Bytes::mib(512);
        let mut bw = Vec::new();
        for v in SystemVariant::ALL {
            let lats = run_single_app(v, all_reduce_sum(), size, vm_order_4gpu(), 2, 0);
            bw.push(mean_algbw(size, &lats));
        }
        let [nccl, nccl_or, mccs_nofa, mccs] = bw[..] else {
            unreachable!()
        };
        assert!(
            nccl < nccl_or,
            "NCCL {nccl} should trail NCCL(OR) {nccl_or}"
        );
        assert!(mccs > 3.9, "MCCS near the 4.17 GB/s line rate, got {mccs}");
        assert!(
            (mccs_nofa - nccl_or).abs() / nccl_or < 0.1,
            "OR ablations should be close at 512MB: {mccs_nofa} vs {nccl_or}"
        );
    }

    #[test]
    fn figure6_shape_small_message_penalty() {
        // Below 8 MB the service's IPC latency makes MCCS slower than the
        // library (§6.2: 63% lower at 512 KB AllGather).
        let size = Bytes::kib(512);
        let lib = run_single_app(
            SystemVariant::NcclOr,
            all_reduce_sum(),
            size,
            vm_order_4gpu(),
            3,
            0,
        );
        let svc = run_single_app(
            SystemVariant::MccsNoFa,
            all_reduce_sum(),
            size,
            vm_order_4gpu(),
            3,
            0,
        );
        let lib_bw = mean_algbw(size, &lib);
        let svc_bw = mean_algbw(size, &svc);
        assert!(
            svc_bw < lib_bw * 0.8,
            "small messages must show the IPC penalty: svc {svc_bw} vs lib {lib_bw}"
        );
    }

    #[test]
    fn figure8_shape_setup3_fairness() {
        // Setup 3 under full MCCS: bus bandwidth ratio A:B:C near 2:1:1.
        // Iteration counts are balanced so all three tenants stay active
        // for roughly the same span (A's collectives are shorter), and the
        // first/last samples are trimmed to remove ramp/tail effects.
        let size = Bytes::mib(128);
        let placements = multi_app_setup(3);
        let specs: Vec<AppSpec> = placements
            .iter()
            .enumerate()
            .map(|(i, p)| AppSpec {
                placement: p.clone(),
                op: all_reduce_sum(),
                size,
                iters: if i == 0 { 8 } else { 6 },
            })
            .collect();
        let lats = run_apps(SystemVariant::Mccs, &specs, 0);
        let bus: Vec<f64> = specs
            .iter()
            .zip(&lats)
            .map(|(spec, l)| {
                let n = spec.placement.gpus.len();
                let trimmed = &l[1..l.len() - 1];
                let s = Summary::new(trimmed.iter().map(|&lat| {
                    mccs_collectives::bus_bandwidth(all_reduce_sum(), n, size, lat)
                        .as_gbytes_per_sec()
                }));
                s.mean()
            })
            .collect();
        let ratio_ab = bus[0] / bus[1];
        let ratio_bc = bus[1] / bus[2];
        assert!(
            (1.6..2.6).contains(&ratio_ab),
            "A:B should be ~2:1, got {ratio_ab:.2} ({bus:?})"
        );
        assert!(
            (0.75..1.35).contains(&ratio_bc),
            "B:C should be ~1:1, got {ratio_bc:.2} ({bus:?})"
        );
    }

    #[test]
    fn eight_gpu_mccs_beats_nccl_big() {
        // The headline: up to ~2.4x on the 8-GPU setup at 512MB.
        let size = Bytes::mib(512);
        let nccl = run_single_app(
            SystemVariant::Nccl,
            all_reduce_sum(),
            size,
            vm_order_8gpu(),
            2,
            0,
        );
        let mccs = run_single_app(
            SystemVariant::Mccs,
            all_reduce_sum(),
            size,
            vm_order_8gpu(),
            2,
            0,
        );
        let speedup = mean_algbw(size, &mccs) / mean_algbw(size, &nccl);
        assert!(
            speedup > 1.5,
            "MCCS should clearly beat NCCL on 8 GPUs, got {speedup:.2}x"
        );
    }
}
