//! The §6.5 at-scale study driver (Figure 11).
//!
//! Like the paper, this experiment runs on the flow-level simulator
//! directly (library-mode jobs, no per-host service engines): 50
//! ResNet-50-class jobs of 16 or 32 GPUs arrive as a Poisson process over
//! the 768-GPU spine-leaf cluster and are placed randomly or compactly.
//! Per variant the jobs use random rings, locality-optimal rings (OR), or
//! OR plus fair flow assignment (OR+FFA).
//!
//! Placements are computed once per seed in a capacity-only planning pass
//! (with nominal job durations) so every variant sees identical
//! placements and arrival order — the comparison the paper's per-job
//! speedup CDF requires.

use mccs_baseline::{BaselineConfig, BaselineJob, Phase, RingChoice};
use mccs_collectives::op::all_reduce_sum;
use mccs_control::flow_policy::{IncrementalFfa, JobFlows};
use mccs_control::{optimal_rings, ChannelPolicy};
use mccs_core::config::RouteMap;
use mccs_core::{Cluster, ClusterConfig};
use mccs_sim::{Bytes, Nanos, Rng};
use mccs_topology::{GpuId, Topology};
use mccs_workloads::{jobs::poisson_jobs, Placement, PlacementMap};
use std::sync::Arc;

/// The three compared strategies of Figure 11.
///
/// The baseline is what an uncoordinated tenant library does: a random
/// (host-contiguous) ring order and NCCL's default two channels — so it
/// engages only two NICs per host. OR is the provider strategy: locality
/// rings with "the number of rings equal to the number of network
/// multi-path choices" (capped at the NIC count), engaging every NIC;
/// OR+FFA additionally pins each ring's flows to distinct paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleVariant {
    /// Random host-order ring, two channels, ECMP.
    RandomRing,
    /// Locality-optimal rings, one per NIC, ECMP.
    OptimalRing,
    /// Locality-optimal rings + fair flow assignment.
    OptimalRingFfa,
}

impl ScaleVariant {
    /// Figure legend label.
    pub fn label(&self) -> &'static str {
        match self {
            ScaleVariant::RandomRing => "Random ring",
            ScaleVariant::OptimalRing => "OR",
            ScaleVariant::OptimalRingFfa => "OR+FFA",
        }
    }
}

/// Experiment knobs (defaults = the paper's §6.5 parameters, except the
/// per-iteration structure documented in DESIGN.md).
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean Poisson inter-arrival gap.
    pub mean_gap: Nanos,
    /// Job sizes, drawn uniformly.
    pub sizes: Vec<usize>,
    /// Training iterations per job.
    pub iterations: usize,
    /// Gradient bytes per iteration (ResNet-50: 100 MB).
    pub collective: Bytes,
    /// Compute per iteration.
    pub compute: Nanos,
    /// Rings per job under OR/OR+FFA (the multi-path fan-out).
    pub channels: usize,
    /// Rings per job under the random baseline (NCCL's default).
    pub baseline_channels: usize,
    /// Placement strategy.
    pub placement: Placement,
    /// Experiment seed.
    pub seed: u64,
}

impl ScaleConfig {
    /// The paper's parameters.
    pub fn paper(placement: Placement, seed: u64) -> Self {
        ScaleConfig {
            jobs: 50,
            mean_gap: Nanos::from_millis(200),
            sizes: vec![16, 32],
            iterations: 10,
            collective: Bytes::new(100_000_000),
            compute: Nanos::from_millis(100),
            channels: 8,
            baseline_channels: 2,
            placement,
            seed,
        }
    }
}

/// A planned job: placement fixed before any variant runs.
#[derive(Clone, Debug)]
pub struct PlannedJob {
    /// Job index.
    pub id: usize,
    /// When the job starts (arrival, or later if it queued for capacity).
    pub start: Nanos,
    /// Its GPUs.
    pub gpus: Vec<GpuId>,
}

/// Capacity-only planning pass: place every job with nominal durations so
/// all variants share placements.
pub fn plan_jobs(topo: &Topology, cfg: &ScaleConfig) -> Vec<PlannedJob> {
    let mut rng = Rng::seed_from(cfg.seed ^ 0x9A7);
    let specs = poisson_jobs(cfg.jobs, cfg.mean_gap, &cfg.sizes, &mut rng);
    // Nominal duration: compute + a conservative comm estimate per iter.
    let nominal_iter = cfg.compute + Nanos::from_millis(150);
    let nominal_duration = nominal_iter * cfg.iterations as u64;

    let mut map = PlacementMap::new(topo);
    let mut planned = Vec::new();
    // (free_time, gpus) of running jobs
    let mut running: Vec<(Nanos, Vec<GpuId>)> = Vec::new();
    let mut queue: std::collections::VecDeque<(usize, Nanos, usize)> = Default::default();

    let try_place = |map: &mut PlacementMap,
                     running: &mut Vec<(Nanos, Vec<GpuId>)>,
                     rng: &mut Rng,
                     id: usize,
                     at: Nanos,
                     size: usize|
     -> Option<PlannedJob> {
        let gpus = map.place(topo, size, cfg.placement, rng)?;
        running.push((at + nominal_duration, gpus.clone()));
        Some(PlannedJob {
            id,
            start: at,
            gpus,
        })
    };

    for spec in specs {
        // Free everything that nominally finished by this arrival, then
        // try queued jobs (FIFO), then the new arrival.
        let mut due: Vec<usize> = (0..running.len())
            .filter(|&i| running[i].0 <= spec.arrival)
            .collect();
        let mut free_times: Vec<Nanos> = due.iter().map(|&i| running[i].0).collect();
        free_times.sort_unstable();
        // remove in descending INDEX order so swap_remove stays in bounds
        due.sort_unstable();
        for i in due.into_iter().rev() {
            let (_, gpus) = running.swap_remove(i);
            map.release(&gpus);
        }
        free_times.push(spec.arrival);
        while let Some(&(qid, _, qsize)) = queue.front() {
            let at = *free_times.last().expect("non-empty");
            match try_place(&mut map, &mut running, &mut rng, qid, at, qsize) {
                Some(p) => {
                    planned.push(p);
                    queue.pop_front();
                }
                None => break,
            }
        }
        if queue.is_empty() {
            match try_place(
                &mut map,
                &mut running,
                &mut rng,
                spec.id,
                spec.arrival,
                spec.size,
            ) {
                Some(p) => planned.push(p),
                None => queue.push_back((spec.id, spec.arrival, spec.size)),
            }
        } else {
            queue.push_back((spec.id, spec.arrival, spec.size));
        }
    }
    // Drain the queue against nominal departures.
    while let Some((qid, _, qsize)) = queue.pop_front() {
        loop {
            // earliest departure
            let Some((idx, &(t, _))) = running.iter().enumerate().min_by_key(|(_, (t, _))| *t)
            else {
                panic!("job of {qsize} GPUs can never fit");
            };
            let (_, gpus) = running.swap_remove(idx);
            map.release(&gpus);
            if let Some(p) = try_place(&mut map, &mut running, &mut rng, qid, t, qsize) {
                planned.push(p);
                break;
            }
        }
    }
    planned.sort_by_key(|p| (p.start, p.id));
    planned
}

/// One job's outcome.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Job index.
    pub id: usize,
    /// GPU count.
    pub gpus: usize,
    /// Mean AllReduce completion time over the job's iterations.
    pub mean_allreduce: Nanos,
}

/// Run one variant over a pre-planned job set.
pub fn run_scale(
    topo: Arc<Topology>,
    planned: &[PlannedJob],
    variant: ScaleVariant,
    cfg: &ScaleConfig,
) -> Vec<JobResult> {
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::library_mode(cfg.seed));
    let mut ffa = IncrementalFfa::new();
    let mut apps = Vec::new();
    for job in planned {
        let (ring, routes, channels) = match variant {
            ScaleVariant::RandomRing => (
                RingChoice::RandomHosts,
                RouteMap::ecmp(),
                cfg.baseline_channels,
            ),
            ScaleVariant::OptimalRing => (
                RingChoice::Explicit(optimal_rings(
                    &topo,
                    &job.gpus,
                    ChannelPolicy::Fixed(cfg.channels),
                )),
                RouteMap::ecmp(),
                cfg.channels,
            ),
            ScaleVariant::OptimalRingFfa => {
                let rings = optimal_rings(&topo, &job.gpus, ChannelPolicy::Fixed(cfg.channels));
                let flows = JobFlows::from_rings(&topo, &rings, 0).flows;
                let routes = ffa.place_job(&topo, &flows);
                (RingChoice::Explicit(rings), routes, cfg.channels)
            }
        };
        let phases = vec![
            Phase::Compute(cfg.compute),
            Phase::Collective {
                op: all_reduce_sum(),
                size: cfg.collective,
            },
        ];
        let app = BaselineJob::spawn(
            &mut cluster,
            &format!("job{}", job.id),
            BaselineConfig {
                channels,
                ring,
                routes,
                hash_salt: cfg.seed ^ job.id as u64,
                ..Default::default()
            },
            job.gpus.clone(),
            phases,
            cfg.iterations,
            job.start,
        );
        apps.push((job.id, job.gpus.len(), app));
    }
    cluster.run_until_quiescent(Nanos::from_secs(3600));
    apps.into_iter()
        .map(|(id, gpus, app)| {
            let tl = cluster.mgmt().timeline(app);
            assert_eq!(tl.len(), cfg.iterations, "job {id} incomplete");
            let mean = tl
                .iter()
                .map(|r| r.latency().expect("complete").as_secs_f64())
                .sum::<f64>()
                / tl.len() as f64;
            JobResult {
                id,
                gpus,
                mean_allreduce: Nanos::from_secs_f64(mean),
            }
        })
        .collect()
}

/// Per-job speedups of `variant_results` relative to `baseline_results`
/// (matched by job id).
pub fn speedups(baseline: &[JobResult], variant: &[JobResult]) -> Vec<f64> {
    let mut base: std::collections::BTreeMap<usize, f64> = baseline
        .iter()
        .map(|r| (r.id, r.mean_allreduce.as_secs_f64()))
        .collect();
    variant
        .iter()
        .map(|r| {
            let b = base.remove(&r.id).expect("matched job ids");
            b / r.mean_allreduce.as_secs_f64()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_sim::Bandwidth;
    use mccs_topology::presets::{self, SpineLeafConfig};

    /// A small 64-GPU cluster so tests run fast: 2 spines, 8 leaves,
    /// 2 hosts/leaf, 4 GPUs/host, oversubscription 2.
    fn small_topo() -> Arc<Topology> {
        Arc::new(presets::spine_leaf(&SpineLeafConfig {
            spines: 2,
            leaves: 8,
            hosts_per_leaf: 2,
            gpus_per_host: 4,
            nic_bandwidth: Bandwidth::gbps(100.0),
            leaf_spine_bandwidth: Bandwidth::gbps(200.0),
        }))
    }

    fn small_cfg(placement: Placement) -> ScaleConfig {
        ScaleConfig {
            jobs: 10,
            mean_gap: Nanos::from_millis(40),
            sizes: vec![8, 16],
            iterations: 3,
            collective: Bytes::new(250_000_000),
            compute: Nanos::from_millis(10),
            channels: 4,
            baseline_channels: 2,
            placement,
            seed: 5,
        }
    }

    #[test]
    fn planning_is_deterministic_and_capacity_safe() {
        let topo = small_topo();
        let cfg = small_cfg(Placement::Random);
        let a = plan_jobs(&topo, &cfg);
        let b = plan_jobs(&topo, &cfg);
        assert_eq!(a.len(), cfg.jobs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.gpus, y.gpus);
        }
    }

    #[test]
    fn or_beats_random_ring_on_average() {
        let topo = small_topo();
        let cfg = small_cfg(Placement::Random);
        let plan = plan_jobs(&topo, &cfg);
        let random = run_scale(Arc::clone(&topo), &plan, ScaleVariant::RandomRing, &cfg);
        let or = run_scale(Arc::clone(&topo), &plan, ScaleVariant::OptimalRing, &cfg);
        let sp = speedups(&random, &or);
        let mean = sp.iter().sum::<f64>() / sp.len() as f64;
        assert!(
            mean > 1.1,
            "OR should speed up random rings on random placement, got {mean:.2}x ({sp:?})"
        );
    }

    #[test]
    fn ffa_does_not_regress_or() {
        let topo = small_topo();
        let cfg = small_cfg(Placement::Random);
        let plan = plan_jobs(&topo, &cfg);
        let or = run_scale(Arc::clone(&topo), &plan, ScaleVariant::OptimalRing, &cfg);
        let ffa = run_scale(Arc::clone(&topo), &plan, ScaleVariant::OptimalRingFfa, &cfg);
        let sp = speedups(&or, &ffa);
        let mean = sp.iter().sum::<f64>() / sp.len() as f64;
        assert!(
            mean > 0.95,
            "FFA should not regress OR on average, got {mean:.2}x"
        );
    }

    #[test]
    fn compact_placement_shrinks_ffa_marginal_gain() {
        // The paper's Figure 11b observation: under compact placement
        // "FFA does not add much to OR because the job almost never spans
        // more than two racks" — the OR->OR+FFA margin shrinks relative to
        // random placement.
        let topo = small_topo();
        let ffa_margin = |placement| {
            let cfg = small_cfg(placement);
            let plan = plan_jobs(&topo, &cfg);
            let or = run_scale(Arc::clone(&topo), &plan, ScaleVariant::OptimalRing, &cfg);
            let orffa = run_scale(Arc::clone(&topo), &plan, ScaleVariant::OptimalRingFfa, &cfg);
            let sp = speedups(&or, &orffa);
            sp.iter().sum::<f64>() / sp.len() as f64
        };
        let random_margin = ffa_margin(Placement::Random);
        let compact_margin = ffa_margin(Placement::Compact);
        assert!(
            compact_margin <= random_margin + 0.05,
            "FFA margin should shrink under compact placement:              compact {compact_margin:.3} vs random {random_margin:.3}"
        );
    }
}
