//! Controller-side health monitoring over the push channel.
//!
//! The service never runs its own recovery engine here (no fault plan is
//! installed, so the plan-gated machinery is inert): every corrective
//! action observed below was driven by the controller's [`HealthMonitor`]
//! reacting to pushed `FailureEvent`s — no polling of `links_down()` or
//! `failure_events()` anywhere in the reaction path.

use mccs_collectives::op::all_reduce_sum;
use mccs_control::HealthMonitor;
use mccs_core::{Cluster, ClusterConfig, FailureEvent};
use mccs_ipc::CommunicatorId;
use mccs_shim::{ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId};
use std::sync::Arc;

const COMM: CommunicatorId = CommunicatorId(1);
const GPUS: [GpuId; 4] = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];

fn cluster_with(seed: u64, size: Bytes, iters: usize) -> Cluster {
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(seed));
    let ranks = GPUS
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = ScriptedProgram::new(
                format!("mon/r{rank}"),
                vec![
                    ScriptStep::Alloc { size, slot: 0 },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm: COMM,
                        world: GPUS.to_vec(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm: COMM,
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                    ScriptStep::Repeat {
                        from_step: 3,
                        times: iters - 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app("mon", ranks);
    cluster
}

/// Every switch-to-switch (spine<->leaf) link of the testbed fabric.
fn fabric_links(cluster: &Cluster) -> Vec<LinkId> {
    cluster
        .world
        .topo
        .links()
        .iter()
        .filter(|l| matches!(l.from, Endpoint::Switch(_)) && matches!(l.to, Endpoint::Switch(_)))
        .map(|l| l.id)
        .collect()
}

/// Degrade one link the way the fault machinery would: effective capacity
/// in the network simulator plus a pushed health event.
fn degrade(cluster: &mut Cluster, link: LinkId, milli: u32) {
    let now = cluster.world.clock;
    cluster
        .world
        .net
        .set_link_degrade(now, link, f64::from(milli) / 1000.0);
    cluster.world.health.link_degraded(link, milli, now);
}

/// The controller receives degrade and host events through the bounded
/// push channel — in order, gapless, exactly once — and reconfigures a
/// communicator only when the degradation policy rejects its routes.
#[test]
fn monitor_reacts_to_pushed_events_without_polling() {
    let mut cluster = cluster_with(71, Bytes::mib(8), 6);
    // Let registration and the first collectives get going.
    cluster.run_until(Nanos::from_millis(3));
    let mut mon = HealthMonitor::subscribe(&mut cluster);
    let fabric = fabric_links(&cluster);
    assert_eq!(fabric.len(), 8, "testbed: 2 spines x 2 leaves, both ways");

    // A mild brownout (60% capacity left) plus a host blip: all three
    // events must arrive, but 0.6 is above the route-around threshold,
    // so no corrective reconfiguration fires.
    degrade(&mut cluster, fabric[0], 600);
    let host = cluster.world.topo.host_of_gpu(GpuId(6));
    let now = cluster.world.clock;
    cluster.world.health.host_down(host, now);
    cluster.world.health.host_up(host, now);
    let rep = mon.poll(&mut cluster);
    assert!(!rep.resynced, "three events cannot overflow the channel");
    assert_eq!(rep.events.len(), 3);
    let first = rep.events[0].0;
    for (i, (seq, _)) in rep.events.iter().enumerate() {
        assert_eq!(*seq, first + i as u64, "delivery must be gapless");
    }
    assert!(matches!(
        rep.events[0].1,
        FailureEvent::LinkDegraded { milli: 600, .. }
    ));
    assert!(matches!(rep.events[1].1, FailureEvent::HostDown { .. }));
    assert!(matches!(rep.events[2].1, FailureEvent::HostUp { .. }));
    assert!(
        rep.reconfigured.is_empty(),
        "0.6 capacity is usable; reconfigured {:?}",
        rep.reconfigured
    );

    // A severe fabric-wide brownout (10% left on every spine<->leaf
    // link) drops the communicator's bottleneck below the route-around
    // threshold: this poll must issue a corrective reconfiguration.
    for &l in &fabric {
        degrade(&mut cluster, l, 100);
    }
    let rep = mon.poll(&mut cluster);
    assert_eq!(rep.events.len(), fabric.len());
    assert_eq!(rep.reconfigured, vec![COMM]);
    assert_eq!(mon.consumed(), 3 + fabric.len() as u64);

    // The controller's reconfiguration must drive the Figure 4 barrier
    // to completion: a new epoch, every collective still completing —
    // with the service-side recovery engine never having acted.
    cluster.run_until_quiescent(Nanos::from_secs(60));
    let info = cluster.mgmt().communicator(COMM).expect("comm persists");
    assert!(info.epoch >= 1, "controller recovery must bump the epoch");
    for r in cluster.world.trace.records() {
        assert!(
            r.completed_at.is_some() && r.failed_at.is_none(),
            "collective lost under controller-driven recovery: {r:?}"
        );
    }
    let counters = cluster.mgmt().health_counters();
    assert_eq!(
        counters.recoveries, 0,
        "the service recovery engine must stay inert; the controller acted"
    );
    assert_eq!(counters.collectives_failed, 0);
    assert_eq!(counters.links_degraded as usize, fabric.len());
    let degraded = cluster.mgmt().links_degraded();
    assert_eq!(degraded.len(), fabric.len());
    assert!(degraded.iter().all(|&(_, f)| (f - 0.1).abs() < 1e-9));
}
