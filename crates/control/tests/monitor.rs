//! Controller-side health monitoring over the push channel.
//!
//! The service never runs its own recovery engine here (no fault plan is
//! installed, so the plan-gated machinery is inert): every corrective
//! action observed below was driven by the controller's [`HealthMonitor`]
//! reacting to pushed `FailureEvent`s — no polling of `links_down()` or
//! `failure_events()` anywhere in the reaction path.

use mccs_collectives::op::all_reduce_sum;
use mccs_control::HealthMonitor;
use mccs_core::{Cluster, ClusterConfig, FailureEvent, ServiceConfig};
use mccs_ipc::CommunicatorId;
use mccs_shim::{ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId};
use std::sync::Arc;

const COMM: CommunicatorId = CommunicatorId(1);
const GPUS: [GpuId; 4] = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];

fn cluster_with_svc(seed: u64, size: Bytes, iters: usize, svc: ServiceConfig) -> Cluster {
    let cfg = ClusterConfig {
        service: svc,
        ..ClusterConfig::with_seed(seed)
    };
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    let ranks = GPUS
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = ScriptedProgram::new(
                format!("mon/r{rank}"),
                vec![
                    ScriptStep::Alloc { size, slot: 0 },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm: COMM,
                        world: GPUS.to_vec(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm: COMM,
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                    ScriptStep::Repeat {
                        from_step: 3,
                        times: iters - 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app("mon", ranks);
    cluster
}

fn cluster_with(seed: u64, size: Bytes, iters: usize) -> Cluster {
    cluster_with_svc(seed, size, iters, ServiceConfig::default())
}

/// Every switch-to-switch (spine<->leaf) link of the testbed fabric.
fn fabric_links(cluster: &Cluster) -> Vec<LinkId> {
    cluster
        .world
        .topo
        .links()
        .iter()
        .filter(|l| matches!(l.from, Endpoint::Switch(_)) && matches!(l.to, Endpoint::Switch(_)))
        .map(|l| l.id)
        .collect()
}

/// Degrade one link the way the fault machinery would: effective capacity
/// in the network simulator plus a pushed health event.
fn degrade(cluster: &mut Cluster, link: LinkId, milli: u32) {
    let now = cluster.world.clock;
    cluster
        .world
        .net
        .set_link_degrade(now, link, f64::from(milli) / 1000.0);
    cluster.world.health.link_degraded(link, milli, now);
}

/// The controller receives degrade and host events through the bounded
/// push channel — in order, gapless, exactly once — and reconfigures a
/// communicator only when the degradation policy rejects its routes.
#[test]
fn monitor_reacts_to_pushed_events_without_polling() {
    let mut cluster = cluster_with(71, Bytes::mib(8), 6);
    // Let registration and the first collectives get going.
    cluster.run_until(Nanos::from_millis(3));
    let mut mon = HealthMonitor::subscribe(&mut cluster);
    let fabric = fabric_links(&cluster);
    assert_eq!(fabric.len(), 8, "testbed: 2 spines x 2 leaves, both ways");

    // A mild brownout (60% capacity left) plus a host blip: all three
    // events must arrive, but 0.6 is above the route-around threshold,
    // so no corrective reconfiguration fires.
    degrade(&mut cluster, fabric[0], 600);
    let host = cluster.world.topo.host_of_gpu(GpuId(6));
    let now = cluster.world.clock;
    cluster.world.health.host_down(host, now);
    cluster.world.health.host_up(host, now);
    let rep = mon.poll(&mut cluster);
    assert!(!rep.resynced, "three events cannot overflow the channel");
    assert_eq!(rep.events.len(), 3);
    let first = rep.events[0].0;
    for (i, (seq, _)) in rep.events.iter().enumerate() {
        assert_eq!(*seq, first + i as u64, "delivery must be gapless");
    }
    assert!(matches!(
        rep.events[0].1,
        FailureEvent::LinkDegraded { milli: 600, .. }
    ));
    assert!(matches!(rep.events[1].1, FailureEvent::HostDown { .. }));
    assert!(matches!(rep.events[2].1, FailureEvent::HostUp { .. }));
    assert!(
        rep.reconfigured.is_empty(),
        "0.6 capacity is usable; reconfigured {:?}",
        rep.reconfigured
    );

    // A severe fabric-wide brownout (10% left on every spine<->leaf
    // link) drops the communicator's bottleneck below the route-around
    // threshold: this poll must issue a corrective reconfiguration.
    for &l in &fabric {
        degrade(&mut cluster, l, 100);
    }
    let rep = mon.poll(&mut cluster);
    assert_eq!(rep.events.len(), fabric.len());
    assert_eq!(rep.reconfigured, vec![COMM]);
    assert_eq!(mon.consumed(), 3 + fabric.len() as u64);

    // The controller's reconfiguration must drive the Figure 4 barrier
    // to completion: a new epoch, every collective still completing —
    // with the service-side recovery engine never having acted.
    cluster.run_until_quiescent(Nanos::from_secs(60));
    let info = cluster.mgmt().communicator(COMM).expect("comm persists");
    assert!(info.epoch >= 1, "controller recovery must bump the epoch");
    for r in cluster.world.trace.records() {
        assert!(
            r.completed_at.is_some() && r.failed_at.is_none(),
            "collective lost under controller-driven recovery: {r:?}"
        );
    }
    let counters = cluster.mgmt().health_counters();
    assert_eq!(
        counters.recoveries, 0,
        "the service recovery engine must stay inert; the controller acted"
    );
    assert_eq!(counters.collectives_failed, 0);
    assert_eq!(counters.links_degraded as usize, fabric.len());
    let degraded = cluster.mgmt().links_degraded();
    assert_eq!(degraded.len(), fabric.len());
    assert!(degraded.iter().all(|&(_, f)| (f - 0.1).abs() < 1e-9));
}

/// While the controller process is down the monitor is frozen: polls
/// return an empty report without moving the channel cursor, so a long
/// outage rolls the bounded ring past it. The first post-restart poll
/// cannot replay the gapped stream — it resyncs from a snapshot and
/// reacts to the coalesced fabric state in one pass.
///
/// The crash is applied to the world directly rather than through the
/// fault plan: installing a plan would un-gate the service-side recovery
/// engine, and this suite is about the controller acting alone.
#[test]
fn monitor_freezes_while_down_and_resyncs_on_restart() {
    let svc = ServiceConfig {
        health_channel_capacity: 8,
        ..ServiceConfig::default()
    };
    let mut cluster = cluster_with_svc(29, Bytes::mib(8), 6, svc);
    cluster.run_until(Nanos::from_millis(3));
    let mut mon = HealthMonitor::subscribe(&mut cluster);
    let fabric = fabric_links(&cluster);

    // The controller dies with the cursor at the channel tail.
    {
        let now = cluster.world.clock;
        let c = &mut cluster.world.controller;
        c.down = true;
        c.crashed_at = Some(now);
        c.stats.crashes += 1;
    }

    // A severe fabric-wide brownout lands during the outage: one event
    // per spine<->leaf link plus a second report on the first — nine
    // pushes into a ring of eight, evicting the oldest past the frozen
    // cursor.
    for &l in &fabric {
        degrade(&mut cluster, l, 100);
    }
    degrade(&mut cluster, fabric[0], 90);
    assert_eq!(fabric.len() + 1, 9);
    cluster.run_until(Nanos::from_millis(6));

    // Polls while down observe nothing and do not advance the cursor.
    for _ in 0..3 {
        let rep = mon.poll(&mut cluster);
        assert!(rep.events.is_empty(), "monitor must freeze while down");
        assert!(!rep.resynced && rep.lost == 0);
        assert!(rep.reconfigured.is_empty());
    }
    assert_eq!(mon.consumed(), 0);

    // Restart. The first live poll resyncs and reconfigures the starved
    // communicator off the browned-out routes.
    {
        let now = cluster.world.clock;
        let c = &mut cluster.world.controller;
        let since = c.crashed_at.take().expect("crash instant recorded");
        c.stats.downtime_ns += now.0 - since.0;
        c.stats.restarts += 1;
        c.down = false;
        c.incarnation += 1;
    }
    let rep = mon.poll(&mut cluster);
    assert!(rep.resynced, "nine events in a ring of eight must resync");
    assert!(rep.lost >= 1, "the eviction must be reported, not hidden");
    assert!(rep.events.is_empty(), "a resync carries no event stream");
    assert_eq!(rep.reconfigured, vec![COMM]);
    assert_eq!(mon.consumed(), 0, "resyncs deliver state, not events");

    let stats = cluster.mgmt().controller_stats();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.restarts, 1);
    assert!(stats.downtime_ns > 0, "the outage spanned virtual time");

    // The coalesced post-restart reaction still drives the Figure 4
    // barrier to completion, with the service engine never having acted.
    cluster.run_until_quiescent(Nanos::from_secs(60));
    let info = cluster.mgmt().communicator(COMM).expect("comm persists");
    assert!(info.epoch >= 1, "post-restart recovery must bump the epoch");
    for r in cluster.world.trace.records() {
        assert!(
            r.completed_at.is_some() && r.failed_at.is_none(),
            "collective lost across the controller outage: {r:?}"
        );
    }
    let counters = cluster.mgmt().health_counters();
    assert_eq!(counters.recoveries, 0, "service engine must stay inert");
    assert_eq!(counters.collectives_failed, 0);
}
