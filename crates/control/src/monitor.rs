//! The controller's event-driven health monitor.
//!
//! [`HealthMonitor`] subscribes to the service's bounded health push
//! channel (via [`Management::subscribe_health`]) and reacts **per
//! event** — no polling of `links_down()` / `failure_events()` anywhere
//! in the reaction path. Link-down, link-degrade, and host events fold
//! into a set of affected communicators; each affected communicator gets
//! one corrective [`FailoverPolicy`] reconfiguration per poll, placed
//! against effective (degrade-adjusted) link capacities. A channel
//! overflow delivers a snapshot resync instead of a gapped stream, and
//! the monitor falls back to re-evaluating every communicator against
//! the snapshot — the same coalescing the service-side recovery engine
//! applies.
//!
//! [`Management::subscribe_health`]: mccs_core::mgmt::Management::subscribe_health

use crate::failover::FailoverPolicy;
use mccs_core::health::{FailureEvent, HealthDelivery, HealthSubscription};
use mccs_core::recovery::{comm_min_route_weight, RecoveryPolicy};
use mccs_core::{Cluster, CommInfo};
use mccs_ipc::CommunicatorId;
use std::collections::BTreeSet;

/// What one [`HealthMonitor::poll`] observed and did.
#[derive(Clone, Debug, Default)]
pub struct MonitorReport {
    /// Seq-numbered events delivered this poll (empty on a resync).
    pub events: Vec<(u64, FailureEvent)>,
    /// Whether the channel overflowed and handed us a snapshot instead.
    pub resynced: bool,
    /// Events lost to overflow (0 unless `resynced`).
    pub lost: u64,
    /// Communicators this poll reconfigured via [`FailoverPolicy`].
    pub reconfigured: Vec<CommunicatorId>,
}

/// Event-driven controller reaction loop over the health push channel.
pub struct HealthMonitor {
    sub: HealthSubscription,
    /// Total events consumed across polls (observability).
    consumed: u64,
}

impl HealthMonitor {
    /// Subscribe at the channel's current tail: the monitor reacts to
    /// everything recorded after this call.
    pub fn subscribe(cluster: &mut Cluster) -> Self {
        HealthMonitor {
            sub: cluster.mgmt().subscribe_health(),
            consumed: 0,
        }
    }

    /// Events consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Drain the channel and react: fold this batch's topology events
    /// into a set of affected communicators, then issue one
    /// [`FailoverPolicy`] reconfiguration per affected communicator.
    pub fn poll(&mut self, cluster: &mut Cluster) -> MonitorReport {
        let mut report = MonitorReport::default();
        if cluster.world.controller.down {
            // The controller process is down: the monitor does not run.
            // The cursor freezes here so events pile into the bounded
            // channel — a long outage rolls the ring past it and the
            // first post-restart poll resyncs from a snapshot.
            return report;
        }
        let mut topo_changed = false;
        match cluster.mgmt().poll_health(&mut self.sub) {
            HealthDelivery::Events(events) => {
                self.consumed += events.len() as u64;
                for &(_, ev) in &events {
                    if matches!(
                        ev,
                        FailureEvent::LinkDown { .. }
                            | FailureEvent::LinkDegraded { .. }
                            | FailureEvent::HostDown { .. }
                            | FailureEvent::HostUp { .. }
                    ) {
                        topo_changed = true;
                    }
                }
                report.events = events;
            }
            HealthDelivery::Resync(snap) => {
                report.resynced = true;
                report.lost = snap.lost;
                topo_changed = true;
            }
        }
        if !topo_changed {
            return report;
        }
        // One corrective pass per affected communicator: affected means
        // its current routes cross a link the degradation policy rejects.
        let comms: Vec<CommInfo> = cluster.mgmt().communicators();
        let mut affected: BTreeSet<CommunicatorId> = BTreeSet::new();
        for info in &comms {
            if info.registered_ranks != info.world.len() {
                continue;
            }
            let w = &cluster.world;
            let weight = comm_min_route_weight(w, info.comm);
            if w.svc.degradation.usable_weight(weight) <= 0.0 {
                affected.insert(info.comm);
            }
        }
        for comm in affected {
            let (current, world_gpus) = {
                let w = &cluster.world;
                let Some(rank) = w
                    .comms
                    .iter()
                    .find(|((c, _), _)| *c == comm)
                    .map(|(_, r)| r)
                else {
                    continue;
                };
                (rank.config.clone(), rank.world_gpus.clone())
            };
            let Some((rings, routes)) =
                FailoverPolicy.plan(&cluster.world, comm, &current, &world_gpus)
            else {
                continue;
            };
            cluster.mgmt().reconfigure(comm, rings, routes);
            report.reconfigured.push(comm);
        }
        report
    }
}
