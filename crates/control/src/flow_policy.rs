//! Flow-to-route assignment policies (FFA, PFA).
//!
//! Once ring configurations fix the communication pattern, "the set of
//! flows can be determined" (§4.3): every inter-host ring edge of every
//! channel is a long-lived connection. These policies choose each
//! connection's equal-cost path explicitly instead of leaving it to ECMP:
//!
//! * [`ffa`] — best-fit fair assignment: greedy minimal-excess-demand
//!   placement (the Hedera heuristic the paper cites), iterating
//!   round-robin between jobs so no tenant systematically gets the
//!   leftovers.
//! * [`pfa`] — priority assignment: selected route ids are reserved for
//!   the prioritized tenants; lower-priority flows are fitted onto the
//!   remaining routes first, priority flows pick from all of them.

use mccs_collectives::{CollectiveSchedule, EdgeTask, RingOrder};
use mccs_core::config::RouteMap;
use mccs_sim::Bytes;
use mccs_topology::{NicId, RouteId, Topology};
use std::collections::{BTreeSet, HashMap};

/// One job's connection set, as derived from its ring configuration.
#[derive(Clone, Debug)]
pub struct JobFlows {
    /// Priority class, 0 = highest (only [`pfa`] reads this).
    pub priority: u32,
    /// Connections: `(channel, src NIC, dst NIC)`.
    pub flows: Vec<(usize, NicId, NicId)>,
}

impl JobFlows {
    /// Derive a job's connections from its channel rings.
    pub fn from_rings(topo: &Topology, rings: &[RingOrder], priority: u32) -> Self {
        // Any op/size > 0 yields the same edge set; AllGather of 1 MiB.
        let schedule = CollectiveSchedule::ring(
            topo,
            mccs_collectives::CollectiveOp::AllGather,
            Bytes::mib(1),
            rings,
        );
        let flows = schedule
            .channels
            .iter()
            .flat_map(|ch| {
                ch.tasks.iter().filter_map(move |t| match *t {
                    EdgeTask::InterHost {
                        src_nic, dst_nic, ..
                    } => Some((ch.channel, src_nic, dst_nic)),
                    EdgeTask::IntraHost { .. } => None,
                })
            })
            .collect();
        JobFlows { priority, flows }
    }
}

/// Greedy best-fit placement of one flow: the allowed path minimizing the
/// post-placement maximum link utilization, ties broken by lowest route id
/// (determinism).
fn best_fit(
    topo: &Topology,
    load: &mut HashMap<usize, f64>,
    src: NicId,
    dst: NicId,
    allowed: impl Fn(RouteId) -> bool,
) -> RouteId {
    best_fit_with_demand(
        topo,
        load,
        src,
        dst,
        topo.nic(src).bandwidth.as_bps(),
        allowed,
    )
}

/// As [`best_fit`] but with an explicit demand estimate (bps).
fn best_fit_with_demand(
    topo: &Topology,
    load: &mut HashMap<usize, f64>,
    src: NicId,
    dst: NicId,
    demand: f64,
    allowed: impl Fn(RouteId) -> bool,
) -> RouteId {
    let paths = topo.ecmp_paths(src, dst);
    let mut best: Option<(f64, RouteId)> = None;
    for p in paths.iter() {
        if !allowed(p.id) {
            continue;
        }
        let score = p
            .links
            .iter()
            .map(|l| {
                let cap = topo.link(*l).bandwidth.as_bps();
                (load.get(&l.index()).copied().unwrap_or(0.0) + demand) / cap
            })
            .fold(0.0_f64, f64::max);
        if best.is_none_or(|(s, _)| score < s) {
            best = Some((score, p.id));
        }
    }
    let (_, id) = best.unwrap_or_else(|| {
        // Every path reserved away: fall back to the full set (the paper's
        // PFA degrades to FFA rather than starving a tenant).
        let p = &paths[0];
        (0.0, p.id)
    });
    let route = topo.pinned_route(src, dst, id);
    for l in route.links.iter() {
        *load.entry(l.index()).or_default() += demand;
    }
    id
}

fn assign(
    topo: &Topology,
    jobs: &[JobFlows],
    allowed_for: impl Fn(&JobFlows, RouteId) -> bool,
    order: &[usize],
) -> Vec<RouteMap> {
    let mut maps = vec![RouteMap::ecmp(); jobs.len()];
    let mut load: HashMap<usize, f64> = HashMap::new();
    let mut cursors = vec![0usize; jobs.len()];
    // Round-robin between jobs (in the given job order) for fairness.
    loop {
        let mut any = false;
        for &j in order {
            let job = &jobs[j];
            let c = cursors[j];
            if c >= job.flows.len() {
                continue;
            }
            cursors[j] += 1;
            any = true;
            let (channel, src, dst) = job.flows[c];
            let id = best_fit(topo, &mut load, src, dst, |r| allowed_for(job, r));
            maps[j].pin(channel, src, dst, id);
        }
        if !any {
            return maps;
        }
    }
}

/// Best-fit fair flow assignment (§4.3 Example #2): one route map per job,
/// all routes available to everyone, flows placed round-robin across jobs.
pub fn ffa(topo: &Topology, jobs: &[JobFlows]) -> Vec<RouteMap> {
    let order: Vec<usize> = (0..jobs.len()).collect();
    assign(topo, jobs, |_, _| true, &order)
}

/// Priority flow assignment (§4.3 Example #3): `reserved` route ids are
/// dedicated to priority-0 jobs — the paper's example "dedicate one of the
/// two routes between rack A and B to the prioritized application".
/// Priority-0 flows live on the reserved routes (isolated from everyone
/// else's congestion); lower-priority flows best-fit over the remainder.
/// Either side falls back to the full route set when its partition is
/// empty, so nobody starves.
pub fn pfa(topo: &Topology, jobs: &[JobFlows], reserved: &BTreeSet<RouteId>) -> Vec<RouteMap> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&j| jobs[j].priority);
    assign(
        topo,
        jobs,
        |job, r| {
            if job.priority == 0 {
                reserved.is_empty() || reserved.contains(&r)
            } else {
                !reserved.contains(&r)
            }
        },
        &order,
    )
}

/// Online FFA for dynamic arrivals (§6.5: "the rescheduling occurs only
/// when a job joins or exits"): link loads persist across placements, new
/// jobs best-fit against the current load, departing jobs return theirs.
#[derive(Default, Debug)]
pub struct IncrementalFfa {
    load: HashMap<usize, f64>,
}

impl IncrementalFfa {
    /// No load.
    pub fn new() -> Self {
        Self::default()
    }

    /// Place one arriving job's connections; returns its route map. A
    /// flow's demand estimate is the NIC rate divided by how many of the
    /// job's own flows share that source NIC (channels over one NIC split
    /// its line rate).
    pub fn place_job(&mut self, topo: &Topology, flows: &[(usize, NicId, NicId)]) -> RouteMap {
        let mut per_nic: HashMap<NicId, usize> = HashMap::new();
        for &(_, src, _) in flows {
            *per_nic.entry(src).or_default() += 1;
        }
        let mut map = RouteMap::ecmp();
        for &(channel, src, dst) in flows {
            let demand = topo.nic(src).bandwidth.as_bps() / per_nic[&src] as f64;
            let id = best_fit_with_demand(topo, &mut self.load, src, dst, demand, |_| true);
            map.pin(channel, src, dst, id);
        }
        map
    }

    /// Return a departing job's load.
    pub fn remove_job(&mut self, topo: &Topology, flows: &[(usize, NicId, NicId)], map: &RouteMap) {
        let mut per_nic: HashMap<NicId, usize> = HashMap::new();
        for &(_, src, _) in flows {
            *per_nic.entry(src).or_default() += 1;
        }
        for &(channel, src, dst) in flows {
            let Some(id) = map.get(channel, src, dst) else {
                continue;
            };
            let demand = topo.nic(src).bandwidth.as_bps() / per_nic[&src] as f64;
            let route = topo.pinned_route(src, dst, id);
            for l in route.links.iter() {
                let e = self.load.entry(l.index()).or_default();
                *e = (*e - demand).max(0.0);
            }
        }
    }

    /// Current total pinned demand on a link (bps), for tests.
    pub fn link_load(&self, link: usize) -> f64 {
        self.load.get(&link).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_topology::{presets, GpuId};

    fn testbed_rings(gpus: &[GpuId]) -> Vec<RingOrder> {
        vec![RingOrder::new(gpus.to_vec())]
    }

    #[test]
    fn job_flows_extracts_inter_host_connections() {
        let topo = presets::testbed();
        let rings = testbed_rings(&[GpuId(0), GpuId(2), GpuId(4), GpuId(6)]);
        let jf = JobFlows::from_rings(&topo, &rings, 0);
        assert_eq!(jf.flows.len(), 4, "4 inter-host edges in a 4-host ring");
    }

    #[test]
    fn ffa_spreads_two_jobs_over_two_spines() {
        // The paper's own example: two applications each with one
        // cross-rack connection per direction; FFA gives each route a flow
        // from each application direction-wise without collision.
        let topo = presets::testbed();
        let a = JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(0), GpuId(4)]), 0);
        let b = JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(2), GpuId(6)]), 0);
        let maps = ffa(&topo, &[a.clone(), b.clone()]);
        // collect the spine (route id) used per direction per job
        let mut per_direction: HashMap<bool, Vec<RouteId>> = HashMap::new();
        for (job, map) in [(&a, &maps[0]), (&b, &maps[1])] {
            for &(ch, s, d) in &job.flows {
                let id = map.get(ch, s, d).expect("pinned");
                // direction: rack0 -> rack1 iff src nic index < 4
                per_direction.entry(s.0 < 4).or_default().push(id);
                let _ = d;
            }
        }
        for (_, ids) in per_direction {
            assert_eq!(ids.len(), 2);
            assert_ne!(
                ids[0], ids[1],
                "two flows in one direction must not collide"
            );
        }
    }

    #[test]
    fn ffa_is_deterministic() {
        let topo = presets::testbed();
        let a = JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(0), GpuId(4)]), 0);
        let b = JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(2), GpuId(6)]), 0);
        let m1 = ffa(&topo, &[a.clone(), b.clone()]);
        let m2 = ffa(&topo, &[a, b]);
        assert_eq!(m1, m2);
    }

    #[test]
    fn pfa_reserves_routes_for_priority() {
        let topo = presets::testbed();
        let hi = JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(0), GpuId(4)]), 0);
        let mut lo = JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(2), GpuId(6)]), 1);
        lo.priority = 1;
        let reserved: BTreeSet<RouteId> = [RouteId(0)].into();
        let maps = pfa(&topo, &[hi.clone(), lo.clone()], &reserved);
        // Low-priority flows never use the reserved route 0.
        for &(ch, s, d) in &lo.flows {
            let id = maps[1].get(ch, s, d).expect("pinned");
            assert_ne!(id, RouteId(0), "low-priority flow on a reserved route");
        }
        // High-priority flows got the reserved (empty) route.
        for &(ch, s, d) in &hi.flows {
            let id = maps[0].get(ch, s, d).expect("pinned");
            assert_eq!(id, RouteId(0), "priority flow should take the free route");
        }
    }

    #[test]
    fn pfa_falls_back_when_everything_reserved() {
        let topo = presets::testbed();
        let mut lo = JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(0), GpuId(4)]), 1);
        lo.priority = 1;
        let reserved: BTreeSet<RouteId> = [RouteId(0), RouteId(1)].into();
        let maps = pfa(&topo, &[lo.clone()], &reserved);
        // all routes reserved: the job still gets *some* route
        for &(ch, s, d) in &lo.flows {
            assert!(maps[0].get(ch, s, d).is_some());
        }
    }

    #[test]
    fn incremental_ffa_balances_and_releases() {
        let topo = presets::testbed();
        let mut inc = IncrementalFfa::new();
        let a: Vec<(usize, NicId, NicId)> =
            JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(0), GpuId(4)]), 0).flows;
        let b: Vec<(usize, NicId, NicId)> =
            JobFlows::from_rings(&topo, &testbed_rings(&[GpuId(2), GpuId(6)]), 0).flows;
        let ma = inc.place_job(&topo, &a);
        let mb = inc.place_job(&topo, &b);
        // per direction, the two jobs landed on different spines
        for &(ch_a, sa, da) in &a {
            for &(ch_b, sb, db) in &b {
                let same_dir = (sa.0 < 4) == (sb.0 < 4);
                if same_dir {
                    assert_ne!(
                        ma.get(ch_a, sa, da),
                        mb.get(ch_b, sb, db),
                        "incremental FFA collided two same-direction flows"
                    );
                }
            }
        }
        // removing both returns every link to zero
        inc.remove_job(&topo, &a, &ma);
        inc.remove_job(&topo, &b, &mb);
        for l in 0..topo.links().len() {
            assert_eq!(inc.link_load(l), 0.0, "residual load on link {l}");
        }
    }

    #[test]
    fn ffa_balances_eight_gpu_two_channel_job() {
        // 8-GPU job, 2 channels: per direction, the two channels' cross-
        // rack flows must land on different spines.
        let topo = presets::testbed();
        let ring = RingOrder::new((0..8).map(GpuId).collect());
        let jf = JobFlows::from_rings(&topo, &[ring.clone(), ring], 0);
        let maps = ffa(&topo, std::slice::from_ref(&jf));
        let mut per_direction: HashMap<bool, BTreeSet<RouteId>> = HashMap::new();
        for &(ch, s, d) in &jf.flows {
            // cross-rack flows only (H1<->H2 boundary and wrap-around)
            let cross = topo.nic(s).host != topo.nic(d).host
                && !topo.same_rack(topo.nic(s).host, topo.nic(d).host);
            if cross {
                let id = maps[0].get(ch, s, d).expect("pinned");
                per_direction.entry(s.0 < 4).or_default().insert(id);
            }
        }
        for (_, ids) in per_direction {
            assert_eq!(ids.len(), 2, "both spines engaged per direction");
        }
    }
}
