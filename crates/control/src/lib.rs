//! # mccs-control — the centralized controller and its policies
//!
//! The provider-side brain of §4.3 ("Enabling Manageability"): consumes
//! the MCCS management API (communicator inventory, traces) and produces
//! the four example policies the paper evaluates:
//!
//! * **OR** ([`ring_policy`]) — locality-aware ring configuration:
//!   group participant hosts by rack/pod, chain them sequentially,
//!   minimizing cross-rack ring edges (§4.3 Example #1).
//! * **FFA** ([`flow_policy::ffa`]) — best-fit fair flow assignment:
//!   Hedera-style greedy placement of every collective connection onto the
//!   equal-cost path with minimal excess demand, round-robin across jobs
//!   for fairness (§4.3 Example #2).
//! * **PFA** ([`flow_policy::pfa`]) — priority flow assignment: routes
//!   reserved for high-priority tenants; low-priority flows fit on the
//!   remainder (§4.3 Example #3).
//! * **TS** ([`ts`]) — time-window traffic scheduling: infer the
//!   prioritized app's idle cycles from its collective trace and gate
//!   other tenants into them (§4.3 Example #4, CASSINI-inspired).
//!
//! [`controller`] composes these into one-call cluster optimization.
//!
//! [`failover`] adds the controller's answer to failures: an FFA-informed
//! [`RecoveryPolicy`](mccs_core::RecoveryPolicy) that rebalances a
//! communicator's connections over the healthy fabric instead of piling
//! them onto the first surviving route.

pub mod controller;
pub mod failover;
pub mod flow_policy;
pub mod monitor;
pub mod ring_policy;
pub mod ts;

pub use controller::{apply_traffic_schedule, optimize_cluster, FlowAssignment, PolicySpec};
pub use failover::FailoverPolicy;
pub use flow_policy::{ffa, pfa, JobFlows};
pub use monitor::{HealthMonitor, MonitorReport};
pub use ring_policy::{optimal_rings, ChannelPolicy};
pub use ts::infer_windows;
