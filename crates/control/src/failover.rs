//! Controller-side failure recovery: FFA-informed corrective configs.
//!
//! The service's built-in [`DetourPolicy`](mccs_core::DetourPolicy) pins
//! each broken connection to the *first* healthy route it finds — correct,
//! but oblivious to load: after a spine failure every detoured flow piles
//! onto the same surviving path. [`FailoverPolicy`] is the controller-
//! grade alternative: it re-runs the best-fit placement of
//! [`flow_policy`](crate::flow_policy) restricted to healthy routes, so
//! the surviving fabric is shared evenly between the communicator's
//! channels. Like the detour policy it drops a channel's ring only when
//! one of its connections has no healthy route at all, degrading
//! bandwidth instead of deadlocking, and returns `None` only when the
//! communicator is fully partitioned.

use mccs_collectives::{op::all_reduce_sum, CollectiveSchedule, EdgeTask, RingOrder};
use mccs_core::config::{CollectiveConfig, RouteMap};
use mccs_core::recovery::RecoveryPolicy;
use mccs_core::World;
use mccs_ipc::CommunicatorId;
use mccs_sim::Bytes;
use mccs_topology::{GpuId, NicId, RouteId};
use std::collections::HashMap;

/// Best-fit failover placement over the healthy fabric.
#[derive(Debug, Default, Clone, Copy)]
pub struct FailoverPolicy;

impl FailoverPolicy {
    /// Best-fit one connection onto its surviving equal-cost paths: the
    /// one minimizing post-placement maximum link utilization, measured
    /// against each link's *effective* (degrade-adjusted) capacity so a
    /// half-rate spine attracts half the placements; ties (e.g. when the
    /// shared NIC uplink dominates every candidate's max) broken by total
    /// path utilization, then lowest route id (determinism). Routes the
    /// degradation policy deems unusable are considered only when no
    /// usable route survives; `None` when every path is dead.
    fn place(w: &World, load: &mut HashMap<usize, f64>, src: NicId, dst: NicId) -> Option<RouteId> {
        let policy = w.svc.degradation;
        let demand = w.topo.nic(src).bandwidth.as_bps();
        let mut best: Option<(f64, f64, RouteId)> = None;
        for pass in 0..2 {
            for p in w.topo.ecmp_paths(src, dst).iter() {
                let weight = w.net.route_weight(src, dst, p.id);
                let eligible = if pass == 0 {
                    policy.usable_weight(weight) > 0.0
                } else {
                    weight > 0.0
                };
                if !eligible {
                    continue;
                }
                let (mut worst, mut total) = (0.0_f64, 0.0_f64);
                for l in p.links.iter() {
                    let cap = w.net.link_effective_capacity(*l).as_bps();
                    let u = (load.get(&l.index()).copied().unwrap_or(0.0) + demand) / cap;
                    worst = worst.max(u);
                    total += u;
                }
                if best.is_none_or(|(bw, bt, _)| worst < bw || (worst == bw && total < bt)) {
                    best = Some((worst, total, p.id));
                }
            }
            if best.is_some() {
                break;
            }
        }
        let (_, _, id) = best?;
        for l in w.topo.pinned_route(src, dst, id).links.iter() {
            *load.entry(l.index()).or_default() += demand;
        }
        Some(id)
    }
}

impl RecoveryPolicy for FailoverPolicy {
    fn plan(
        &self,
        w: &World,
        _comm: CommunicatorId,
        current: &CollectiveConfig,
        _world_gpus: &[GpuId],
    ) -> Option<(Vec<RingOrder>, RouteMap)> {
        let mut rings = current.channel_rings.clone();
        'rebuild: loop {
            if rings.is_empty() {
                return None;
            }
            // Inter-host NIC pairs depend only on the rings and the
            // topology, never on op or size: any probe schedule works.
            let sched = CollectiveSchedule::ring(&w.topo, all_reduce_sum(), Bytes::mib(1), &rings);
            let mut routes = RouteMap::ecmp();
            let mut load: HashMap<usize, f64> = HashMap::new();
            for ch in &sched.channels {
                for task in &ch.tasks {
                    let EdgeTask::InterHost {
                        src_nic, dst_nic, ..
                    } = *task
                    else {
                        continue;
                    };
                    match Self::place(w, &mut load, src_nic, dst_nic) {
                        Some(r) => routes.pin(ch.channel, src_nic, dst_nic, r),
                        None => {
                            // This pair is partitioned: the channel cannot
                            // run. Drop its ring and rebuild (the channel-
                            // to-NIC mapping of the survivors shifts).
                            rings.remove(ch.channel);
                            continue 'rebuild;
                        }
                    }
                }
            }
            return Some((rings, routes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_core::{Cluster, ClusterConfig};
    use mccs_sim::Nanos;
    use mccs_topology::graph::Endpoint;
    use mccs_topology::{presets, LinkId};
    use std::sync::Arc;

    fn cluster() -> Cluster {
        Cluster::new(Arc::new(presets::testbed()), ClusterConfig::default())
    }

    fn two_channel_config(topo: &mccs_topology::Topology) -> CollectiveConfig {
        let ring = RingOrder::new(vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)]);
        let _ = topo;
        CollectiveConfig {
            epoch: 0,
            channel_rings: vec![ring.clone(), ring],
            routes: RouteMap::ecmp(),
        }
    }

    fn spine_links(topo: &mccs_topology::Topology) -> Vec<LinkId> {
        topo.links()
            .iter()
            .filter(|l| {
                matches!(l.from, Endpoint::Switch(_)) && matches!(l.to, Endpoint::Switch(_))
            })
            .map(|l| l.id)
            .collect()
    }

    #[test]
    fn failover_spreads_channels_over_spines() {
        let c = cluster();
        let w = &c.world;
        let current = two_channel_config(&w.topo);
        let world_gpus: Vec<GpuId> = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let (rings, routes) = FailoverPolicy
            .plan(w, CommunicatorId(0), &current, &world_gpus)
            .expect("healthy fabric must yield a plan");
        assert_eq!(rings.len(), 2);
        // Per cross-rack direction, the two channels must land on
        // different spines (what first-healthy DetourPolicy cannot do).
        let mut per_direction: HashMap<bool, Vec<RouteId>> = HashMap::new();
        for (&(_, src, dst), &r) in routes.iter() {
            let (hs, hd) = (w.topo.nic(src).host, w.topo.nic(dst).host);
            if !w.topo.same_rack(hs, hd) {
                per_direction.entry(src.0 < 4).or_default().push(r);
            }
        }
        for (_, ids) in per_direction {
            assert_eq!(ids.len(), 2, "two channels cross each rack boundary");
            assert_ne!(ids[0], ids[1], "failover collided two channels");
        }
    }

    #[test]
    fn failover_avoids_dead_spine() {
        let mut c = cluster();
        let spine = spine_links(&c.world.topo)[0];
        c.world.net.set_link_up(Nanos::ZERO, spine, false);
        let w = &c.world;
        let current = two_channel_config(&w.topo);
        let world_gpus: Vec<GpuId> = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let (_, routes) = FailoverPolicy
            .plan(w, CommunicatorId(0), &current, &world_gpus)
            .expect("an alternate spine remains");
        for (&(_, src, dst), &r) in routes.iter() {
            assert!(w.net.route_healthy(src, dst, r));
            assert!(
                !w.topo.pinned_route(src, dst, r).links.contains(&spine),
                "failover pinned a route over the dead spine"
            );
        }
    }

    #[test]
    fn failover_gives_up_when_partitioned() {
        let mut c = cluster();
        let spines = spine_links(&c.world.topo);
        for l in spines {
            c.world.net.set_link_up(Nanos::ZERO, l, false);
        }
        let w = &c.world;
        let current = two_channel_config(&w.topo);
        let world_gpus: Vec<GpuId> = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        assert!(
            FailoverPolicy
                .plan(w, CommunicatorId(0), &current, &world_gpus)
                .is_none(),
            "a fully partitioned communicator has no corrective config"
        );
    }

    #[test]
    fn failover_is_deterministic() {
        let c = cluster();
        let w = &c.world;
        let current = two_channel_config(&w.topo);
        let world_gpus: Vec<GpuId> = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let a = FailoverPolicy.plan(w, CommunicatorId(0), &current, &world_gpus);
        let b = FailoverPolicy.plan(w, CommunicatorId(0), &current, &world_gpus);
        assert_eq!(
            a.map(|(r, m)| (r.len(), format!("{m:?}"))),
            b.map(|(r, m)| (r.len(), format!("{m:?}")))
        );
    }
}
