//! Locality-aware ring configuration (OR).
//!
//! The greedy algorithm of §4.3 Example #1: "group the participant hosts
//! by their locality (e.g., under the same rack, under the same pod) and
//! then connect them in a sequential order". The resulting ring visits
//! every rack contiguously, so cross-rack ring edges drop to the minimum
//! (one entry per rack boundary) — the denominator of the paper's
//! cross-rack ratio.

use mccs_collectives::RingOrder;
use mccs_topology::{GpuId, LocalityMap, Topology};
use std::collections::BTreeMap;

/// How many parallel rings (channels) to configure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelPolicy {
    /// One channel per NIC the communicator can drive on its busiest host
    /// (engages every assigned NIC; the testbed setting).
    MatchNics,
    /// One channel per equal-cost network path (the §6.5 at-scale setting:
    /// "the number of rings equal to the number of network multi-path
    /// choices", so FFA can dedicate one ring per path).
    MatchPathDiversity,
    /// Exactly this many channels.
    Fixed(usize),
}

/// Compute the locality-aware rings for a communicator.
///
/// All channels share the same locality-optimal order (channel NIC
/// rotation happens in the schedule layer); what differs per channel is
/// the route assignment, which is the flow policy's job.
pub fn optimal_rings(topo: &Topology, gpus: &[GpuId], channels: ChannelPolicy) -> Vec<RingOrder> {
    assert!(!gpus.is_empty(), "empty communicator");
    let map = LocalityMap::build(topo, gpus);
    let ring = RingOrder::new(map.locality_order());
    let k = match channels {
        ChannelPolicy::Fixed(k) => k,
        ChannelPolicy::MatchNics => max_gpus_per_host(topo, gpus),
        ChannelPolicy::MatchPathDiversity => {
            // The widest equal-cost choice any ring edge sees (same-rack
            // edges see one path; cross-rack edges one per spine).
            ring.inter_host_edges(topo)
                .iter()
                .map(|&(a, b)| topo.path_diversity(topo.nic_of_gpu(a), topo.nic_of_gpu(b)))
                .max()
                .unwrap_or(1)
        }
    };
    vec![ring; k.max(1)]
}

fn max_gpus_per_host(topo: &Topology, gpus: &[GpuId]) -> usize {
    let mut counts: BTreeMap<_, usize> = BTreeMap::new();
    for &g in gpus {
        *counts.entry(topo.host_of_gpu(g)).or_default() += 1;
    }
    counts.values().copied().max().unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_collectives::crossrack;
    use mccs_sim::Rng;
    use mccs_topology::presets;

    #[test]
    fn optimal_ring_minimizes_cross_rack_edges() {
        let topo = presets::testbed();
        // Scrambled membership spanning both racks.
        let gpus = vec![GpuId(6), GpuId(0), GpuId(4), GpuId(2)];
        let rings = optimal_rings(&topo, &gpus, ChannelPolicy::Fixed(1));
        let hosts = rings[0].host_sequence(&topo);
        assert_eq!(crossrack::cross_rack_edges(&topo, &hosts), 2);
        assert!((crossrack::cross_rack_ratio(&topo, &hosts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_beats_random_on_average() {
        let topo = presets::spine_leaf(&presets::SpineLeafConfig {
            spines: 2,
            leaves: 8,
            hosts_per_leaf: 4,
            gpus_per_host: 1,
            nic_bandwidth: mccs_sim::Bandwidth::gbps(100.0),
            leaf_spine_bandwidth: mccs_sim::Bandwidth::gbps(100.0),
        });
        let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
        let rings = optimal_rings(&topo, &gpus, ChannelPolicy::Fixed(1));
        let opt_hosts = rings[0].host_sequence(&topo);
        let opt = crossrack::cross_rack_edges(&topo, &opt_hosts);
        let mut rng = Rng::seed_from(1);
        let hosts: Vec<_> = opt_hosts.clone();
        let rand_ratio = crossrack::expected_random_ratio(&topo, &hosts, 100, &mut rng);
        assert_eq!(opt, 8, "one crossing per rack");
        assert!(rand_ratio > 2.0, "random ratio {rand_ratio}");
    }

    #[test]
    fn channel_policies() {
        let topo = presets::testbed();
        let eight: Vec<GpuId> = (0..8).map(GpuId).collect();
        assert_eq!(
            optimal_rings(&topo, &eight, ChannelPolicy::MatchNics).len(),
            2
        );
        let four = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        assert_eq!(
            optimal_rings(&topo, &four, ChannelPolicy::MatchNics).len(),
            1
        );
        // testbed has 2 spines -> diversity 2
        assert_eq!(
            optimal_rings(&topo, &four, ChannelPolicy::MatchPathDiversity).len(),
            2
        );
        assert_eq!(
            optimal_rings(&topo, &four, ChannelPolicy::Fixed(5)).len(),
            5
        );
    }

    #[test]
    fn single_host_job_gets_one_channel_for_diversity() {
        let topo = presets::testbed();
        let gpus = vec![GpuId(0), GpuId(1)];
        let rings = optimal_rings(&topo, &gpus, ChannelPolicy::MatchPathDiversity);
        assert_eq!(rings.len(), 1);
    }

    #[test]
    fn rings_are_host_contiguous() {
        let topo = presets::testbed();
        let gpus = vec![GpuId(5), GpuId(1), GpuId(0), GpuId(4)];
        let rings = optimal_rings(&topo, &gpus, ChannelPolicy::MatchNics);
        assert!(rings[0].is_host_contiguous(&topo));
    }
}
