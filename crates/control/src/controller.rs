//! One-call cluster optimization.
//!
//! Composes the ring and flow policies against a live [`Cluster`]'s
//! management API: read the communicator inventory, compute the
//! locality-aware rings, derive the connection set, solve the flow
//! assignment, and push a single reconfiguration per communicator —
//! exactly the controller loop the paper describes ("the rescheduling
//! occurs only when a job joins or exits").

use crate::flow_policy::{ffa, pfa, JobFlows};
use crate::ring_policy::{optimal_rings, ChannelPolicy};
use crate::ts::infer_windows;
use mccs_core::cluster::Cluster;
use mccs_core::config::RouteMap;
use mccs_ipc::{AppId, CommunicatorId};
use mccs_topology::RouteId;
use std::collections::{BTreeMap, BTreeSet};

/// How connections are mapped to routes.
#[derive(Clone, Debug)]
pub enum FlowAssignment {
    /// Leave everything to ECMP (the MCCS(-FA)/MCCS(-FFA) ablations).
    Ecmp,
    /// Best-fit fair flow assignment.
    Ffa,
    /// Priority flow assignment: per-app priorities (0 = highest, default
    /// lowest) and the route ids reserved for priority-0 tenants.
    Pfa {
        /// Priority per app (absent = lowest).
        priorities: BTreeMap<AppId, u32>,
        /// Route ids exclusive to priority-0 apps.
        reserved: BTreeSet<RouteId>,
    },
}

/// A complete policy: ring strategy + flow assignment.
#[derive(Clone, Debug)]
pub struct PolicySpec {
    /// Recompute locality-aware rings (OR)? `false` keeps current rings.
    pub optimal_rings: bool,
    /// Channel sizing for recomputed rings.
    pub channels: ChannelPolicy,
    /// Flow-to-route mapping.
    pub assignment: FlowAssignment,
}

impl PolicySpec {
    /// The full MCCS policy: OR + FFA.
    pub fn mccs() -> Self {
        PolicySpec {
            optimal_rings: true,
            channels: ChannelPolicy::MatchNics,
            assignment: FlowAssignment::Ffa,
        }
    }

    /// The MCCS(-FA)/MCCS(-FFA) ablation: OR only, ECMP routing.
    pub fn mccs_no_fa() -> Self {
        PolicySpec {
            optimal_rings: true,
            channels: ChannelPolicy::MatchNics,
            assignment: FlowAssignment::Ecmp,
        }
    }
}

/// Apply `policy` to every fully-registered communicator on the cluster.
/// Returns the communicators reconfigured.
pub fn optimize_cluster(cluster: &mut Cluster, policy: &PolicySpec) -> Vec<CommunicatorId> {
    let infos = cluster.mgmt().communicators();
    let ready: Vec<_> = infos
        .into_iter()
        .filter(|i| i.registered_ranks == i.world.len())
        .collect();
    if ready.is_empty() {
        return Vec::new();
    }
    // 1. Ring configuration.
    let topo = std::sync::Arc::clone(&cluster.world.topo);
    let rings_per_comm: Vec<_> = ready
        .iter()
        .map(|info| {
            if policy.optimal_rings {
                optimal_rings(&topo, &info.world, policy.channels)
            } else {
                info.rings.clone()
            }
        })
        .collect();
    // 2. Flow assignment.
    let route_maps: Vec<RouteMap> = match &policy.assignment {
        FlowAssignment::Ecmp => vec![RouteMap::ecmp(); ready.len()],
        FlowAssignment::Ffa => {
            let jobs: Vec<JobFlows> = ready
                .iter()
                .zip(&rings_per_comm)
                .map(|(_, rings)| JobFlows::from_rings(&topo, rings, 0))
                .collect();
            ffa(&topo, &jobs)
        }
        FlowAssignment::Pfa {
            priorities,
            reserved,
        } => {
            let jobs: Vec<JobFlows> = ready
                .iter()
                .zip(&rings_per_comm)
                .map(|(info, rings)| {
                    let p = priorities.get(&info.app).copied().unwrap_or(u32::MAX);
                    JobFlows::from_rings(&topo, rings, p)
                })
                .collect();
            pfa(&topo, &jobs, reserved)
        }
    };
    // 3. One reconfiguration per communicator.
    let mut reconfigured = Vec::new();
    for ((info, rings), routes) in ready.iter().zip(rings_per_comm).zip(route_maps) {
        cluster.mgmt().reconfigure(info.comm, rings, routes);
        reconfigured.push(info.comm);
    }
    reconfigured
}

/// Apply TS: profile `prioritized`'s trace and gate every app in `gated`
/// into its idle windows. Returns `true` if a schedule was installed.
pub fn apply_traffic_schedule(cluster: &mut Cluster, prioritized: AppId, gated: &[AppId]) -> bool {
    let trace = cluster.mgmt().timeline(prioritized);
    let Some(windows) = infer_windows(&trace) else {
        return false;
    };
    for &app in gated {
        cluster
            .mgmt()
            .set_traffic_windows(app, Some(windows.clone()))
            .expect("inferred windows are valid by construction");
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_core::ClusterConfig;
    use mccs_topology::{presets, GpuId};
    use std::sync::Arc;

    #[test]
    fn policy_presets() {
        let m = PolicySpec::mccs();
        assert!(m.optimal_rings);
        assert!(matches!(m.assignment, FlowAssignment::Ffa));
        let nofa = PolicySpec::mccs_no_fa();
        assert!(matches!(nofa.assignment, FlowAssignment::Ecmp));
    }

    #[test]
    fn optimize_empty_cluster_is_a_noop() {
        let mut c = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::default());
        let done = optimize_cluster(&mut c, &PolicySpec::mccs());
        assert!(done.is_empty());
        let _ = GpuId(0);
    }
}
