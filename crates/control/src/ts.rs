//! Time-window traffic scheduling (TS).
//!
//! The CASSINI-inspired policy of §4.3 Example #4: profile the prioritized
//! application's collective timeline through the MCCS tracing API, find
//! its periodic idle cycles (time between one collective's completion and
//! the next one's issue — the backward/forward compute phases of a
//! training iteration), and emit a [`TrafficWindows`] schedule that admits
//! *other* tenants' traffic only inside those idle windows.

use mccs_core::qos::TrafficWindows;
use mccs_core::tracing::TraceRecord;
use mccs_sim::Nanos;

/// Infer the windows during which the traced application is idle.
///
/// Needs at least three completed collectives to establish a period.
/// Returns `None` when the trace is too short or shows no usable idle gap
/// (a communication-bound app leaves nothing to interleave into).
pub fn infer_windows(records: &[TraceRecord]) -> Option<TrafficWindows> {
    // Use completed rank-0-style records in issue order.
    let mut recs: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.completed_at.is_some())
        .collect();
    recs.sort_by_key(|r| r.issued_at);
    if recs.len() < 3 {
        return None;
    }
    // Cluster back-to-back collectives into bursts: a new burst starts
    // when the gap since the previous completion exceeds the threshold
    // (dependent collectives of one layer/bucket issue within it).
    const BURST_GAP: Nanos = Nanos::from_micros(200);
    let mut bursts: Vec<(Nanos, Nanos)> = Vec::new(); // (start, end)
    for r in &recs {
        let done = r.completed_at.expect("filtered");
        match bursts.last_mut() {
            Some((_, end)) if r.issued_at <= *end + BURST_GAP => {
                *end = (*end).max(done);
            }
            _ => bursts.push((r.issued_at, done)),
        }
    }
    if bursts.len() < 3 {
        return None;
    }
    // Period: median inter-burst-start gap.
    let mut periods: Vec<u64> = bursts
        .windows(2)
        .map(|w| (w[1].0 - w[0].0).as_nanos())
        .collect();
    periods.sort_unstable();
    let period = Nanos::from_nanos(periods[periods.len() / 2]);
    if period == Nanos::ZERO {
        return None;
    }
    // Busy span: median burst duration.
    let mut busy: Vec<u64> = bursts.iter().map(|&(s, e)| (e - s).as_nanos()).collect();
    busy.sort_unstable();
    let busy = Nanos::from_nanos(busy[busy.len() / 2]);
    if busy >= period {
        return None; // no idle cycle to exploit
    }
    let idle = period - busy;
    // Phase-align to the last observed burst end: the idle phase starts
    // when the burst completes.
    let last_done = bursts.last().expect("non-empty").1;
    let offset = Nanos::from_nanos(last_done.as_nanos() % period.as_nanos());
    // The open (others-may-send) window is the idle span starting at the
    // completion phase, wrapped into the period.
    let open = if offset + idle <= period {
        vec![(offset, idle)]
    } else {
        let first = period - offset;
        vec![(Nanos::ZERO, idle - first), (offset, first)]
    };
    // An inferred schedule can be degenerate in corner cases (e.g. an
    // idle span of zero after rounding); treat that as "no usable
    // window" rather than surfacing an error.
    TrafficWindows::new(period, open).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_collectives::op::all_reduce_sum;
    use mccs_ipc::{AppId, CommunicatorId};
    use mccs_sim::Bytes;

    /// Build a synthetic periodic trace: issue at k*period, complete
    /// busy later.
    fn periodic_trace(n: usize, period_us: u64, busy_us: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|k| {
                let issued = Nanos::from_micros(k as u64 * period_us);
                TraceRecord {
                    app: AppId(0),
                    comm: CommunicatorId(0),
                    rank: 0,
                    seq: k as u64,
                    op: all_reduce_sum(),
                    size: Bytes::mib(25),
                    epoch: 0,
                    issued_at: issued,
                    launched_at: Some(issued),
                    completed_at: Some(issued + Nanos::from_micros(busy_us)),
                    failed_at: None,
                }
            })
            .collect()
    }

    #[test]
    fn recovers_period_and_idle_fraction() {
        let trace = periodic_trace(10, 1000, 300);
        let w = infer_windows(&trace).expect("clear periodicity");
        assert_eq!(w.period, Nanos::from_millis(1));
        assert!(
            (w.duty_cycle() - 0.7).abs() < 0.01,
            "duty {}",
            w.duty_cycle()
        );
    }

    #[test]
    fn window_opens_exactly_when_app_goes_idle() {
        let trace = periodic_trace(10, 1000, 300);
        let w = infer_windows(&trace).expect("windows");
        // App busy [0, 300us) of each period; idle [300us, 1000us).
        assert!(!w.is_open(Nanos::from_micros(100)));
        assert!(w.is_open(Nanos::from_micros(500)));
        assert!(w.is_open(Nanos::from_micros(999)));
        assert!(!w.is_open(Nanos::from_micros(1100)));
    }

    #[test]
    fn too_short_trace_yields_none() {
        assert!(infer_windows(&periodic_trace(2, 1000, 300)).is_none());
    }

    #[test]
    fn fully_busy_app_yields_none() {
        // busy == period: communication-bound, nothing to interleave.
        assert!(infer_windows(&periodic_trace(10, 1000, 1000)).is_none());
    }

    #[test]
    fn tolerates_jittered_latencies() {
        let mut trace = periodic_trace(11, 1000, 300);
        // jitter completions by up to 50us
        for (i, r) in trace.iter_mut().enumerate() {
            let j = (i as u64 * 13) % 50;
            r.completed_at = Some(r.completed_at.expect("set") + Nanos::from_micros(j));
        }
        let w = infer_windows(&trace).expect("windows");
        assert_eq!(w.period, Nanos::from_millis(1));
        // duty cycle near 0.7 despite jitter (median is robust)
        assert!((w.duty_cycle() - 0.7).abs() < 0.06);
    }
}
