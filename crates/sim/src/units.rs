//! Data-size and bandwidth units.
//!
//! Collective-communication papers quote buffer sizes in binary units
//! (KB/MB meaning KiB/MiB, following NCCL-tests) and link speeds in decimal
//! gigabits per second. [`Bytes`] and [`Bandwidth`] capture both conventions
//! and provide the transfer-time arithmetic used throughout the simulator:
//! `time = bytes * 8 / bits_per_second`.

use crate::time::Nanos;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A number of bytes (buffer size, flow size, bytes on the wire).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a raw byte count.
    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// `n` kibibytes (the "KB" of NCCL-tests plots).
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// `n` mebibytes (the "MB" of NCCL-tests plots).
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as `f64` (exact below 2^53).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Scale by a fraction, rounding to the nearest byte.
    pub fn mul_f64(self, f: f64) -> Bytes {
        Bytes((self.0 as f64 * f).round().max(0.0) as u64)
    }

    /// Integer division that distributes the remainder: splitting `self`
    /// into `parts` pieces whose sizes differ by at most one byte and sum
    /// exactly to `self`. Piece `idx` (0-based) is returned.
    pub fn split(self, parts: u64, idx: u64) -> Bytes {
        assert!(parts > 0, "cannot split into zero parts");
        assert!(idx < parts, "piece index out of range");
        let base = self.0 / parts;
        let rem = self.0 % parts;
        Bytes(base + u64::from(idx < rem))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        const K: u64 = 1024;
        if b < K {
            write!(f, "{b}B")
        } else if b < K * K {
            write!(f, "{:.0}KB", b as f64 / K as f64)
        } else if b < K * K * K {
            write!(f, "{:.0}MB", b as f64 / (K * K) as f64)
        } else {
            write!(f, "{:.1}GB", b as f64 / (K * K * K) as f64)
        }
    }
}

/// A data rate. Stored in bits per second as `f64` so that max-min rate
/// allocation (which produces fractional shares) is exact enough for the
/// flow-level simulator.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From bits per second.
    pub fn bps(b: f64) -> Self {
        assert!(
            b.is_finite() && b >= 0.0,
            "bandwidth must be finite and non-negative"
        );
        Bandwidth(b)
    }

    /// From decimal gigabits per second (link speeds: "100 Gbps NIC").
    pub fn gbps(g: f64) -> Self {
        Bandwidth::bps(g * 1e9)
    }

    /// From bytes per second.
    pub fn bytes_per_sec(b: f64) -> Self {
        Bandwidth::bps(b * 8.0)
    }

    /// From decimal gigabytes per second (algorithm-bandwidth plots use GB/s).
    pub fn gibytes_per_sec(g: f64) -> Self {
        Bandwidth::bytes_per_sec(g * 1e9)
    }

    /// Bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Decimal gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Decimal gigabytes per second (the unit of the paper's Figures 6-8).
    pub fn as_gbytes_per_sec(self) -> f64 {
        self.as_bytes_per_sec() / 1e9
    }

    /// Time to move `bytes` at this rate. Returns [`Nanos::MAX`] for a zero
    /// rate (the transfer never completes until the rate changes).
    pub fn transfer_time(self, bytes: Bytes) -> Nanos {
        if bytes == Bytes::ZERO {
            return Nanos::ZERO;
        }
        if self.0 <= 0.0 {
            return Nanos::MAX;
        }
        Nanos::from_secs_f64(bytes.as_f64() * 8.0 / self.0)
    }

    /// Bytes moved in `dt` at this rate.
    pub fn bytes_in(self, dt: Nanos) -> f64 {
        self.as_bytes_per_sec() * dt.as_secs_f64()
    }

    /// The smaller of two rates.
    pub fn min(self, rhs: Bandwidth) -> Bandwidth {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}Gbps", self.as_gbps())
        } else if self.0 >= 1e6 {
            write!(f, "{:.2}Mbps", self.0 / 1e6)
        } else {
            write!(f, "{:.0}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::kib(32).as_u64(), 32 * 1024);
        assert_eq!(Bytes::mib(8).as_u64(), 8 << 20);
        assert_eq!(Bytes::gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn byte_split_distributes_remainder() {
        let b = Bytes(10);
        let parts: Vec<_> = (0..3).map(|i| b.split(3, i)).collect();
        assert_eq!(parts, vec![Bytes(4), Bytes(3), Bytes(3)]);
        let total: Bytes = parts.into_iter().sum();
        assert_eq!(total, b);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn byte_split_rejects_zero_parts() {
        Bytes(1).split(0, 0);
    }

    #[test]
    fn transfer_time_exact() {
        // 1 GiB at 8 Gbps = 2^30 bytes * 8 bits / 8e9 bps = 1.073741824 s.
        let t = Bandwidth::gbps(8.0).transfer_time(Bytes::gib(1));
        assert_eq!(t, Nanos(1_073_741_824));
    }

    #[test]
    fn transfer_time_zero_rate_is_never() {
        assert_eq!(Bandwidth::ZERO.transfer_time(Bytes(1)), Nanos::MAX);
        assert_eq!(Bandwidth::ZERO.transfer_time(Bytes::ZERO), Nanos::ZERO);
    }

    #[test]
    fn bandwidth_conversions() {
        let b = Bandwidth::gbps(100.0);
        assert!((b.as_bytes_per_sec() - 12.5e9).abs() < 1.0);
        assert!((b.as_gbytes_per_sec() - 12.5).abs() < 1e-9);
        let c = Bandwidth::gibytes_per_sec(12.5);
        assert!((c.as_gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_in_interval() {
        let b = Bandwidth::gbps(8.0); // 1e9 bytes/s
        assert!((b.bytes_in(Nanos::from_millis(1)) - 1e6).abs() < 1e-6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bytes::kib(512)), "512KB");
        assert_eq!(format!("{}", Bytes::mib(128)), "128MB");
        assert_eq!(format!("{}", Bandwidth::gbps(50.0)), "50.00Gbps");
    }

    #[test]
    fn sub_saturates_at_zero() {
        let a = Bandwidth::gbps(1.0);
        let b = Bandwidth::gbps(2.0);
        assert_eq!((a - b).as_bps(), 0.0);
        assert_eq!(Bytes(1) - Bytes(2), Bytes::ZERO);
    }
}
