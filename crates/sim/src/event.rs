//! Deterministic time-ordered event queue.
//!
//! A thin wrapper over a binary heap that orders events by `(time, seq)`
//! where `seq` is a monotone push counter. Two events scheduled for the same
//! virtual instant therefore fire in the order they were scheduled,
//! independent of heap internals — the property that makes every experiment
//! in this repository reproducible.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of `(time, payload)` with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Nanos, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// The firing time of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, E)> {
        if self.heap.peek().is_some_and(|e| e.time <= now) {
            let e = self.heap.pop().expect("peeked entry present");
            Some((e.time, e.payload))
        } else {
            None
        }
    }

    /// Pop the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// An [`EventQueue`] split into per-rack shards.
///
/// Each shard is its own `(time, seq)` min-queue; `next_time` is a k-way
/// min over the shard heads and `pop_due` drains the shards in ascending
/// shard order at each due instant. Determinism: embedders that need a
/// total order across shards must not depend on cross-shard FIFO — within
/// the simulator the event payload is a bare wake tick, so the pop order
/// between same-instant events on different shards is unobservable, and
/// within one shard the FIFO tie-break is exactly the single-queue one.
/// With one shard this *is* the single-queue oracle, field for field.
pub struct ShardedEventQueue<E> {
    shards: Vec<EventQueue<E>>,
}

impl<E> Default for ShardedEventQueue<E> {
    fn default() -> Self {
        Self::new(1)
    }
}

impl<E> ShardedEventQueue<E> {
    /// A queue with `n` shards (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        ShardedEventQueue {
            shards: (0..n.max(1)).map(|_| EventQueue::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Re-shard to `n` queues: pending events are drained in global
    /// `(time, seq-per-shard)` order and re-scheduled round-robin-free —
    /// everything lands on shard 0 and the embedder re-routes future
    /// events by its own attribution. (Pending events keep their firing
    /// times, so observable behaviour is unchanged.)
    pub fn set_shards(&mut self, n: usize) {
        let n = n.max(1);
        if n == self.shards.len() {
            return;
        }
        let mut pending: Vec<(Nanos, E)> = Vec::new();
        for shard in &mut self.shards {
            while let Some(e) = shard.pop() {
                pending.push(e);
            }
        }
        pending.sort_by_key(|(t, _)| *t);
        self.shards = (0..n).map(|_| EventQueue::new()).collect();
        for (t, payload) in pending {
            self.shards[0].schedule(t, payload);
        }
    }

    /// Schedule `payload` at `at` on `shard` (out-of-range shards clamp
    /// to 0, the shared/global bucket).
    pub fn schedule_on(&mut self, shard: usize, at: Nanos, payload: E) {
        let shard = if shard < self.shards.len() { shard } else { 0 };
        self.shards[shard].schedule(at, payload);
    }

    /// Earliest firing time across every shard head — the k-way min that
    /// replaces the global heap peek.
    pub fn next_time(&self) -> Option<Nanos> {
        self.shards.iter().filter_map(EventQueue::next_time).min()
    }

    /// Pop one due event, scanning shards in ascending order. Returns
    /// the globally earliest due event's time (ties resolved to the
    /// lowest shard — deterministic, and unobservable when payloads are
    /// bare wake ticks).
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, E)> {
        let best = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.next_time().map(|t| (t, i)))
            .min()?;
        if best.0 > now {
            return None;
        }
        self.shards[best.1].pop_due(now)
    }

    /// Total pending events across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EventQueue::len).sum()
    }

    /// Whether no events are pending on any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EventQueue::is_empty)
    }

    /// Drop every pending event on every shard.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), "c");
        q.schedule(Nanos(10), "a");
        q.schedule(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), ());
        q.schedule(Nanos(20), ());
        assert_eq!(q.pop_due(Nanos(5)), None);
        assert_eq!(q.pop_due(Nanos(10)), Some((Nanos(10), ())));
        assert_eq!(q.pop_due(Nanos(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(Nanos(42), ());
        assert_eq!(q.next_time(), Some(Nanos(42)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_next_time_is_kway_min() {
        let mut q: ShardedEventQueue<()> = ShardedEventQueue::new(4);
        assert_eq!(q.next_time(), None);
        q.schedule_on(2, Nanos(30), ());
        q.schedule_on(0, Nanos(50), ());
        assert_eq!(q.next_time(), Some(Nanos(30)), "min over shard heads");
        q.schedule_on(3, Nanos(10), ());
        assert_eq!(q.next_time(), Some(Nanos(10)));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn sharded_pop_due_drains_globally_earliest_first() {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(3);
        q.schedule_on(1, Nanos(20), 1);
        q.schedule_on(2, Nanos(10), 2);
        q.schedule_on(0, Nanos(30), 0);
        assert_eq!(q.pop_due(Nanos(5)), None, "nothing due yet");
        assert_eq!(q.pop_due(Nanos(100)), Some((Nanos(10), 2)));
        assert_eq!(q.pop_due(Nanos(100)), Some((Nanos(20), 1)));
        assert_eq!(q.pop_due(Nanos(100)), Some((Nanos(30), 0)));
        assert_eq!(q.pop_due(Nanos(100)), None);
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_same_instant_ties_resolve_to_lowest_shard() {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(3);
        q.schedule_on(2, Nanos(10), 2);
        q.schedule_on(1, Nanos(10), 1);
        assert_eq!(q.pop_due(Nanos(10)), Some((Nanos(10), 1)));
        assert_eq!(q.pop_due(Nanos(10)), Some((Nanos(10), 2)));
    }

    #[test]
    fn sharded_out_of_range_shard_clamps_to_global() {
        let mut q: ShardedEventQueue<()> = ShardedEventQueue::new(2);
        q.schedule_on(99, Nanos(5), ());
        assert_eq!(q.next_time(), Some(Nanos(5)));
        assert_eq!(q.pop_due(Nanos(5)), Some((Nanos(5), ())));
    }

    #[test]
    fn reshard_keeps_pending_events() {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(1);
        q.schedule_on(0, Nanos(20), 2);
        q.schedule_on(0, Nanos(10), 1);
        q.set_shards(4);
        assert_eq!(q.len(), 2, "pending events survive the reshard");
        assert_eq!(q.pop_due(Nanos(100)), Some((Nanos(10), 1)));
        assert_eq!(q.pop_due(Nanos(100)), Some((Nanos(20), 2)));
    }
}
