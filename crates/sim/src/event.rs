//! Deterministic time-ordered event queue.
//!
//! A thin wrapper over a binary heap that orders events by `(time, seq)`
//! where `seq` is a monotone push counter. Two events scheduled for the same
//! virtual instant therefore fire in the order they were scheduled,
//! independent of heap internals — the property that makes every experiment
//! in this repository reproducible.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of `(time, payload)` with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Nanos, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// The firing time of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, E)> {
        if self.heap.peek().is_some_and(|e| e.time <= now) {
            let e = self.heap.pop().expect("peeked entry present");
            Some((e.time, e.payload))
        } else {
            None
        }
    }

    /// Pop the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), "c");
        q.schedule(Nanos(10), "a");
        q.schedule(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), ());
        q.schedule(Nanos(20), ());
        assert_eq!(q.pop_due(Nanos(5)), None);
        assert_eq!(q.pop_due(Nanos(10)), Some((Nanos(10), ())));
        assert_eq!(q.pop_due(Nanos(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(Nanos(42), ());
        assert_eq!(q.next_time(), Some(Nanos(42)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
