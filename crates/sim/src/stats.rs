//! Summary statistics for experiment reporting.
//!
//! The paper reports means with 95th-percentile intervals (Figures 6, 8, 9)
//! and CDFs (Figure 11). [`Summary`] provides the corresponding estimators
//! over a sample vector; [`cdf_points`] produces plot-ready CDF series.

/// Descriptive statistics over a set of `f64` samples.
#[derive(Clone, Debug)]
pub struct Summary {
    sorted: Vec<f64>,
}

impl Summary {
    /// Build from samples (order irrelevant; NaNs are rejected).
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "summary over NaN samples"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Summary { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean (0 for the empty set).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Linear-interpolated quantile, `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let n = self.sorted.len();
        if n == 0 {
            return 0.0;
        }
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub fn std_dev(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.sorted.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }

    /// The `(p5, p95)` interval — the "95% percentile intervals" shading of
    /// the paper's figures.
    pub fn p95_interval(&self) -> (f64, f64) {
        (self.quantile(0.05), self.quantile(0.95))
    }

    /// One-line rendering: `mean [p5, p95] (n)`.
    pub fn brief(&self) -> String {
        let (lo, hi) = self.p95_interval();
        format!(
            "{:.3} [{:.3}, {:.3}] (n={})",
            self.mean(),
            lo,
            hi,
            self.len()
        )
    }
}

/// Empirical CDF points `(value, fraction ≤ value)` for plotting, one point
/// per sample (Figure 11 style).
pub fn cdf_points(samples: impl IntoIterator<Item = f64>) -> Vec<(f64, f64)> {
    let s = Summary::new(samples);
    let n = s.len();
    s.sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Geometric mean (used for averaging speedup ratios).
pub fn geo_mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "geo_mean of empty set");
    assert!(samples.iter().all(|&x| x > 0.0), "geo_mean needs positives");
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.median(), 2.5);
        assert!((s.std_dev() - 1.2909944).abs() < 1e-6);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::new([0.0, 10.0]);
        assert_eq!(s.quantile(0.25), 2.5);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 10.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::new([]);
        assert!(e.is_empty());
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.quantile(0.5), 0.0);
        let one = Summary::new([7.0]);
        assert_eq!(one.quantile(0.99), 7.0);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new([f64::NAN]);
    }

    #[test]
    fn p95_interval_brackets_bulk() {
        let s = Summary::new((0..=100).map(f64::from));
        let (lo, hi) = s.p95_interval();
        assert_eq!(lo, 5.0);
        assert_eq!(hi, 95.0);
        assert!(s.brief().contains("n=101"));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let pts = cdf_points([3.0, 1.0, 2.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn geo_mean_of_ratios() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }
}
