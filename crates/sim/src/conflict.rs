//! Conflict-set construction for parallel wave scheduling.
//!
//! A scheduler round holds a set of ready engines. Engines that share no
//! watched resource cannot observe each other's effects within the round,
//! so their `progress` calls commute: the pool may execute them
//! concurrently and merge the buffered results in slot order without the
//! digest moving. This module builds that partition: the ready set, in
//! slot order, is split into **waves**, each wave a list of **groups**
//! whose declared [`Footprint`]s are pairwise disjoint. Groups within a
//! wave are safe to run on separate workers; an engine declaring
//! [`Footprint::Exclusive`] (the conservative default — it may touch
//! anything) acts as a barrier: it closes the current wave and runs alone.
//!
//! The partition is *advisory by construction*: the runtime pool keeps
//! executing engine bodies in exact slot order (see
//! `RuntimePool::poll_ready`), so a wrong footprint can never corrupt a
//! digest — it only mis-reports achievable parallelism. The proptest
//! battery in this module pins the structural invariants the executor and
//! the stats rely on.

use crate::waker::ResourceId;
use std::collections::HashMap;

/// The resources an engine may touch in one `progress` call — its
/// conflict footprint, declared by [`crate::Engine::footprint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Footprint {
    /// May touch anything (the safe default): conflicts with every other
    /// engine and always runs alone in its own wave.
    Exclusive,
    /// Touches at most these resources: conflicts exactly with engines
    /// whose footprints intersect it. An empty list conflicts with
    /// nothing.
    Resources(Vec<ResourceId>),
}

/// One wave of a round: groups of engine slots whose footprints are
/// pairwise disjoint across groups. Groups (and the slots inside them)
/// are in ascending slot order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Wave {
    /// Concurrent groups; each group's members run in slot order.
    pub groups: Vec<Vec<usize>>,
}

impl Wave {
    /// Total engines in the wave.
    pub fn len(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Whether the wave holds no engines.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Size of the largest group.
    pub fn max_group(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Partition `entries` — `(slot, footprint)` in ascending slot order —
/// into waves of non-conflicting groups.
///
/// Greedy and deterministic: slots are taken in order; a slot whose
/// footprint intersects existing groups joins (and merges) them, a
/// disjoint slot opens a new group in the current wave, and an
/// [`Footprint::Exclusive`] slot closes the wave and claims one of its
/// own. Waves therefore respect slot order globally: every slot in wave
/// *k* precedes every slot in wave *k+1*.
pub fn partition(entries: &[(usize, Footprint)]) -> Vec<Wave> {
    let mut waves: Vec<Wave> = Vec::new();
    // Current wave state: groups + resource → group index.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut owner: HashMap<ResourceId, usize> = HashMap::new();
    let flush = |groups: &mut Vec<Vec<usize>>,
                 owner: &mut HashMap<ResourceId, usize>,
                 waves: &mut Vec<Wave>| {
        if !groups.is_empty() {
            waves.push(Wave {
                groups: std::mem::take(groups),
            });
        }
        owner.clear();
    };
    for (slot, fp) in entries {
        match fp {
            Footprint::Exclusive => {
                flush(&mut groups, &mut owner, &mut waves);
                waves.push(Wave {
                    groups: vec![vec![*slot]],
                });
            }
            Footprint::Resources(rs) => {
                // Groups this slot's footprint touches, ascending.
                let mut hit: Vec<usize> = rs.iter().filter_map(|r| owner.get(r).copied()).collect();
                hit.sort_unstable();
                hit.dedup();
                let target = match hit.first().copied() {
                    None => {
                        groups.push(Vec::new());
                        groups.len() - 1
                    }
                    Some(g) => g,
                };
                // Merge every other hit group into the target (descending,
                // so pending `hit` indices stay valid). Members of both
                // groups precede `slot` and each group is slot-sorted, so
                // a sorted merge keeps the invariant.
                for &g in hit.iter().skip(1).rev() {
                    let moved = std::mem::take(&mut groups[g]);
                    let dst = &mut groups[target];
                    let mut merged = Vec::with_capacity(dst.len() + moved.len());
                    let (mut a, mut b) = (dst.iter().peekable(), moved.iter().peekable());
                    while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
                        if x < y {
                            merged.push(x);
                            a.next();
                        } else {
                            merged.push(y);
                            b.next();
                        }
                    }
                    merged.extend(a.copied());
                    merged.extend(b.copied());
                    *dst = merged;
                    groups.remove(g);
                    // Re-point resources owned by the absorbed group and
                    // account for the index shift from the removal.
                    for v in owner.values_mut() {
                        if *v == g {
                            *v = target;
                        } else if *v > g {
                            *v -= 1;
                        }
                    }
                }
                groups[target].push(*slot);
                for r in rs {
                    owner.insert(*r, target);
                }
            }
        }
    }
    flush(&mut groups, &mut owner, &mut waves);
    waves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ResourceId {
        ResourceId::new(1, i)
    }

    fn on(rs: &[u32]) -> Footprint {
        Footprint::Resources(rs.iter().map(|&i| r(i)).collect())
    }

    #[test]
    fn disjoint_footprints_share_a_wave() {
        let waves = partition(&[(0, on(&[0])), (1, on(&[1])), (2, on(&[2]))]);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].groups, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(waves[0].max_group(), 1);
    }

    #[test]
    fn shared_resource_joins_groups() {
        let waves = partition(&[(0, on(&[0])), (1, on(&[1])), (2, on(&[0, 1]))]);
        assert_eq!(waves.len(), 1);
        // Slot 2 bridges both groups: they merge, slot-ordered.
        assert_eq!(waves[0].groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn exclusive_engine_closes_the_wave() {
        let waves = partition(&[
            (0, on(&[0])),
            (1, Footprint::Exclusive),
            (2, on(&[0])),
            (3, on(&[1])),
        ]);
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0].groups, vec![vec![0]]);
        assert_eq!(waves[1].groups, vec![vec![1]]);
        assert_eq!(waves[2].groups, vec![vec![2], vec![3]]);
    }

    #[test]
    fn empty_footprint_conflicts_with_nothing() {
        let waves = partition(&[(0, on(&[])), (1, on(&[])), (2, on(&[5]))]);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].groups.len(), 3);
    }

    #[test]
    fn empty_input_yields_no_waves() {
        assert!(partition(&[]).is_empty());
    }

    /// Structural invariants shared with the proptest battery: `waves` is
    /// a valid partition of `entries` with no cross-group resource
    /// sharing inside a wave and slot order preserved everywhere.
    pub(crate) fn check_invariants(entries: &[(usize, Footprint)], waves: &[Wave]) {
        // Every slot appears exactly once, in ascending global order.
        let flat: Vec<usize> = waves
            .iter()
            .flat_map(|w| {
                let mut slots: Vec<usize> = w.groups.iter().flatten().copied().collect();
                slots.sort_unstable();
                slots
            })
            .collect();
        let expect: Vec<usize> = entries.iter().map(|(s, _)| *s).collect();
        assert_eq!(flat, expect, "waves must partition the input in order");
        let fp: HashMap<usize, &Footprint> = entries.iter().map(|(s, f)| (*s, f)).collect();
        for w in waves {
            for g in &w.groups {
                assert!(!g.is_empty(), "no empty groups");
                assert!(g.windows(2).all(|p| p[0] < p[1]), "groups slot-ordered");
            }
            // Exclusive ⇒ alone in its wave.
            let has_exclusive = w
                .groups
                .iter()
                .flatten()
                .any(|s| matches!(fp[s], Footprint::Exclusive));
            if has_exclusive {
                assert_eq!(w.len(), 1, "exclusive engines run alone");
            }
            // No two groups in one wave share a watched resource.
            let mut seen: HashMap<ResourceId, usize> = HashMap::new();
            for (gi, g) in w.groups.iter().enumerate() {
                for s in g {
                    if let Footprint::Resources(rs) = fp[s] {
                        for r in rs {
                            if let Some(&prev) = seen.get(r) {
                                assert_eq!(
                                    prev, gi,
                                    "resource {r:?} watched from two groups of one wave"
                                );
                            } else {
                                seen.insert(*r, gi);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn merge_chain_keeps_invariants() {
        let entries = vec![
            (0, on(&[0])),
            (1, on(&[1])),
            (2, on(&[2])),
            (3, on(&[1, 2])),
            (4, on(&[3])),
            (5, on(&[0, 3])),
            (6, Footprint::Exclusive),
            (7, on(&[0])),
        ];
        let waves = partition(&entries);
        check_invariants(&entries, &waves);
        // 0..=5 collapse into two merged groups then one wave; 6 alone; 7 last.
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0].groups, vec![vec![0, 4, 5], vec![1, 2, 3]]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_resources() -> impl Strategy<Value = Footprint> {
            proptest::collection::vec(0u32..12, 0..4).prop_map(|rs| {
                Footprint::Resources(rs.into_iter().map(|i| ResourceId::new(1, i)).collect())
            })
        }

        fn arb_footprint() -> impl Strategy<Value = Footprint> {
            // The vendored stub's union picks arms uniformly; three
            // resource arms to one exclusive keeps barriers occasional.
            prop_oneof![
                Just(Footprint::Exclusive),
                arb_resources(),
                arb_resources(),
                arb_resources(),
            ]
        }

        proptest! {
            #[test]
            fn partition_is_valid(fps in proptest::collection::vec(arb_footprint(), 0..40)) {
                let entries: Vec<(usize, Footprint)> =
                    fps.into_iter().enumerate().collect();
                let waves = partition(&entries);
                check_invariants(&entries, &waves);
            }

            #[test]
            fn partition_is_deterministic(
                fps in proptest::collection::vec(arb_footprint(), 0..30)
            ) {
                let entries: Vec<(usize, Footprint)> =
                    fps.into_iter().enumerate().collect();
                prop_assert_eq!(partition(&entries), partition(&entries));
            }
        }
    }
}
