//! Deterministic worker pool for the parallel simulation paths.
//!
//! The paper's service executes its engines on "a pool of runtimes, each
//! corresponding to a kernel thread". Under virtual time the scheduler
//! must stay byte-deterministic, so parallelism is only admitted where it
//! is *invisible*: batches of pure jobs whose results are merged back in
//! job-index order ([`Workers::run`]), and engines that progress against
//! a shared immutable context and hand their world-effects back as data
//! for a slot-ordered merge ([`ParSet`]). Both shapes produce bit-identical
//! results at any worker count — including 1, which runs inline on the
//! calling thread with no pool at all.
//!
//! The max-min component solves in `mccs-netsim` ride [`Workers::run`]
//! (each connected component is an independent pure allocation problem);
//! the runtime pool in [`crate::engine`] uses the same worker count to
//! wave-partition its ready set (see `crate::conflict`).

use crate::engine::Poll;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Times an environment knob held an out-of-range value (`0`) that was
/// clamped into range. Deliberately a process-wide gauge, not a panic:
/// `MCCS_SIM_WORKERS=0` or `MCCS_SIM_SHARDS=0` is a configuration
/// mistake, but a recoverable one — the clamp keeps the run valid and
/// the counter keeps the mistake visible to harnesses and tests.
static ENV_CLAMP_WARNINGS: AtomicU64 = AtomicU64::new(0);

/// How many environment-knob values have been clamped so far in this
/// process (see [`parse_workers`] / [`parse_shards`]).
pub fn env_clamp_warnings() -> u64 {
    ENV_CLAMP_WARNINGS.load(Ordering::Relaxed)
}

/// Parse a count knob: absent/empty/unparsable falls back to `default`
/// silently (the knob was not set to anything meaningful), but an
/// *explicit* `0` is an out-of-range request — it clamps to 1 and
/// returns `clamped = true` so the caller can warn.
fn parse_count(raw: Option<&str>, default: usize) -> (usize, bool) {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(0) => (1, true),
        Some(n) => (n, false),
        None => (default, false),
    }
}

/// Parse a `MCCS_SIM_WORKERS`-style value. Pure and testable; the
/// process-wide readers below layer the warning counter on top.
pub fn parse_workers(raw: Option<&str>) -> (usize, bool) {
    parse_count(raw, 1)
}

/// Parse a `MCCS_SIM_SHARDS`-style value. `0` is *not* the auto
/// sentinel here — auto is expressed by leaving the variable unset —
/// so an explicit `0` clamps to 1 (the global single-shard oracle)
/// with a warning, the same validation [`parse_workers`] applies.
pub fn parse_shards(raw: Option<&str>) -> (Option<usize>, bool) {
    match raw {
        None => (None, false),
        some => {
            let (n, clamped) = parse_count(some, 1);
            (Some(n), clamped)
        }
    }
}

fn note_clamp(var: &str, value: usize) {
    ENV_CLAMP_WARNINGS.fetch_add(1, Ordering::Relaxed);
    eprintln!("warning: {var}=0 is out of range; clamped to {value}");
}

/// Worker count from the `MCCS_SIM_WORKERS` environment variable
/// (absent, empty or unparsable = 1 = every parallel path sequential;
/// an explicit `0` clamps to 1 and bumps [`env_clamp_warnings`]).
/// Read once per pool by [`crate::RuntimePool`] and `mccs-netsim`.
pub fn workers_from_env() -> usize {
    let raw = std::env::var("MCCS_SIM_WORKERS").ok();
    let (n, clamped) = parse_workers(raw.as_deref());
    if clamped {
        note_clamp("MCCS_SIM_WORKERS", n);
    }
    n
}

/// Shard-count request from the environment: `MCCS_SIM_SHARDED=0`
/// forces the global single-shard oracle, `MCCS_SIM_SHARDS=n` pins an
/// explicit count (0 clamps to 1 with a warning, like the worker knob),
/// and neither being set returns `None` — the embedder picks its
/// topology-derived default (one shard per rack bucket).
pub fn shards_from_env() -> Option<usize> {
    if std::env::var_os("MCCS_SIM_SHARDED").is_some_and(|v| v == "0") {
        return Some(1);
    }
    let raw = std::env::var("MCCS_SIM_SHARDS").ok();
    let (n, clamped) = parse_shards(raw.as_deref());
    if clamped {
        note_clamp("MCCS_SIM_SHARDS", 1);
    }
    n
}

/// A fixed-size worker pool executing batches of independent jobs with a
/// deterministic, index-ordered merge.
///
/// `Workers` is intentionally stateless between batches (threads are
/// scoped per batch): virtual-time simulations call it at step
/// boundaries, where predictable teardown beats keeping idle threads
/// parked, and scoped threads let jobs borrow the caller's data without
/// `'static` bounds.
#[derive(Clone, Debug)]
pub struct Workers {
    n: usize,
}

impl Workers {
    /// A pool of `n` workers. `n == 0` is clamped to 1; `n == 1` means
    /// every batch runs inline on the calling thread (bit-for-bit the
    /// sequential path, trivially).
    pub fn new(n: usize) -> Self {
        Workers { n: n.max(1) }
    }

    /// Worker count.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Run `jobs` invocations of `f` (by job index) and return the results
    /// in job-index order. `f` must be a pure function of its index and
    /// captured state: results are merged by index, so the outcome is
    /// independent of which worker ran which job and in what order.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.n == 1 || jobs <= 1 {
            return (0..jobs).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(jobs));
        let threads = self.n.min(jobs);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let out = f(i);
                    done.lock().expect("worker poisoned").push((i, out));
                });
            }
        });
        let mut done = done.into_inner().expect("worker poisoned");
        done.sort_by_key(|&(i, _)| i);
        assert_eq!(done.len(), jobs, "every job must report exactly once");
        done.into_iter().map(|(_, t)| t).collect()
    }
}

/// An engine that can progress on a worker thread: it reads the shared
/// context immutably, mutates only itself, and returns the effects it
/// wants applied to the context as data. The caller applies effects in
/// slot order, so a parallel wave is observably identical to polling the
/// same engines sequentially — the deterministic-merge half of the
/// parallel-executor contract (the conflict partition in
/// [`crate::conflict`] is the other half).
pub trait ParEngine<Cx: ?Sized, E>: Send {
    /// Advance against the shared context; effects are returned, not
    /// applied.
    fn progress_par(&mut self, cx: &Cx) -> (Poll, Vec<E>);

    /// Diagnostic label.
    fn name(&self) -> String {
        "par-engine".to_owned()
    }
}

/// A set of [`ParEngine`]s driven in waves: every live engine progresses
/// concurrently against `&Cx`, then the buffered effects are applied in
/// slot order on the calling thread. Wall-clock parallel, byte-identical
/// to the sequential schedule at any worker count.
pub struct ParSet<Cx: ?Sized, E> {
    engines: Vec<Option<Box<dyn ParEngine<Cx, E>>>>,
}

impl<Cx: ?Sized, E> Default for ParSet<Cx, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Cx: ?Sized, E> ParSet<Cx, E> {
    /// An empty set.
    pub fn new() -> Self {
        ParSet {
            engines: Vec::new(),
        }
    }

    /// Add an engine; returns its slot index.
    pub fn spawn(&mut self, engine: Box<dyn ParEngine<Cx, E>>) -> usize {
        self.engines.push(Some(engine));
        self.engines.len() - 1
    }

    /// Live (unfinished) engines.
    pub fn live(&self) -> usize {
        self.engines.iter().flatten().count()
    }

    /// Run one wave: every live engine progresses concurrently on
    /// `workers`, then effects apply through `apply` in slot order.
    /// Returns the number of engines that progressed or finished.
    pub fn wave<F>(&mut self, cx: &mut Cx, workers: &Workers, mut apply: F) -> usize
    where
        Cx: Sync,
        E: Send,
        F: FnMut(&mut Cx, E),
    {
        let slots: Vec<usize> = self
            .engines
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| i))
            .collect();
        let results = {
            // Each job gets exclusive &mut access to exactly one engine
            // (via its cell) and a shared view of the context.
            let mut wave: Vec<&mut Box<dyn ParEngine<Cx, E>>> =
                self.engines.iter_mut().filter_map(|e| e.as_mut()).collect();
            let shared: &Cx = cx;
            let cells: Vec<Mutex<&mut Box<dyn ParEngine<Cx, E>>>> =
                wave.iter_mut().map(|e| Mutex::new(&mut **e)).collect();
            workers.run(cells.len(), |i| {
                let mut engine = cells[i].lock().expect("engine cell poisoned");
                engine.progress_par(shared)
            })
        };
        let mut moved = 0;
        for (slot, (poll, effects)) in slots.into_iter().zip(results) {
            for e in effects {
                apply(cx, e);
            }
            match poll {
                Poll::Progressed => moved += 1,
                Poll::Idle => {}
                Poll::Finished => {
                    self.engines[slot] = None;
                    moved += 1;
                }
            }
        }
        moved
    }

    /// Drive waves until one makes no progress.
    pub fn run_to_quiescence<F>(&mut self, cx: &mut Cx, workers: &Workers, mut apply: F) -> usize
    where
        Cx: Sync,
        E: Send,
        F: FnMut(&mut Cx, E),
    {
        let mut waves = 0;
        while self.wave(cx, workers, &mut apply) > 0 {
            waves += 1;
        }
        waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let w = Workers::new(4);
        // Jobs deliberately finish out of order (higher index = less work).
        let out = w.run(64, |i| {
            let mut acc = 0u64;
            for k in 0..(64 - i as u64) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }

    #[test]
    fn worker_count_is_invisible_in_results() {
        let job = |i: usize| -> u64 {
            let mut h = i as u64 ^ 0x9e3779b97f4a7c15;
            for _ in 0..100 {
                h = h.wrapping_mul(0xbf58476d1ce4e5b9) ^ (h >> 27);
            }
            h
        };
        let seq = Workers::new(1).run(97, job);
        for n in [2, 3, 8] {
            assert_eq!(seq, Workers::new(n).run(97, job), "workers={n}");
        }
    }

    #[test]
    fn zero_and_empty_edge_cases() {
        assert_eq!(Workers::new(0).count(), 1);
        let w = Workers::new(4);
        assert!(w.run(0, |_| 0u8).is_empty());
        assert_eq!(w.run(1, |i| i), vec![0]);
    }

    #[test]
    fn worker_knob_clamps_zero_with_a_warning() {
        // Absent / empty / garbage fall back silently; an explicit 0 is
        // a real (out-of-range) request and must be flagged.
        assert_eq!(parse_workers(None), (1, false));
        assert_eq!(parse_workers(Some("")), (1, false));
        assert_eq!(parse_workers(Some("eight")), (1, false));
        assert_eq!(parse_workers(Some(" 8 ")), (8, false));
        assert_eq!(parse_workers(Some("0")), (1, true));
    }

    #[test]
    fn shard_knob_gets_the_same_validation() {
        assert_eq!(parse_shards(None), (None, false));
        assert_eq!(parse_shards(Some("4")), (Some(4), false));
        assert_eq!(parse_shards(Some("0")), (Some(1), true));
        assert_eq!(parse_shards(Some("")), (Some(1), false));
    }

    /// A compute-heavy counter engine: hashes in progress_par, emits its
    /// contribution as an effect for the slot-ordered merge.
    struct Hasher {
        id: u64,
        left: u32,
    }

    impl ParEngine<Vec<u64>, u64> for Hasher {
        fn progress_par(&mut self, log: &Vec<u64>) -> (Poll, Vec<u64>) {
            if self.left == 0 {
                return (Poll::Finished, Vec::new());
            }
            self.left -= 1;
            // Read the shared context immutably; fold in our own id.
            let mut h = self.id ^ log.len() as u64;
            for _ in 0..2_000 {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(self.id);
            }
            (Poll::Progressed, vec![h])
        }
    }

    fn drive(workers: usize) -> Vec<u64> {
        let mut set: ParSet<Vec<u64>, u64> = ParSet::new();
        for id in 0..24 {
            set.spawn(Box::new(Hasher {
                id,
                left: 1 + (id % 5) as u32,
            }));
        }
        let mut log: Vec<u64> = Vec::new();
        let w = Workers::new(workers);
        set.run_to_quiescence(&mut log, &w, |log, e| log.push(e));
        assert_eq!(set.live(), 0);
        log
    }

    #[test]
    fn parallel_waves_match_sequential_byte_for_byte() {
        let seq = drive(1);
        assert!(!seq.is_empty());
        for n in [2, 8] {
            assert_eq!(seq, drive(n), "workers={n}");
        }
    }
}
