//! Virtual time.
//!
//! All simulated subsystems share a single virtual clock measured in integer
//! nanoseconds since the start of the experiment. [`Nanos`] is used both as
//! an absolute timestamp and as a duration; the arithmetic implementations
//! saturate on underflow so that latency subtraction near time zero is safe.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time (or a duration), in nanoseconds.
///
/// ```
/// use mccs_sim::Nanos;
/// let t = Nanos::from_micros(50) + Nanos::from_micros(30);
/// assert_eq!(t, Nanos::from_micros(80));
/// assert_eq!(t.as_secs_f64(), 80e-6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero / the zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time; used as "never" in schedulers.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero: durations are never
    /// negative in the simulator.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return Nanos::ZERO;
        }
        let ns = s * 1e9;
        // `u64::MAX as f64` rounds up, so compare with >= against 2^64.
        if ns >= 18_446_744_073_709_551_616.0 {
            Nanos::MAX
        } else {
            Nanos(ns.round() as u64)
        }
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// The earlier of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// The later of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Multiply a duration by a scalar factor, rounding to nanoseconds.
    pub fn mul_f64(self, factor: f64) -> Nanos {
        Nanos::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Nanos {
    /// Human-scaled rendering: picks ns/µs/ms/s by magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::INFINITY), Nanos::MAX);
        assert_eq!(Nanos::from_secs_f64(1e30), Nanos::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos(3) - Nanos(5), Nanos::ZERO);
        assert_eq!(Nanos::MAX + Nanos(1), Nanos::MAX);
        assert_eq!(Nanos(10).saturating_sub(Nanos(4)), Nanos(6));
    }

    #[test]
    fn ordering_and_min_max() {
        let a = Nanos::from_micros(3);
        let b = Nanos::from_micros(7);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Nanos(500)), "500ns");
        assert_eq!(format!("{}", Nanos::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", Nanos::from_millis(3)), "3.00ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(Nanos::from_secs(2).mul_f64(0.5), Nanos::from_secs(1));
    }

    #[test]
    fn sum_folds() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
