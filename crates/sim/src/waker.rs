//! Wake conditions and resource signalling for wake-driven scheduling.
//!
//! The naive [`crate::RuntimePool`] scheduler re-polls every live engine on
//! every pass until a whole pass is idle — O(engines × passes) per step even
//! when a single message moved. Real executors park idle tasks and wake them
//! through wakers; this module is the virtual-time equivalent. An engine
//! returning [`crate::Poll::Idle`] declares a [`Wake`] condition: a set of
//! [`ResourceId`]s (mailboxes, queues, flow-event channels — whatever the
//! embedder keys them to) plus an optional virtual-time deadline. The
//! embedding context implements [`WakeSource`] so the pool can collect the
//! resource signals raised since the last poll and translate them into
//! ready engines.
//!
//! Engines that do not (yet) declare wake conditions keep the default
//! [`Wake::Any`], which reproduces the naive semantics exactly: the engine
//! is re-polled once per scheduler pass whenever anything else progresses.

use crate::time::Nanos;

/// An opaque resource an engine can wait on. The embedder chooses the
/// encoding; [`ResourceId::new`] packs a 32-bit kind with a 32-bit index,
/// which is how the MCCS world keys its queues and channels.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ResourceId(pub u64);

impl ResourceId {
    /// Pack a resource kind and per-kind index into one id.
    pub const fn new(kind: u32, index: u32) -> Self {
        ResourceId(((kind as u64) << 32) | index as u64)
    }

    /// The kind half of the id.
    pub const fn kind(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The index half of the id.
    pub const fn index(self) -> u32 {
        self.0 as u32
    }
}

/// What must happen for a parked engine to be worth polling again.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Wake {
    /// Re-poll whenever anything in the pool progresses (naive semantics;
    /// the default for engines that have not been taught to declare their
    /// dependencies).
    #[default]
    Any,
    /// Poll again when any of `resources` is signalled, or when virtual
    /// time reaches `deadline` — whichever happens first. An empty
    /// resource set with no deadline parks the engine forever (it can
    /// still never progress, so this is behaviourally identical to the
    /// naive scheduler polling it Idle until the end of time).
    On {
        /// Resources whose signal readies the engine.
        resources: Vec<ResourceId>,
        /// Virtual time at which the engine becomes ready regardless.
        deadline: Option<Nanos>,
    },
}

impl Wake {
    /// Wake on any of the given resources, no deadline.
    pub fn on(resources: Vec<ResourceId>) -> Self {
        Wake::On {
            resources,
            deadline: None,
        }
    }

    /// Wake at a virtual-time deadline only.
    pub fn at(deadline: Nanos) -> Self {
        Wake::On {
            resources: Vec::new(),
            deadline: Some(deadline),
        }
    }

    /// Park forever (nothing can ready this engine again).
    pub fn never() -> Self {
        Wake::On {
            resources: Vec::new(),
            deadline: None,
        }
    }
}

/// Incremental builder for the common engine pattern "watch these queues,
/// and also wake me at the earliest of several timers".
#[derive(Clone, Debug, Default)]
pub struct WakeSet {
    resources: Vec<ResourceId>,
    deadline: Option<Nanos>,
}

impl WakeSet {
    /// An empty set (parks forever unless extended).
    pub fn new() -> Self {
        WakeSet::default()
    }

    /// Watch a resource.
    pub fn watch(&mut self, r: ResourceId) -> &mut Self {
        self.resources.push(r);
        self
    }

    /// Arm (or tighten) the deadline: the earliest deadline wins.
    pub fn deadline(&mut self, t: Nanos) -> &mut Self {
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(t),
            None => t,
        });
        self
    }

    /// Arm the deadline if `t` is present.
    pub fn deadline_opt(&mut self, t: Option<Nanos>) -> &mut Self {
        if let Some(t) = t {
            self.deadline(t);
        }
        self
    }

    /// Finish the build.
    pub fn build(self) -> Wake {
        Wake::On {
            resources: self.resources,
            deadline: self.deadline,
        }
    }
}

/// The side of the embedding context the wake-driven scheduler talks to:
/// the current virtual time (for deadline release) and the stream of
/// resource signals raised since the last drain (for waiter release).
///
/// Signals are level-less edge events: the context appends a
/// [`ResourceId`] whenever something becomes available on that resource
/// (a queue push, a flow completion, a health event). Duplicate signals
/// are fine — the pool dedupes when readying engines.
pub trait WakeSource {
    /// Current virtual time.
    fn now(&self) -> Nanos;

    /// Move every signal raised since the last drain into `into`
    /// (appending; the implementation clears its own buffer).
    fn drain_signals(&mut self, into: &mut Vec<ResourceId>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_id_packs_kind_and_index() {
        let r = ResourceId::new(7, 42);
        assert_eq!(r.kind(), 7);
        assert_eq!(r.index(), 42);
        assert_ne!(ResourceId::new(7, 42), ResourceId::new(8, 42));
        assert_ne!(ResourceId::new(7, 42), ResourceId::new(7, 43));
    }

    #[test]
    fn wake_set_keeps_earliest_deadline() {
        let mut ws = WakeSet::new();
        ws.watch(ResourceId::new(1, 0));
        ws.deadline(Nanos::from_micros(10));
        ws.deadline(Nanos::from_micros(5));
        ws.deadline_opt(None);
        ws.deadline_opt(Some(Nanos::from_micros(7)));
        let Wake::On {
            resources,
            deadline,
        } = ws.build()
        else {
            panic!("expected Wake::On")
        };
        assert_eq!(resources, vec![ResourceId::new(1, 0)]);
        assert_eq!(deadline, Some(Nanos::from_micros(5)));
    }

    #[test]
    fn wake_helpers() {
        assert_eq!(
            Wake::at(Nanos::from_micros(1)),
            Wake::On {
                resources: vec![],
                deadline: Some(Nanos::from_micros(1))
            }
        );
        assert_eq!(
            Wake::never(),
            Wake::On {
                resources: vec![],
                deadline: None
            }
        );
    }
}
