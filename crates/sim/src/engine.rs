//! Poll-based engines and cooperative runtimes.
//!
//! The paper (§5, "Internal engine scheduling") describes the MCCS service as
//! a set of *engines* — "designed similar to asynchronous futures in Rust" —
//! executed by a pool of *runtimes*, each corresponding to a kernel thread.
//! This module reproduces that structure in virtual time: an [`Engine`] is a
//! state machine advanced by [`Engine::progress`], and a [`RuntimePool`]
//! polls its engines until the whole pool is quiescent, exactly like a set
//! of executor threads draining ready futures before parking.
//!
//! The context type `Cx` is chosen by the embedder (the MCCS service uses a
//! `World` holding the simulated network, devices and IPC queues); this
//! crate stays agnostic of what engines act upon.

use std::fmt;

/// Identifies an engine within a [`RuntimePool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EngineId(pub u32);

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine#{}", self.0)
    }
}

/// Outcome of one `progress` call, mirroring future polling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Poll {
    /// The engine did some work; poll the pool again before sleeping.
    Progressed,
    /// Nothing to do right now; the engine is waiting on external input.
    Idle,
    /// The engine has completed and can be dropped from its runtime.
    Finished,
}

/// An asynchronously progressing component of the system.
///
/// `progress` must be non-blocking: do at most a bounded amount of work and
/// return. Engines communicate only through the shared context (mailboxes,
/// queues, simulated fabrics), never by direct reference to each other —
/// the same discipline the paper's service uses between its frontend, proxy
/// and transport engines.
pub trait Engine<Cx: ?Sized> {
    /// Advance the engine's state machine as far as currently possible.
    fn progress(&mut self, cx: &mut Cx) -> Poll;

    /// Diagnostic label.
    fn name(&self) -> String {
        "engine".to_owned()
    }
}

struct Slot<Cx: ?Sized> {
    id: EngineId,
    engine: Box<dyn Engine<Cx>>,
    finished: bool,
}

/// A pool of runtimes executing engines cooperatively.
///
/// In the paper each runtime is a kernel thread and engines may share or
/// dedicate runtimes; under virtual time the pool is a deterministic
/// round-robin poller, but the API keeps the runtime grouping so CPU-usage
/// accounting (engines per runtime) can be reported like the prototype's.
pub struct RuntimePool<Cx: ?Sized> {
    slots: Vec<Slot<Cx>>,
    next_id: u32,
    /// Total number of `progress` calls issued (for scheduler overhead stats).
    polls: u64,
}

impl<Cx: ?Sized> Default for RuntimePool<Cx> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Cx: ?Sized> RuntimePool<Cx> {
    /// An empty pool.
    pub fn new() -> Self {
        RuntimePool {
            slots: Vec::new(),
            next_id: 0,
            polls: 0,
        }
    }

    /// Add an engine; returns its id. The engine is polled starting with
    /// the next call to [`RuntimePool::poll_until_quiescent`].
    pub fn spawn(&mut self, engine: Box<dyn Engine<Cx>>) -> EngineId {
        let id = EngineId(self.next_id);
        self.next_id += 1;
        self.slots.push(Slot {
            id,
            engine,
            finished: false,
        });
        id
    }

    /// Number of live (non-finished) engines.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| !s.finished).count()
    }

    /// Cumulative number of `progress` calls.
    pub fn poll_count(&self) -> u64 {
        self.polls
    }

    /// Poll every live engine round-robin until a full pass makes no
    /// progress (every engine returns [`Poll::Idle`]), then reap finished
    /// engines. Returns the number of engines that finished during this
    /// call.
    ///
    /// Termination: each pass either observes progress (bounded by the
    /// engines' own state machines, which are driven by finite queues and
    /// a finite event horizon) or exits. A runaway engine that always
    /// claims progress trips the `pass_limit` safety valve with a panic,
    /// which in practice catches engine bugs immediately in tests.
    pub fn poll_until_quiescent(&mut self, cx: &mut Cx) -> usize {
        let pass_limit = 100_000;
        let mut passes = 0;
        loop {
            let mut any_progress = false;
            for slot in self.slots.iter_mut() {
                if slot.finished {
                    continue;
                }
                self.polls += 1;
                match slot.engine.progress(cx) {
                    Poll::Progressed => any_progress = true,
                    Poll::Idle => {}
                    Poll::Finished => {
                        slot.finished = true;
                        any_progress = true;
                    }
                }
            }
            if !any_progress {
                break;
            }
            passes += 1;
            assert!(
                passes < pass_limit,
                "engine pool failed to quiesce after {pass_limit} passes; \
                 an engine is spinning (always reporting progress)"
            );
        }
        let before = self.slots.len();
        self.slots.retain(|s| !s.finished);
        before - self.slots.len()
    }

    /// Names of live engines, for debugging deadlocks.
    pub fn live_names(&self) -> Vec<(EngineId, String)> {
        self.slots
            .iter()
            .filter(|s| !s.finished)
            .map(|s| (s.id, s.engine.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts down; progresses once per poll until it finishes.
    struct Countdown {
        left: u32,
    }

    impl Engine<u32> for Countdown {
        fn progress(&mut self, total: &mut u32) -> Poll {
            if self.left == 0 {
                return Poll::Finished;
            }
            self.left -= 1;
            *total += 1;
            Poll::Progressed
        }
        fn name(&self) -> String {
            format!("countdown({})", self.left)
        }
    }

    /// Waits until the shared counter reaches a threshold, then finishes —
    /// exercises inter-engine progress dependencies.
    struct WaitFor {
        threshold: u32,
    }

    impl Engine<u32> for WaitFor {
        fn progress(&mut self, total: &mut u32) -> Poll {
            if *total >= self.threshold {
                Poll::Finished
            } else {
                Poll::Idle
            }
        }
    }

    #[test]
    fn pool_runs_engines_to_completion() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(Countdown { left: 5 }));
        pool.spawn(Box::new(Countdown { left: 3 }));
        let mut total = 0;
        let finished = pool.poll_until_quiescent(&mut total);
        assert_eq!(finished, 2);
        assert_eq!(total, 8);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn idle_engines_wake_when_dependency_progresses() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        // The waiter is spawned FIRST so a naive single pass would see it
        // idle before the countdown runs; quiescence polling must re-poll it.
        pool.spawn(Box::new(WaitFor { threshold: 4 }));
        pool.spawn(Box::new(Countdown { left: 4 }));
        let mut total = 0;
        let finished = pool.poll_until_quiescent(&mut total);
        assert_eq!(finished, 2);
    }

    #[test]
    fn waiter_stays_live_without_input() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(WaitFor { threshold: 1 }));
        let mut total = 0;
        assert_eq!(pool.poll_until_quiescent(&mut total), 0);
        assert_eq!(pool.live(), 1);
        // External input arrives; the pool picks it up on the next poll.
        total = 1;
        assert_eq!(pool.poll_until_quiescent(&mut total), 1);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn ids_are_unique_and_names_reported() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        let a = pool.spawn(Box::new(Countdown { left: 1 }));
        let b = pool.spawn(Box::new(Countdown { left: 1 }));
        assert_ne!(a, b);
        let names = pool.live_names();
        assert_eq!(names.len(), 2);
        assert!(names[0].1.starts_with("countdown"));
    }

    #[test]
    #[should_panic(expected = "spinning")]
    fn spinning_engine_is_detected() {
        struct Spin;
        impl Engine<u32> for Spin {
            fn progress(&mut self, _: &mut u32) -> Poll {
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(Spin));
        pool.poll_until_quiescent(&mut 0);
    }
}
