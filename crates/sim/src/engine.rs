//! Poll-based engines and cooperative runtimes.
//!
//! The paper (§5, "Internal engine scheduling") describes the MCCS service as
//! a set of *engines* — "designed similar to asynchronous futures in Rust" —
//! executed by a pool of *runtimes*, each corresponding to a kernel thread.
//! This module reproduces that structure in virtual time: an [`Engine`] is a
//! state machine advanced by [`Engine::progress`], and a [`RuntimePool`]
//! drives its engines until the whole pool is quiescent, exactly like a set
//! of executor threads draining ready futures before parking.
//!
//! Two schedulers share that contract:
//!
//! * **Wake-driven** (default, [`RuntimePool::poll_ready`]): engines that
//!   return [`Poll::Idle`] declare a [`Wake`] condition — resources to
//!   watch, an optional virtual-time deadline — and are parked until a
//!   matching signal or the deadline readies them. Each scheduler call
//!   costs O(ready work), not O(live engines).
//! * **Naive round-robin** ([`RuntimePool::poll_until_quiescent`]): every
//!   live engine is re-polled every pass until a full pass is idle. Kept as
//!   the oracle the wake-driven scheduler is differentially tested against
//!   (`MCCS_SIM_NAIVE_POOL=1` flips the [`RuntimePool::poll`] dispatcher).
//!
//! The wake-driven scheduler is engineered to be *observably identical* to
//! the oracle, not merely equivalent in outcome: within one scheduler call
//! it runs rounds that mirror the naive passes (ready engines polled in
//! slot order; an engine woken by a lower-indexed engine still runs in the
//! same round, one woken by a higher-indexed engine waits for the next),
//! so engines perform their observable actions in exactly the same order
//! under both schedulers. The invariants this rests on — engines returning
//! `Idle` have no observable effect, and every idle→ready transition is
//! covered by a signal, a deadline, or [`Wake::Any`] — are enforced by the
//! digest-equivalence battery in the service crate.
//!
//! The context type `Cx` is chosen by the embedder (the MCCS service uses a
//! `World` holding the simulated network, devices and IPC queues); this
//! crate stays agnostic of what engines act upon.

use crate::conflict::{partition, Footprint};
use crate::waker::{ResourceId, Wake, WakeSource};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;

/// Identifies an engine within a [`RuntimePool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EngineId(pub u32);

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine#{}", self.0)
    }
}

/// Outcome of one `progress` call, mirroring future polling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Poll {
    /// The engine did some work; poll the pool again before sleeping.
    Progressed,
    /// Nothing to do right now; the engine is waiting on external input.
    Idle,
    /// The engine has completed and can be dropped from its runtime.
    Finished,
}

/// An asynchronously progressing component of the system.
///
/// `progress` must be non-blocking: do at most a bounded amount of work and
/// return. Engines communicate only through the shared context (mailboxes,
/// queues, simulated fabrics), never by direct reference to each other —
/// the same discipline the paper's service uses between its frontend, proxy
/// and transport engines.
///
/// An engine returning [`Poll::Idle`] must have had no observable effect in
/// that call: the wake-driven scheduler relies on idle polls being pure so
/// it can skip them entirely.
pub trait Engine<Cx: ?Sized> {
    /// Advance the engine's state machine as far as currently possible.
    fn progress(&mut self, cx: &mut Cx) -> Poll;

    /// What must happen for this engine to be worth polling again, asked
    /// immediately after `progress` returns [`Poll::Idle`]. The default —
    /// [`Wake::Any`] — reproduces naive scheduling for this engine (it is
    /// re-polled once per scheduler round whenever anything progresses),
    /// so unported engines stay correct, just not cheap.
    fn wake_when(&self, cx: &Cx) -> Wake {
        let _ = cx;
        Wake::Any
    }

    /// The resources this engine may touch (read *or* write) in one
    /// `progress` call — its conflict footprint for the parallel wave
    /// scheduler. The default, [`Footprint::Exclusive`], declares "may
    /// touch anything" and serializes the engine against every peer, so
    /// unported engines stay correct; engines that know their working
    /// set (their own queues, their GPU's fabric slots) declare it so
    /// the pool can group non-conflicting peers into the same wave.
    ///
    /// Footprints gate *grouping only*: the pool still applies engine
    /// effects in slot order (the deterministic merge), so a too-narrow
    /// footprint can mis-report achievable parallelism but can never
    /// change an observable digest.
    fn footprint(&self, cx: &Cx) -> Footprint {
        let _ = cx;
        Footprint::Exclusive
    }

    /// Diagnostic label.
    fn name(&self) -> String {
        "engine".to_owned()
    }
}

struct Slot<Cx: ?Sized> {
    id: EngineId,
    /// `None` once finished (the engine is dropped; the slot stays so
    /// indices held by the wake bookkeeping remain stable).
    engine: Option<Box<dyn Engine<Cx>>>,
    finished: bool,
    /// Bumped every (re-)park and unpark; a timer whose recorded epoch no
    /// longer matches is stale and discarded lazily.
    park_epoch: u64,
    /// Resources this slot is currently registered on (cleared on wake so
    /// waiter lists stay bounded by live registrations).
    registered: Vec<ResourceId>,
    /// Parked with [`Wake::Any`] (member of the pool's any-set).
    parked_any: bool,
    /// Spin-guard bookkeeping: polls issued during the current scheduler
    /// call (reset lazily via the call stamp).
    call_stamp: u64,
    call_polls: u32,
}

/// Polls one engine may receive within a single scheduler call before the
/// pool declares it (or its progress-reporting peers) stuck in a spin.
/// Matches the naive scheduler's pass limit: there, a spinning engine is
/// polled once per pass for `pass_limit` passes.
const SPIN_LIMIT: u32 = 100_000;

use crate::par::workers_from_env;

/// Per-kind dense waiter tables cover resource indices below this bound;
/// anything above spills into a map. Resource indices are engine/queue
/// ordinals in practice, so even a 10k-GPU world stays far under it.
const DENSE_WAITER_LIMIT: usize = 1 << 20;

/// `resource id → waiting slots`, arena-flattened. A [`ResourceId`] packs a
/// 32-bit kind with a 32-bit index; the handful of kinds each get a dense
/// `Vec` of waiter lists indexed by the index half (O(1) signal fan-out, no
/// hashing on the hot path), with a spill map for pathological indices.
#[derive(Default)]
struct WaiterTable {
    /// `(kind, index → waiter list)` in first-use order; scanned linearly
    /// (kind cardinality is tiny and fixed by the embedder).
    kinds: Vec<(u32, Vec<Vec<usize>>)>,
    /// Fallback for indices ≥ [`DENSE_WAITER_LIMIT`].
    spill: HashMap<u64, Vec<usize>>,
}

impl WaiterTable {
    fn push(&mut self, r: ResourceId, slot: usize) {
        let index = r.index() as usize;
        if index >= DENSE_WAITER_LIMIT {
            self.spill.entry(r.0).or_default().push(slot);
            return;
        }
        let pos = match self.kinds.iter().position(|(k, _)| *k == r.kind()) {
            Some(p) => p,
            None => {
                self.kinds.push((r.kind(), Vec::new()));
                self.kinds.len() - 1
            }
        };
        let lists = &mut self.kinds[pos].1;
        if index >= lists.len() {
            lists.resize_with(index + 1, Vec::new);
        }
        lists[index].push(slot);
    }

    /// Remove and return the whole waiter list of a signalled resource
    /// (empty if nobody registered).
    fn take(&mut self, r: ResourceId) -> Vec<usize> {
        let index = r.index() as usize;
        if index >= DENSE_WAITER_LIMIT {
            return self.spill.remove(&r.0).unwrap_or_default();
        }
        match self.kinds.iter_mut().find(|(k, _)| *k == r.kind()) {
            Some((_, lists)) if index < lists.len() => std::mem::take(&mut lists[index]),
            _ => Vec::new(),
        }
    }

    /// Drop one slot from a resource's waiter list (un-registration on
    /// wake; the list itself stays allocated for reuse).
    fn remove_slot(&mut self, r: ResourceId, slot: usize) {
        let index = r.index() as usize;
        if index >= DENSE_WAITER_LIMIT {
            if let Some(list) = self.spill.get_mut(&r.0) {
                list.retain(|&x| x != slot);
                if list.is_empty() {
                    self.spill.remove(&r.0);
                }
            }
            return;
        }
        if let Some((_, lists)) = self.kinds.iter_mut().find(|(k, _)| *k == r.kind()) {
            if let Some(list) = lists.get_mut(index) {
                list.retain(|&x| x != slot);
            }
        }
    }

    fn clear(&mut self) {
        for (_, lists) in &mut self.kinds {
            lists.clear();
        }
        self.spill.clear();
    }
}

/// A pool of runtimes executing engines cooperatively.
///
/// In the paper each runtime is a kernel thread and engines may share or
/// dedicate runtimes; under virtual time the pool is a deterministic
/// scheduler (wake-driven by default, round-robin as the oracle), but the
/// API keeps the runtime grouping so CPU-usage accounting (engines per
/// runtime) can be reported like the prototype's.
pub struct RuntimePool<Cx: ?Sized> {
    slots: Vec<Slot<Cx>>,
    next_id: u32,
    /// Cached count of non-finished engines (kept in sync on spawn/finish
    /// so `live()` is O(1) — it sits in run-loop conditions).
    live: usize,
    /// Use the naive round-robin oracle instead of the wake-driven
    /// scheduler when dispatching through [`RuntimePool::poll`].
    naive: bool,
    /// Total number of `progress` calls issued.
    polls: u64,
    /// `progress` calls that returned [`Poll::Idle`] (pure scheduler
    /// overhead — the "wasted poll" ratio both schedulers are compared on).
    wasted_polls: u64,
    /// Parked→ready transitions performed by the wake-driven scheduler.
    wakes: u64,
    /// Worker count for the wave scheduler (1 = today's purely
    /// sequential sweep; >1 partitions every round into conflict waves
    /// and merges per-group counters at the wave barrier).
    workers: usize,
    /// Conflict waves formed (workers > 1 only).
    waves: u64,
    /// Largest conflict group observed in any wave.
    max_group: u64,
    /// Monotone scheduler-call stamp (lazily resets per-slot spin guards).
    call_seq: u64,
    /// Engines to poll in the next round/call, ordered by slot index.
    ready: BTreeSet<usize>,
    /// Slots parked with [`Wake::Any`]; polled once per round like the
    /// naive scheduler would.
    any_parked: BTreeSet<usize>,
    /// resource id → slots registered on it (dense per-kind tables).
    waiters: WaiterTable,
    /// (deadline, park epoch, slot) min-heap; stale epochs discarded lazily.
    timers: BinaryHeap<Reverse<(crate::Nanos, u64, usize)>>,
    /// Scratch for draining context signals without reallocating.
    signal_scratch: Vec<ResourceId>,
    /// Slots that returned [`Poll::Progressed`] in the current pass/round
    /// (diagnostics for the spin panic).
    round_progressed: Vec<usize>,
    /// Wave-scheduler scratch: slot → dense conflict-group ordinal for
    /// the current round (workers > 1 only).
    group_of: HashMap<usize, usize>,
    /// Per-group `[polls, wasted]` tallies for the current round, folded
    /// into the pool counters at the wave barrier. The final entry is
    /// the catch-all for engines woken into the round mid-sweep.
    group_tally: Vec<[u64; 2]>,
}

impl<Cx: ?Sized> Default for RuntimePool<Cx> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Cx: ?Sized> RuntimePool<Cx> {
    /// An empty pool. The scheduler defaults to wake-driven unless the
    /// `MCCS_SIM_NAIVE_POOL` environment variable is set (to anything but
    /// `0`), which selects the round-robin oracle for differential runs.
    pub fn new() -> Self {
        let naive = std::env::var_os("MCCS_SIM_NAIVE_POOL").is_some_and(|v| v != "0");
        RuntimePool {
            slots: Vec::new(),
            next_id: 0,
            live: 0,
            naive,
            polls: 0,
            wasted_polls: 0,
            wakes: 0,
            workers: workers_from_env(),
            waves: 0,
            max_group: 0,
            call_seq: 0,
            ready: BTreeSet::new(),
            any_parked: BTreeSet::new(),
            waiters: WaiterTable::default(),
            timers: BinaryHeap::new(),
            signal_scratch: Vec::new(),
            round_progressed: Vec::new(),
            group_of: HashMap::new(),
            group_tally: Vec::new(),
        }
    }

    /// Select the scheduler explicitly (overrides the environment default).
    /// Switching to wake-driven re-readies every live engine so no parked
    /// state is stranded.
    pub fn set_naive(&mut self, naive: bool) {
        if self.naive == naive {
            return;
        }
        self.naive = naive;
        if !naive {
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if !slot.finished {
                    slot.park_epoch += 1;
                    slot.registered.clear();
                    slot.parked_any = false;
                    self.ready.insert(i);
                }
            }
            self.any_parked.clear();
            self.waiters.clear();
            self.timers.clear();
        }
    }

    /// Whether the naive round-robin oracle is selected.
    pub fn is_naive(&self) -> bool {
        self.naive
    }

    /// Add an engine; returns its id. The engine is polled starting with
    /// the next scheduler call.
    pub fn spawn(&mut self, engine: Box<dyn Engine<Cx>>) -> EngineId {
        let id = EngineId(self.next_id);
        self.next_id += 1;
        let index = self.slots.len();
        self.slots.push(Slot {
            id,
            engine: Some(engine),
            finished: false,
            park_epoch: 0,
            registered: Vec::new(),
            parked_any: false,
            call_stamp: 0,
            call_polls: 0,
        });
        self.live += 1;
        self.ready.insert(index);
        id
    }

    /// Number of live (non-finished) engines. O(1).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Cumulative number of `progress` calls.
    pub fn poll_count(&self) -> u64 {
        self.polls
    }

    /// Cumulative `progress` calls that returned [`Poll::Idle`].
    pub fn wasted_poll_count(&self) -> u64 {
        self.wasted_polls
    }

    /// Cumulative parked→ready transitions (wake-driven scheduler only;
    /// the oracle never parks, so this stays 0 there).
    pub fn wake_count(&self) -> u64 {
        self.wakes
    }

    /// Worker count the wave scheduler is configured for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Set the worker count (overrides the `MCCS_SIM_WORKERS` default).
    /// 1 selects the purely sequential sweep; values above 1 engage the
    /// conflict-wave partition with barrier-merged counters. Observable
    /// behaviour is identical at every setting by construction.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Conflict waves formed by the wave scheduler (0 until `workers > 1`).
    pub fn wave_count(&self) -> u64 {
        self.waves
    }

    /// Largest conflict group observed in any wave.
    pub fn max_group_size(&self) -> u64 {
        self.max_group
    }

    /// Drive the selected scheduler until the pool is quiescent. Returns
    /// the number of engines that finished during this call.
    pub fn poll(&mut self, cx: &mut Cx) -> usize
    where
        Cx: WakeSource,
    {
        if self.naive {
            // The oracle ignores wake signals; drain them so the context's
            // buffer cannot grow without bound over a long run.
            self.signal_scratch.clear();
            cx.drain_signals(&mut self.signal_scratch);
            self.signal_scratch.clear();
            self.poll_until_quiescent(cx)
        } else {
            self.poll_ready(cx)
        }
    }

    /// Poll every live engine round-robin until a full pass makes no
    /// progress (every engine returns [`Poll::Idle`]). Returns the number
    /// of engines that finished during this call.
    ///
    /// This is the naive oracle scheduler: O(live engines) per pass no
    /// matter how little happened. [`RuntimePool::poll`] dispatches here
    /// only when naive mode is selected, but the method stays public so
    /// differential tests can drive it directly.
    ///
    /// Termination: each pass either observes progress (bounded by the
    /// engines' own state machines, which are driven by finite queues and
    /// a finite event horizon) or exits. A runaway engine that always
    /// claims progress trips the `pass_limit` safety valve with a panic
    /// naming the engines still reporting progress, which in practice
    /// catches engine bugs immediately in tests.
    pub fn poll_until_quiescent(&mut self, cx: &mut Cx) -> usize {
        let pass_limit = SPIN_LIMIT;
        let mut passes = 0;
        let mut finished_now = 0;
        loop {
            let mut any_progress = false;
            self.round_progressed.clear();
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if slot.finished {
                    continue;
                }
                self.polls += 1;
                match slot.engine.as_mut().expect("live engine").progress(cx) {
                    Poll::Progressed => {
                        any_progress = true;
                        self.round_progressed.push(i);
                    }
                    Poll::Idle => self.wasted_polls += 1,
                    Poll::Finished => {
                        slot.finished = true;
                        slot.engine = None;
                        self.live -= 1;
                        finished_now += 1;
                        any_progress = true;
                    }
                }
            }
            if !any_progress {
                break;
            }
            passes += 1;
            if passes >= pass_limit {
                let spinners: Vec<String> = self
                    .round_progressed
                    .iter()
                    .map(|&i| {
                        let s = &self.slots[i];
                        match &s.engine {
                            Some(e) => format!("{} {}", s.id, e.name()),
                            None => format!("{} <finished>", s.id),
                        }
                    })
                    .collect();
                panic!(
                    "engine pool failed to quiesce after {pass_limit} passes; \
                     an engine is spinning (always reporting progress); \
                     engines that progressed in the final pass: {spinners:?}"
                );
            }
        }
        finished_now
    }

    /// Wake-driven scheduler: poll only engines that are ready — newly
    /// spawned, signalled since the last call, past their deadline, or
    /// parked with [`Wake::Any`] — in rounds that mirror the naive passes.
    /// Returns the number of engines that finished during this call.
    pub fn poll_ready(&mut self, cx: &mut Cx) -> usize
    where
        Cx: WakeSource,
    {
        self.call_seq += 1;
        let now = cx.now();
        // Release timers that have come due.
        while let Some(&Reverse((t, epoch, idx))) = self.timers.peek() {
            if t > now {
                break;
            }
            self.timers.pop();
            if !self.slots[idx].finished && self.slots[idx].park_epoch == epoch {
                self.wake(idx, None, None);
            }
        }
        // Absorb signals raised since the last scheduler call.
        self.absorb_signals(cx, None, None);

        let mut finished_now = 0;
        loop {
            // Round set: explicitly readied engines plus every Any-parked
            // engine (the naive scheduler polls those each pass too).
            let mut round = std::mem::take(&mut self.ready);
            round.extend(self.any_parked.iter().copied());
            if round.is_empty() {
                break;
            }
            let mut progressed_any = false;
            self.round_progressed.clear();
            // With workers configured, partition the round into conflict
            // waves: groups whose declared footprints are pairwise
            // disjoint, eligible to run on separate workers. Engine
            // bodies still execute in slot order below — the
            // deterministic merge that keeps every digest byte-identical
            // to the sequential sweep — while per-group counters
            // accumulate apart and fold in at the wave barrier.
            let wave_stats = self.workers > 1;
            if wave_stats {
                self.partition_round(&round, cx);
            }
            // Sweep in slot order with a monotone cursor, exactly like a
            // naive pass restricted to ready engines. Engines woken during
            // the sweep join this round if their slot is still ahead of
            // the cursor, otherwise the next one — matching when the
            // naive pass would reach them.
            while let Some(&idx) = round.iter().next() {
                round.remove(&idx);
                let cursor = Some(idx);
                if self.slots[idx].finished {
                    continue;
                }
                // The engine is about to run: whatever parked state it held
                // is consumed (it re-declares on its next Idle).
                self.clear_registrations(idx);
                self.any_parked.remove(&idx);
                {
                    let slot = &mut self.slots[idx];
                    slot.park_epoch += 1;
                    slot.parked_any = false;
                    if slot.call_stamp != self.call_seq {
                        slot.call_stamp = self.call_seq;
                        slot.call_polls = 0;
                    }
                    slot.call_polls += 1;
                }
                let over_limit = self.slots[idx].call_polls > SPIN_LIMIT;
                // Counter home: the slot's conflict group when the wave
                // partition is active (merged at the barrier), the pool
                // totals directly otherwise. Mid-sweep joiners missing
                // from the partition tally to the serial catch-all.
                let tally = if wave_stats {
                    Some(
                        self.group_of
                            .get(&idx)
                            .copied()
                            .unwrap_or(self.group_tally.len() - 1),
                    )
                } else {
                    None
                };
                match tally {
                    Some(g) => self.group_tally[g][0] += 1,
                    None => self.polls += 1,
                }
                let poll = self.slots[idx]
                    .engine
                    .as_mut()
                    .expect("live engine")
                    .progress(cx);
                match poll {
                    Poll::Progressed => {
                        progressed_any = true;
                        self.round_progressed.push(idx);
                        // Its effects may ready parked peers; deliver them
                        // with naive-pass ordering.
                        self.absorb_signals(cx, cursor, Some(&mut round));
                        // A progressing engine is re-polled next round,
                        // like the naive scheduler's next pass.
                        self.ready.insert(idx);
                    }
                    Poll::Idle => {
                        match tally {
                            Some(g) => self.group_tally[g][1] += 1,
                            None => self.wasted_polls += 1,
                        }
                        self.park(idx, cx);
                    }
                    Poll::Finished => {
                        progressed_any = true;
                        let slot = &mut self.slots[idx];
                        slot.finished = true;
                        slot.engine = None;
                        self.live -= 1;
                        finished_now += 1;
                        self.absorb_signals(cx, cursor, Some(&mut round));
                    }
                }
                if over_limit {
                    let spinners: Vec<String> = self
                        .round_progressed
                        .iter()
                        .map(|&i| {
                            let s = &self.slots[i];
                            match &s.engine {
                                Some(e) => format!("{} {}", s.id, e.name()),
                                None => format!("{} <finished>", s.id),
                            }
                        })
                        .collect();
                    panic!(
                        "engine pool failed to quiesce after {SPIN_LIMIT} polls of one \
                         engine in a single scheduler call; an engine is spinning \
                         (always reporting progress); recent progress from: {spinners:?}"
                    );
                }
            }
            if wave_stats {
                // The wave barrier: every group has retired, fold the
                // per-group counters into the pool totals.
                self.merge_wave_tallies();
            }
            if !progressed_any {
                // A full round of pure idles — the naive scheduler would
                // stop here too. Engines left in `ready` keep their slot
                // for the next call.
                break;
            }
        }
        finished_now
    }

    /// Build the conflict-wave partition of a round snapshot: query each
    /// ready engine's [`Footprint`], split the round into waves of
    /// disjoint groups, and record the wave/max-group gauges plus the
    /// slot→group map the sweep tallies against.
    fn partition_round(&mut self, round: &BTreeSet<usize>, cx: &Cx) {
        self.group_of.clear();
        self.group_tally.clear();
        let entries: Vec<(usize, Footprint)> = round
            .iter()
            .filter(|&&i| !self.slots[i].finished)
            .map(|&i| {
                let fp = self.slots[i]
                    .engine
                    .as_ref()
                    .expect("live engine")
                    .footprint(cx);
                (i, fp)
            })
            .collect();
        for wave in partition(&entries) {
            self.waves += 1;
            self.max_group = self.max_group.max(wave.max_group() as u64);
            for group in wave.groups {
                let ordinal = self.group_tally.len();
                for slot in group {
                    self.group_of.insert(slot, ordinal);
                }
                self.group_tally.push([0, 0]);
            }
        }
        // Serial catch-all for engines woken into the round mid-sweep.
        self.group_tally.push([0, 0]);
    }

    /// Fold the round's per-group counters into the pool totals (called
    /// at the wave barrier, once per round).
    fn merge_wave_tallies(&mut self) {
        for [polls, wasted] in self.group_tally.drain(..) {
            self.polls += polls;
            self.wasted_polls += wasted;
        }
    }

    /// Park `idx` according to its declared wake condition.
    fn park(&mut self, idx: usize, cx: &Cx)
    where
        Cx: WakeSource,
    {
        let now = cx.now();
        let wake = self.slots[idx]
            .engine
            .as_ref()
            .expect("live engine")
            .wake_when(cx);
        match wake {
            Wake::Any => {
                self.slots[idx].parked_any = true;
                self.any_parked.insert(idx);
            }
            Wake::On {
                resources,
                deadline,
            } => {
                match deadline {
                    Some(d) if d <= now => {
                        // The deadline is already due: the naive scheduler
                        // would simply poll again next pass, so stay ready
                        // (the round loop still terminates — a round of
                        // pure idles exits regardless of the ready set).
                        self.ready.insert(idx);
                        return;
                    }
                    Some(d) => {
                        let epoch = self.slots[idx].park_epoch;
                        self.timers.push(Reverse((d, epoch, idx)));
                    }
                    None => {}
                }
                for r in &resources {
                    self.waiters.push(*r, idx);
                }
                self.slots[idx].registered = resources;
            }
        }
    }

    /// Drain the context's signals and ready every engine registered on
    /// them. `cursor`/`round` place woken engines into the in-flight round
    /// when the sweep has not passed their slot yet (naive-pass ordering);
    /// outside a round both are `None` and wakes land in `self.ready`.
    fn absorb_signals(
        &mut self,
        cx: &mut Cx,
        cursor: Option<usize>,
        mut round: Option<&mut BTreeSet<usize>>,
    ) where
        Cx: WakeSource,
    {
        let mut sigs = std::mem::take(&mut self.signal_scratch);
        sigs.clear();
        cx.drain_signals(&mut sigs);
        for r in &sigs {
            let list = self.waiters.take(*r);
            for idx in list {
                if self.slots[idx].finished || self.slots[idx].registered.is_empty() {
                    continue;
                }
                self.wake(idx, cursor, round.as_deref_mut());
            }
        }
        self.signal_scratch = sigs;
    }

    /// Transition a parked slot to ready: clear its registrations, bump
    /// its epoch (invalidating any timer), and queue it for polling.
    fn wake(&mut self, idx: usize, cursor: Option<usize>, round: Option<&mut BTreeSet<usize>>) {
        self.clear_registrations(idx);
        let slot = &mut self.slots[idx];
        slot.park_epoch += 1;
        if slot.parked_any {
            slot.parked_any = false;
            self.any_parked.remove(&idx);
        }
        self.wakes += 1;
        match (cursor, round) {
            (Some(c), Some(round)) if idx > c => {
                round.insert(idx);
            }
            _ => {
                self.ready.insert(idx);
            }
        }
    }

    /// Remove `idx` from every waiter list it registered on.
    fn clear_registrations(&mut self, idx: usize) {
        let regs = std::mem::take(&mut self.slots[idx].registered);
        for r in &regs {
            self.waiters.remove_slot(*r, idx);
        }
    }

    /// Names of live engines, for debugging deadlocks.
    pub fn live_names(&self) -> Vec<(EngineId, String)> {
        self.slots
            .iter()
            .filter(|s| !s.finished)
            .map(|s| (s.id, s.engine.as_ref().expect("live engine").name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nanos;

    /// Counts down; progresses once per poll until it finishes.
    struct Countdown {
        left: u32,
    }

    impl Engine<u32> for Countdown {
        fn progress(&mut self, total: &mut u32) -> Poll {
            if self.left == 0 {
                return Poll::Finished;
            }
            self.left -= 1;
            *total += 1;
            Poll::Progressed
        }
        fn name(&self) -> String {
            format!("countdown({})", self.left)
        }
    }

    /// Waits until the shared counter reaches a threshold, then finishes —
    /// exercises inter-engine progress dependencies.
    struct WaitFor {
        threshold: u32,
    }

    impl Engine<u32> for WaitFor {
        fn progress(&mut self, total: &mut u32) -> Poll {
            if *total >= self.threshold {
                Poll::Finished
            } else {
                Poll::Idle
            }
        }
    }

    #[test]
    fn pool_runs_engines_to_completion() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(Countdown { left: 5 }));
        pool.spawn(Box::new(Countdown { left: 3 }));
        let mut total = 0;
        let finished = pool.poll_until_quiescent(&mut total);
        assert_eq!(finished, 2);
        assert_eq!(total, 8);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn idle_engines_wake_when_dependency_progresses() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        // The waiter is spawned FIRST so a naive single pass would see it
        // idle before the countdown runs; quiescence polling must re-poll it.
        pool.spawn(Box::new(WaitFor { threshold: 4 }));
        pool.spawn(Box::new(Countdown { left: 4 }));
        let mut total = 0;
        let finished = pool.poll_until_quiescent(&mut total);
        assert_eq!(finished, 2);
    }

    #[test]
    fn waiter_stays_live_without_input() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(WaitFor { threshold: 1 }));
        let mut total = 0;
        assert_eq!(pool.poll_until_quiescent(&mut total), 0);
        assert_eq!(pool.live(), 1);
        // External input arrives; the pool picks it up on the next poll.
        total = 1;
        assert_eq!(pool.poll_until_quiescent(&mut total), 1);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn ids_are_unique_and_names_reported() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        let a = pool.spawn(Box::new(Countdown { left: 1 }));
        let b = pool.spawn(Box::new(Countdown { left: 1 }));
        assert_ne!(a, b);
        let names = pool.live_names();
        assert_eq!(names.len(), 2);
        assert!(names[0].1.starts_with("countdown"));
    }

    #[test]
    #[should_panic(expected = "spinning")]
    fn spinning_engine_is_detected() {
        struct Spin;
        impl Engine<u32> for Spin {
            fn progress(&mut self, _: &mut u32) -> Poll {
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(Spin));
        pool.poll_until_quiescent(&mut 0);
    }

    #[test]
    fn spin_panic_names_the_offender() {
        struct Spin;
        impl Engine<u32> for Spin {
            fn progress(&mut self, _: &mut u32) -> Poll {
                Poll::Progressed
            }
            fn name(&self) -> String {
                "spinner-under-test".to_owned()
            }
        }
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(WaitFor {
            threshold: u32::MAX,
        }));
        pool.spawn(Box::new(Spin));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.poll_until_quiescent(&mut 0);
        }))
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("spinner-under-test"), "panic was: {msg}");
        assert!(
            !msg.contains("engine#0"),
            "idle waiter must not be blamed: {msg}"
        );
    }

    // ---- wake-driven scheduler ---------------------------------------------

    /// Minimal context for wake-driven tests: a clock, a signal buffer and
    /// a shared scratch counter engines communicate through.
    #[derive(Default)]
    struct TestCx {
        now: Nanos,
        signals: Vec<ResourceId>,
        total: u32,
    }

    impl WakeSource for TestCx {
        fn now(&self) -> Nanos {
            self.now
        }
        fn drain_signals(&mut self, into: &mut Vec<ResourceId>) {
            into.append(&mut self.signals);
        }
    }

    const RES_A: ResourceId = ResourceId::new(1, 0);

    /// Counts down, signalling RES_A on every step.
    struct SignallingCountdown {
        left: u32,
    }

    impl Engine<TestCx> for SignallingCountdown {
        fn progress(&mut self, cx: &mut TestCx) -> Poll {
            if self.left == 0 {
                return Poll::Finished;
            }
            self.left -= 1;
            cx.total += 1;
            cx.signals.push(RES_A);
            Poll::Progressed
        }
    }

    /// Finishes once the counter reaches a threshold; parks on a resource.
    struct ResourceWaiter {
        threshold: u32,
        resource: ResourceId,
        polls: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl ResourceWaiter {
        fn on_a(threshold: u32, polls: std::rc::Rc<std::cell::Cell<u32>>) -> Self {
            ResourceWaiter {
                threshold,
                resource: RES_A,
                polls,
            }
        }
    }

    impl Engine<TestCx> for ResourceWaiter {
        fn progress(&mut self, cx: &mut TestCx) -> Poll {
            self.polls.set(self.polls.get() + 1);
            if cx.total >= self.threshold {
                Poll::Finished
            } else {
                Poll::Idle
            }
        }
        fn wake_when(&self, _: &TestCx) -> Wake {
            Wake::on(vec![self.resource])
        }
    }

    /// Finishes once the clock reaches a deadline; parks on that deadline.
    struct DeadlineWaiter {
        at: Nanos,
    }

    impl Engine<TestCx> for DeadlineWaiter {
        fn progress(&mut self, cx: &mut TestCx) -> Poll {
            if cx.now >= self.at {
                Poll::Finished
            } else {
                Poll::Idle
            }
        }
        fn wake_when(&self, _: &TestCx) -> Wake {
            Wake::at(self.at)
        }
    }

    #[test]
    fn wake_driven_runs_signalled_waiters() {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        let polls = std::rc::Rc::new(std::cell::Cell::new(0));
        pool.spawn(Box::new(ResourceWaiter::on_a(3, polls.clone())));
        pool.spawn(Box::new(SignallingCountdown { left: 3 }));
        let mut cx = TestCx::default();
        let finished = pool.poll_ready(&mut cx);
        assert_eq!(finished, 2);
        assert_eq!(cx.total, 3);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn parked_engine_is_not_re_polled_without_its_resource() {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        let polls = std::rc::Rc::new(std::cell::Cell::new(0));
        pool.spawn(Box::new(ResourceWaiter::on_a(100, polls.clone())));
        let mut cx = TestCx::default();
        pool.poll_ready(&mut cx);
        let after_first = polls.get();
        assert_eq!(after_first, 1, "polled once then parked");
        // Scheduler calls without the resource signal must skip it.
        for _ in 0..10 {
            pool.poll_ready(&mut cx);
        }
        assert_eq!(polls.get(), after_first, "no polls while parked");
        // Signal arrives: exactly one wake.
        cx.signals.push(RES_A);
        pool.poll_ready(&mut cx);
        assert_eq!(polls.get(), after_first + 1);
        assert_eq!(pool.wake_count(), 1);
    }

    #[test]
    fn spill_indexed_resources_still_wake() {
        // Resource indices past the dense-table bound take the spill-map
        // path through WaiterTable; semantics must be identical.
        let big = ResourceId::new(7, u32::MAX);
        assert!(big.index() as usize >= DENSE_WAITER_LIMIT);
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        let polls = std::rc::Rc::new(std::cell::Cell::new(0));
        pool.spawn(Box::new(ResourceWaiter {
            threshold: 1,
            resource: big,
            polls: polls.clone(),
        }));
        let mut cx = TestCx::default();
        pool.poll_ready(&mut cx);
        assert_eq!(polls.get(), 1, "polled once then parked on spill index");
        for _ in 0..5 {
            pool.poll_ready(&mut cx);
        }
        assert_eq!(polls.get(), 1, "no wake without the signal");
        cx.total = 1;
        cx.signals.push(big);
        assert_eq!(pool.poll_ready(&mut cx), 1);
        assert_eq!(polls.get(), 2);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn deadline_wakes_engine_when_time_reaches_it() {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.spawn(Box::new(DeadlineWaiter {
            at: Nanos::from_micros(10),
        }));
        let mut cx = TestCx::default();
        assert_eq!(pool.poll_ready(&mut cx), 0);
        cx.now = Nanos::from_micros(5);
        assert_eq!(pool.poll_ready(&mut cx), 0, "deadline not due yet");
        assert_eq!(pool.live(), 1);
        cx.now = Nanos::from_micros(10);
        assert_eq!(pool.poll_ready(&mut cx), 1);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn any_parked_engines_follow_naive_semantics() {
        // WaitFor-style engine with no wake_when: defaults to Wake::Any and
        // must still observe progress made by other engines.
        struct AnyWaiter {
            threshold: u32,
        }
        impl Engine<TestCx> for AnyWaiter {
            fn progress(&mut self, cx: &mut TestCx) -> Poll {
                if cx.total >= self.threshold {
                    Poll::Finished
                } else {
                    Poll::Idle
                }
            }
        }
        struct QuietCountdown {
            left: u32,
        }
        impl Engine<TestCx> for QuietCountdown {
            fn progress(&mut self, cx: &mut TestCx) -> Poll {
                if self.left == 0 {
                    return Poll::Finished;
                }
                self.left -= 1;
                cx.total += 1;
                // Note: no signal — only Wake::Any engines may observe this.
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.spawn(Box::new(AnyWaiter { threshold: 4 }));
        pool.spawn(Box::new(QuietCountdown { left: 4 }));
        let mut cx = TestCx::default();
        assert_eq!(pool.poll_ready(&mut cx), 2);
    }

    #[test]
    fn wake_driven_skips_idle_engines_that_naive_repolls() {
        // 1 worker + N parked waiters: the naive scheduler pays N wasted
        // polls per pass, the wake-driven one only the initial park.
        let n = 50;
        let steps = 20;
        let run = |naive: bool| -> u64 {
            let mut pool: RuntimePool<TestCx> = RuntimePool::new();
            pool.set_naive(naive);
            for _ in 0..n {
                // Watch a resource nothing ever signals: these engines are
                // pure idle ballast the wake-driven scheduler must skip.
                pool.spawn(Box::new(ResourceWaiter {
                    threshold: u32::MAX,
                    resource: ResourceId::new(9, 9),
                    polls: std::rc::Rc::new(std::cell::Cell::new(0)),
                }));
            }
            pool.spawn(Box::new(SignallingCountdown { left: steps }));
            let mut cx = TestCx::default();
            pool.poll(&mut cx);
            pool.wasted_poll_count()
        };
        let naive_wasted = run(true);
        let wake_wasted = run(false);
        assert!(
            wake_wasted * 10 <= naive_wasted,
            "wake-driven wasted {wake_wasted}, naive wasted {naive_wasted}"
        );
    }

    #[test]
    fn live_count_stays_cached_and_correct() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        assert_eq!(pool.live(), 0);
        pool.spawn(Box::new(Countdown { left: 2 }));
        pool.spawn(Box::new(WaitFor { threshold: 10 }));
        assert_eq!(pool.live(), 2);
        let mut total = 0;
        pool.poll_until_quiescent(&mut total);
        assert_eq!(pool.live(), 1, "countdown finished, waiter parked");
        total = 10;
        pool.poll_until_quiescent(&mut total);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    #[should_panic(expected = "spinning")]
    fn wake_driven_detects_spinning_engine() {
        struct Spin;
        impl Engine<TestCx> for Spin {
            fn progress(&mut self, _: &mut TestCx) -> Poll {
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.spawn(Box::new(Spin));
        pool.poll_ready(&mut TestCx::default());
    }

    // ---- wave scheduler (workers > 1) --------------------------------------

    /// Run the interleaved waiter/countdown workload at a worker count
    /// and return everything observable plus the scheduler counters.
    fn run_interleaved(workers: usize) -> (u32, u64, u64, u64) {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_workers(workers);
        for t in [2, 5, 1, 4, 3] {
            pool.spawn(Box::new(ResourceWaiter::on_a(
                t,
                std::rc::Rc::new(std::cell::Cell::new(0)),
            )));
        }
        pool.spawn(Box::new(SignallingCountdown { left: 5 }));
        let mut cx = TestCx::default();
        pool.poll(&mut cx);
        assert_eq!(pool.live(), 0, "workers={workers}");
        (
            cx.total,
            pool.poll_count(),
            pool.wasted_poll_count(),
            pool.wake_count(),
        )
    }

    #[test]
    fn worker_count_is_observably_invisible() {
        // Not just the outcome: the barrier-merged counters must equal
        // the sequential scheduler's exactly, at every worker count.
        let seq = run_interleaved(1);
        for n in [2, 8] {
            assert_eq!(seq, run_interleaved(n), "workers={n}");
        }
    }

    #[test]
    fn wave_gauges_populate_under_workers() {
        struct FootedWaiter {
            resource: ResourceId,
            threshold: u32,
        }
        impl Engine<TestCx> for FootedWaiter {
            fn progress(&mut self, cx: &mut TestCx) -> Poll {
                if cx.total >= self.threshold {
                    Poll::Finished
                } else {
                    Poll::Idle
                }
            }
            fn wake_when(&self, _: &TestCx) -> Wake {
                Wake::on(vec![self.resource])
            }
            fn footprint(&self, _: &TestCx) -> crate::conflict::Footprint {
                crate::conflict::Footprint::Resources(vec![self.resource])
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_workers(8);
        // Four waiters on four distinct resources: one wave, four groups.
        for i in 0..4 {
            pool.spawn(Box::new(FootedWaiter {
                resource: ResourceId::new(3, i),
                threshold: 1,
            }));
        }
        let mut cx = TestCx::default();
        pool.poll_ready(&mut cx);
        assert!(pool.wave_count() >= 1, "waves: {}", pool.wave_count());
        assert_eq!(pool.max_group_size(), 1, "disjoint footprints");
        assert_eq!(pool.poll_count(), 4, "barrier merge kept the totals");
        assert_eq!(pool.wasted_poll_count(), 4);
        // Default-footprint engines serialize: an exclusive engine in the
        // round makes singleton waves.
        pool.spawn(Box::new(SignallingCountdown { left: 2 }));
        cx.total = 1;
        cx.signals.push(ResourceId::new(3, 0));
        pool.poll_ready(&mut cx);
        assert!(pool.max_group_size() >= 1);
    }

    #[test]
    #[should_panic(expected = "spinning")]
    fn wave_scheduler_detects_spinning_engine() {
        struct Spin;
        impl Engine<TestCx> for Spin {
            fn progress(&mut self, _: &mut TestCx) -> Poll {
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_workers(8);
        pool.spawn(Box::new(Spin));
        pool.poll_ready(&mut TestCx::default());
    }

    #[test]
    fn schedulers_agree_on_interleaved_workload() {
        // A chain of resource waiters released one by one by a countdown:
        // both schedulers must finish everything with the same final state.
        let run = |naive: bool| -> u32 {
            let mut pool: RuntimePool<TestCx> = RuntimePool::new();
            pool.set_naive(naive);
            for t in [2, 5, 1, 4, 3] {
                pool.spawn(Box::new(ResourceWaiter::on_a(
                    t,
                    std::rc::Rc::new(std::cell::Cell::new(0)),
                )));
            }
            pool.spawn(Box::new(SignallingCountdown { left: 5 }));
            let mut cx = TestCx::default();
            pool.poll(&mut cx);
            assert_eq!(pool.live(), 0, "naive={naive}");
            cx.total
        };
        assert_eq!(run(true), run(false));
    }
}
