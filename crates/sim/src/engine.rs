//! Poll-based engines and cooperative runtimes.
//!
//! The paper (§5, "Internal engine scheduling") describes the MCCS service as
//! a set of *engines* — "designed similar to asynchronous futures in Rust" —
//! executed by a pool of *runtimes*, each corresponding to a kernel thread.
//! This module reproduces that structure in virtual time: an [`Engine`] is a
//! state machine advanced by [`Engine::progress`], and a [`RuntimePool`]
//! drives its engines until the whole pool is quiescent, exactly like a set
//! of executor threads draining ready futures before parking.
//!
//! Two schedulers share that contract:
//!
//! * **Wake-driven** (default, [`RuntimePool::poll_ready`]): engines that
//!   return [`Poll::Idle`] declare a [`Wake`] condition — resources to
//!   watch, an optional virtual-time deadline — and are parked until a
//!   matching signal or the deadline readies them. Each scheduler call
//!   costs O(ready work), not O(live engines).
//! * **Naive round-robin** ([`RuntimePool::poll_until_quiescent`]): every
//!   live engine is re-polled every pass until a full pass is idle. Kept as
//!   the oracle the wake-driven scheduler is differentially tested against
//!   (`MCCS_SIM_NAIVE_POOL=1` flips the [`RuntimePool::poll`] dispatcher).
//!
//! The wake-driven scheduler is engineered to be *observably identical* to
//! the oracle, not merely equivalent in outcome: within one scheduler call
//! it runs rounds that mirror the naive passes (ready engines polled in
//! slot order; an engine woken by a lower-indexed engine still runs in the
//! same round, one woken by a higher-indexed engine waits for the next),
//! so engines perform their observable actions in exactly the same order
//! under both schedulers. The invariants this rests on — engines returning
//! `Idle` have no observable effect, and every idle→ready transition is
//! covered by a signal, a deadline, or [`Wake::Any`] — are enforced by the
//! digest-equivalence battery in the service crate.
//!
//! The context type `Cx` is chosen by the embedder (the MCCS service uses a
//! `World` holding the simulated network, devices and IPC queues); this
//! crate stays agnostic of what engines act upon.

use crate::conflict::{partition, Footprint};
use crate::par::Workers;
use crate::waker::{ResourceId, Wake, WakeSource};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;

/// Identifies an engine within a [`RuntimePool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EngineId(pub u32);

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine#{}", self.0)
    }
}

/// Outcome of one `progress` call, mirroring future polling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Poll {
    /// The engine did some work; poll the pool again before sleeping.
    Progressed,
    /// Nothing to do right now; the engine is waiting on external input.
    Idle,
    /// The engine has completed and can be dropped from its runtime.
    Finished,
}

/// The read-phase result of a plan-capable engine: whatever the engine
/// precomputed against the frozen world view, boxed for transport across
/// worker threads. Plans are *free to drop* — [`Engine::progress_planned`]
/// falls back to a plain [`Engine::progress`] when the plan is gone or
/// stale — which is what makes the concurrent plan phase unconditionally
/// sound: any doubt about a plan's validity is resolved by discarding it.
pub struct EnginePlan(pub Box<dyn Any + Send>);

impl EnginePlan {
    /// Box a plan value.
    pub fn new<T: Any + Send>(value: T) -> Self {
        EnginePlan(Box::new(value))
    }

    /// Recover the typed plan (None if the type does not match — treat
    /// as a dropped plan and recompute).
    pub fn downcast<T: Any>(self) -> Option<Box<T>> {
        self.0.downcast().ok()
    }
}

/// An asynchronously progressing component of the system.
///
/// `progress` must be non-blocking: do at most a bounded amount of work and
/// return. Engines communicate only through the shared context (mailboxes,
/// queues, simulated fabrics), never by direct reference to each other —
/// the same discipline the paper's service uses between its frontend, proxy
/// and transport engines.
///
/// An engine returning [`Poll::Idle`] must have had no observable effect in
/// that call: the wake-driven scheduler relies on idle polls being pure so
/// it can skip them entirely.
pub trait Engine<Cx: ?Sized> {
    /// Advance the engine's state machine as far as currently possible.
    fn progress(&mut self, cx: &mut Cx) -> Poll;

    /// Read phase of the buffered-effect protocol: precompute against a
    /// *frozen* world view whatever `progress` would derive from it —
    /// decoded queue heads, validation verdicts, derived schedules —
    /// and return it as an [`EnginePlan`]. Called by the wave scheduler
    /// on worker threads while other plans run concurrently, so it must
    /// only read (a) resources in this engine's declared [`Footprint`]
    /// and (b) state that is immutable for the duration of a scheduler
    /// round (topology, configuration, the virtual clock). It must not
    /// draw from shared RNGs or bump shared sequence counters: all
    /// world-global mutation belongs to the commit phase.
    ///
    /// The contract: for any context `cx` that agrees with the plan-time
    /// context on the engine's footprint,
    /// `progress_planned(cx, plan(cx₀))` must be observably identical to
    /// `progress(cx)`. The conflict partition guarantees that agreement
    /// within a wave; engines joining a round mid-sweep void outstanding
    /// plans conservatively.
    ///
    /// The default — `None` — keeps the engine on the in-place path.
    fn plan(&self, cx: &Cx) -> Option<EnginePlan> {
        let _ = cx;
        None
    }

    /// Commit phase: apply a previously computed plan. Runs on the
    /// scheduler thread in exact slot order (the deterministic merge),
    /// with full mutable access — RNG draws, sequence numbers and queue
    /// mutation all happen here. The default discards the plan and
    /// re-runs `progress`, which is always correct.
    fn progress_planned(&mut self, cx: &mut Cx, plan: EnginePlan) -> Poll {
        drop(plan);
        self.progress(cx)
    }

    /// What must happen for this engine to be worth polling again, asked
    /// immediately after `progress` returns [`Poll::Idle`]. The default —
    /// [`Wake::Any`] — reproduces naive scheduling for this engine (it is
    /// re-polled once per scheduler round whenever anything progresses),
    /// so unported engines stay correct, just not cheap.
    fn wake_when(&self, cx: &Cx) -> Wake {
        let _ = cx;
        Wake::Any
    }

    /// The resources this engine may touch (read *or* write) in one
    /// `progress` call — its conflict footprint for the parallel wave
    /// scheduler. The default, [`Footprint::Exclusive`], declares "may
    /// touch anything" and serializes the engine against every peer, so
    /// unported engines stay correct; engines that know their working
    /// set (their own queues, their GPU's fabric slots) declare it so
    /// the pool can group non-conflicting peers into the same wave.
    ///
    /// Footprints gate *grouping only*: the pool still applies engine
    /// effects in slot order (the deterministic merge), so a too-narrow
    /// footprint can mis-report achievable parallelism but can never
    /// change an observable digest.
    fn footprint(&self, cx: &Cx) -> Footprint {
        let _ = cx;
        Footprint::Exclusive
    }

    /// Diagnostic label.
    fn name(&self) -> String {
        "engine".to_owned()
    }
}

/// How an engine was handed to the pool: plain boxes run everything
/// in place on the scheduler thread; `Par` boxes additionally promise
/// `Send + Sync`, making them eligible for the concurrent plan phase
/// (their `plan` may be invoked from worker threads against the frozen
/// context).
enum EngineBox<Cx: ?Sized> {
    Local(Box<dyn Engine<Cx>>),
    Par(Box<dyn Engine<Cx> + Send + Sync>),
}

impl<Cx: ?Sized> EngineBox<Cx> {
    fn get(&self) -> &dyn Engine<Cx> {
        match self {
            EngineBox::Local(e) => &**e,
            EngineBox::Par(e) => &**e,
        }
    }

    fn get_mut(&mut self) -> &mut dyn Engine<Cx> {
        match self {
            EngineBox::Local(e) => &mut **e,
            EngineBox::Par(e) => &mut **e,
        }
    }

    /// The thread-safe view, if this engine is plan-capable.
    fn par(&self) -> Option<&(dyn Engine<Cx> + Send + Sync)> {
        match self {
            EngineBox::Local(_) => None,
            EngineBox::Par(e) => Some(&**e),
        }
    }
}

struct Slot<Cx: ?Sized> {
    id: EngineId,
    /// `None` once finished (the engine is dropped; the slot stays so
    /// indices held by the wake bookkeeping remain stable).
    engine: Option<EngineBox<Cx>>,
    finished: bool,
    /// Bumped every (re-)park and unpark; a timer whose recorded epoch no
    /// longer matches is stale and discarded lazily.
    park_epoch: u64,
    /// Resources this slot is currently registered on (cleared on wake so
    /// waiter lists stay bounded by live registrations).
    registered: Vec<ResourceId>,
    /// Parked with [`Wake::Any`] (member of the pool's any-set).
    parked_any: bool,
    /// Spin-guard bookkeeping: polls issued during the current scheduler
    /// call (reset lazily via the call stamp).
    call_stamp: u64,
    call_polls: u32,
}

/// Polls one engine may receive within a single scheduler call before the
/// pool declares it (or its progress-reporting peers) stuck in a spin.
/// Matches the naive scheduler's pass limit: there, a spinning engine is
/// polled once per pass for `pass_limit` passes.
const SPIN_LIMIT: u32 = 100_000;

/// Minimum plan-capable members in a wave before the plan phase pays for
/// a thread dispatch; smaller batches plan inline on the scheduler
/// thread (identical results either way).
const PLAN_DISPATCH_MIN: usize = 4;

use crate::par::workers_from_env;

/// Per-kind dense waiter tables cover resource indices below this bound;
/// anything above spills into a map. Resource indices are engine/queue
/// ordinals in practice, so even a 10k-GPU world stays far under it.
const DENSE_WAITER_LIMIT: usize = 1 << 20;

/// `resource id → waiting slots`, arena-flattened. A [`ResourceId`] packs a
/// 32-bit kind with a 32-bit index; the handful of kinds each get a dense
/// `Vec` of waiter lists indexed by the index half (O(1) signal fan-out, no
/// hashing on the hot path), with a spill map for pathological indices.
#[derive(Default)]
struct WaiterTable {
    /// `(kind, index → waiter list)` in first-use order; scanned linearly
    /// (kind cardinality is tiny and fixed by the embedder).
    kinds: Vec<(u32, Vec<Vec<usize>>)>,
    /// Fallback for indices ≥ [`DENSE_WAITER_LIMIT`].
    spill: HashMap<u64, Vec<usize>>,
}

impl WaiterTable {
    fn push(&mut self, r: ResourceId, slot: usize) {
        let index = r.index() as usize;
        if index >= DENSE_WAITER_LIMIT {
            self.spill.entry(r.0).or_default().push(slot);
            return;
        }
        let pos = match self.kinds.iter().position(|(k, _)| *k == r.kind()) {
            Some(p) => p,
            None => {
                self.kinds.push((r.kind(), Vec::new()));
                self.kinds.len() - 1
            }
        };
        let lists = &mut self.kinds[pos].1;
        if index >= lists.len() {
            lists.resize_with(index + 1, Vec::new);
        }
        lists[index].push(slot);
    }

    /// Remove and return the whole waiter list of a signalled resource
    /// (empty if nobody registered).
    fn take(&mut self, r: ResourceId) -> Vec<usize> {
        let index = r.index() as usize;
        if index >= DENSE_WAITER_LIMIT {
            return self.spill.remove(&r.0).unwrap_or_default();
        }
        match self.kinds.iter_mut().find(|(k, _)| *k == r.kind()) {
            Some((_, lists)) if index < lists.len() => std::mem::take(&mut lists[index]),
            _ => Vec::new(),
        }
    }

    /// Drop one slot from a resource's waiter list (un-registration on
    /// wake; the list itself stays allocated for reuse).
    fn remove_slot(&mut self, r: ResourceId, slot: usize) {
        let index = r.index() as usize;
        if index >= DENSE_WAITER_LIMIT {
            if let Some(list) = self.spill.get_mut(&r.0) {
                list.retain(|&x| x != slot);
                if list.is_empty() {
                    self.spill.remove(&r.0);
                }
            }
            return;
        }
        if let Some((_, lists)) = self.kinds.iter_mut().find(|(k, _)| *k == r.kind()) {
            if let Some(list) = lists.get_mut(index) {
                list.retain(|&x| x != slot);
            }
        }
    }

    fn clear(&mut self) {
        for (_, lists) in &mut self.kinds {
            lists.clear();
        }
        self.spill.clear();
    }

    /// Drain every `(resource, waiters)` registration, for shard-count
    /// changes that must redistribute live state.
    fn drain_all(&mut self) -> Vec<(ResourceId, Vec<usize>)> {
        let mut out = Vec::new();
        for (kind, lists) in &mut self.kinds {
            for (index, list) in lists.iter_mut().enumerate() {
                if !list.is_empty() {
                    out.push((ResourceId::new(*kind, index as u32), std::mem::take(list)));
                }
            }
        }
        for (raw, list) in self.spill.drain() {
            out.push((ResourceId(raw), list));
        }
        // Spill iteration is hash-ordered; sort so redistribution is
        // deterministic regardless of map internals.
        out.sort_by_key(|(r, _)| r.0);
        out
    }
}

/// Shard attribution for the sharded event loop: which per-rack shard a
/// slot or a resource belongs to. Built by the embedder from its
/// topology's rack buckets (shard 0 doubles as the shared/global bucket
/// and the default for everything unattributed). Assignments are stored
/// raw and clamped at lookup, so lowering the shard count never loses
/// or corrupts an attribution.
struct ShardMap {
    shards: usize,
    /// slot index → shard.
    of_slot: Vec<u32>,
    /// `(kind, index → shard)` dense per-kind tables, first-use order.
    kinds: Vec<(u32, Vec<u32>)>,
}

impl ShardMap {
    fn new() -> Self {
        ShardMap {
            shards: 1,
            of_slot: Vec::new(),
            kinds: Vec::new(),
        }
    }

    fn clamp(&self, shard: u32) -> usize {
        let s = shard as usize;
        if s < self.shards {
            s
        } else {
            0
        }
    }

    fn slot_shard(&self, slot: usize) -> usize {
        self.clamp(self.of_slot.get(slot).copied().unwrap_or(0))
    }

    fn resource_shard(&self, r: ResourceId) -> usize {
        let index = r.index() as usize;
        for (kind, table) in &self.kinds {
            if *kind == r.kind() {
                return self.clamp(table.get(index).copied().unwrap_or(0));
            }
        }
        0
    }

    fn assign_slot(&mut self, slot: usize, shard: usize) {
        if self.of_slot.len() <= slot {
            self.of_slot.resize(slot + 1, 0);
        }
        self.of_slot[slot] = shard as u32;
    }

    fn assign_resource(&mut self, kind: u32, index: u32, shard: usize) {
        let pos = match self.kinds.iter().position(|(k, _)| *k == kind) {
            Some(p) => p,
            None => {
                self.kinds.push((kind, Vec::new()));
                self.kinds.len() - 1
            }
        };
        let table = &mut self.kinds[pos].1;
        let index = index as usize;
        if table.len() <= index {
            table.resize(index + 1, 0);
        }
        table[index] = shard as u32;
    }
}

/// A slot set split into per-shard ordered sets. Iteration and drains
/// fold the shards back into ascending slot order (via the caller's
/// `BTreeSet`), so shard attribution affects only *where* membership is
/// stored — never the order engines execute in. That is the sharded
/// event loop's determinism argument in one sentence.
struct SlotSet {
    shards: Vec<BTreeSet<usize>>,
}

impl SlotSet {
    fn new(n: usize) -> Self {
        SlotSet {
            shards: (0..n.max(1)).map(|_| BTreeSet::new()).collect(),
        }
    }

    fn insert(&mut self, shard: usize, idx: usize) -> bool {
        self.shards[shard].insert(idx)
    }

    fn remove(&mut self, shard: usize, idx: usize) -> bool {
        self.shards[shard].remove(&idx)
    }

    fn drain_into(&mut self, out: &mut BTreeSet<usize>) {
        for shard in &mut self.shards {
            out.extend(std::mem::take(shard));
        }
    }

    fn extend_into(&self, out: &mut BTreeSet<usize>) {
        for shard in &self.shards {
            out.extend(shard.iter().copied());
        }
    }

    fn take_all(&mut self) -> Vec<usize> {
        let mut all: Vec<usize> = Vec::new();
        for shard in &mut self.shards {
            all.extend(std::mem::take(shard));
        }
        all.sort_unstable();
        all
    }

    fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }
}

/// A pool of runtimes executing engines cooperatively.
///
/// In the paper each runtime is a kernel thread and engines may share or
/// dedicate runtimes; under virtual time the pool is a deterministic
/// scheduler (wake-driven by default, round-robin as the oracle), but the
/// API keeps the runtime grouping so CPU-usage accounting (engines per
/// runtime) can be reported like the prototype's.
pub struct RuntimePool<Cx: ?Sized> {
    slots: Vec<Slot<Cx>>,
    next_id: u32,
    /// Cached count of non-finished engines (kept in sync on spawn/finish
    /// so `live()` is O(1) — it sits in run-loop conditions).
    live: usize,
    /// Use the naive round-robin oracle instead of the wake-driven
    /// scheduler when dispatching through [`RuntimePool::poll`].
    naive: bool,
    /// Total number of `progress` calls issued.
    polls: u64,
    /// `progress` calls that returned [`Poll::Idle`] (pure scheduler
    /// overhead — the "wasted poll" ratio both schedulers are compared on).
    wasted_polls: u64,
    /// Parked→ready transitions performed by the wake-driven scheduler.
    wakes: u64,
    /// Worker count for the wave scheduler (1 = today's purely
    /// sequential sweep; >1 partitions every round into conflict waves
    /// and merges per-group counters at the wave barrier).
    workers: usize,
    /// Conflict waves formed (workers > 1 only).
    waves: u64,
    /// Largest conflict group observed in any wave.
    max_group: u64,
    /// Commits that consumed a concurrently computed plan (workers > 1
    /// with plan-capable engines only; digest-excluded like every
    /// scheduler gauge).
    planned_polls: u64,
    /// Plans voided before commit — by a mid-sweep joiner, or computed
    /// for an engine that never reached its commit.
    dropped_plans: u64,
    /// Monotone scheduler-call stamp (lazily resets per-slot spin guards).
    call_seq: u64,
    /// Shard attribution for slots and resources (1 shard = the global
    /// single-queue oracle, selected by `MCCS_SIM_SHARDED=0`).
    shard_map: ShardMap,
    /// Engines to poll in the next round/call, split per shard; rounds
    /// re-merge the shards into ascending slot order.
    ready: SlotSet,
    /// Slots parked with [`Wake::Any`]; polled once per round like the
    /// naive scheduler would.
    any_parked: SlotSet,
    /// resource id → slots registered on it, one table per shard
    /// (routed by the *resource's* shard, since cross-rack waits are
    /// legal: a slot in rack A may register on rack B's table).
    waiters: Vec<WaiterTable>,
    /// Per-shard (deadline, park epoch, slot) min-heaps, routed by the
    /// slot's shard; stale epochs discarded lazily. Timer release scans
    /// every shard head, so a deadline parked on one shard can never be
    /// masked by another shard's quiet heap.
    timers: Vec<BinaryHeap<Reverse<(crate::Nanos, u64, usize)>>>,
    /// Scratch for draining context signals without reallocating.
    signal_scratch: Vec<ResourceId>,
    /// Per-shard signal mailboxes: drained context signals are routed to
    /// their resource's shard, then the mailboxes drain in ascending
    /// shard order — the deterministic epoch boundary for cross-shard
    /// effects. (Wake delivery is order-insensitive — sets dedupe and
    /// each waiter wakes at most once — so the re-ordering relative to
    /// the raw signal stream is unobservable; with 1 shard the mailbox
    /// preserves the raw stream exactly.)
    mailboxes: Vec<Vec<ResourceId>>,
    /// Slots that returned [`Poll::Progressed`] in the current pass/round
    /// (diagnostics for the spin panic).
    round_progressed: Vec<usize>,
    /// Wave-scheduler scratch: slot → dense conflict-group ordinal for
    /// the current round (workers > 1 only; membership gates the plan
    /// dispatch — mid-sweep joiners are absent and void the wave's
    /// outstanding plans).
    group_of: HashMap<usize, usize>,
    /// Wave-scheduler scratch: per wave, `(first slot, plan-capable
    /// singleton-group members)` — the unit the concurrent plan phase
    /// dispatches when the sweep reaches the wave.
    wave_sets: Vec<(usize, Vec<usize>)>,
    /// Per-shard `[polls, wasted]` tallies for the in-flight round,
    /// merged into the totals in ascending shard order at the wave
    /// barrier (workers > 1) or at the end of the scheduler call — every
    /// poll is attributed to its engine's home shard regardless of which
    /// scheduler path retired it, so `per_shard_polls` always sums to
    /// the totals.
    shard_tally: Vec<[u64; 2]>,
    /// Cumulative per-shard `[polls, wasted]` (diagnostics; the merged
    /// totals live in `polls`/`wasted_polls`).
    shard_totals: Vec<[u64; 2]>,
}

impl<Cx: ?Sized> Default for RuntimePool<Cx> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Cx: ?Sized> RuntimePool<Cx> {
    /// An empty pool. The scheduler defaults to wake-driven unless the
    /// `MCCS_SIM_NAIVE_POOL` environment variable is set (to anything but
    /// `0`), which selects the round-robin oracle for differential runs.
    pub fn new() -> Self {
        let naive = std::env::var_os("MCCS_SIM_NAIVE_POOL").is_some_and(|v| v != "0");
        RuntimePool {
            slots: Vec::new(),
            next_id: 0,
            live: 0,
            naive,
            polls: 0,
            wasted_polls: 0,
            wakes: 0,
            workers: workers_from_env(),
            waves: 0,
            max_group: 0,
            planned_polls: 0,
            dropped_plans: 0,
            call_seq: 0,
            shard_map: ShardMap::new(),
            ready: SlotSet::new(1),
            any_parked: SlotSet::new(1),
            waiters: vec![WaiterTable::default()],
            timers: vec![BinaryHeap::new()],
            signal_scratch: Vec::new(),
            mailboxes: vec![Vec::new()],
            round_progressed: Vec::new(),
            group_of: HashMap::new(),
            wave_sets: Vec::new(),
            shard_tally: vec![[0, 0]],
            shard_totals: vec![[0, 0]],
        }
    }

    /// Number of event-loop shards (1 = the global single-queue oracle).
    pub fn shards(&self) -> usize {
        self.shard_map.shards
    }

    /// Re-shard the pool's event loop into `n` per-rack shards,
    /// redistributing any live ready/parked/timer/waiter state by the
    /// current attribution. Observable behaviour is identical at every
    /// count by construction: shards only split *storage*; rounds
    /// re-merge everything into global slot order.
    pub fn set_shards(&mut self, n: usize) {
        let n = n.max(1);
        if n == self.shard_map.shards {
            return;
        }
        self.shard_map.shards = n;
        // Ready/parked sets: collect and re-insert under the new map.
        let ready = self.ready.take_all();
        let parked = self.any_parked.take_all();
        self.ready = SlotSet::new(n);
        self.any_parked = SlotSet::new(n);
        for idx in ready {
            self.ready.insert(self.shard_map.slot_shard(idx), idx);
        }
        for idx in parked {
            self.any_parked.insert(self.shard_map.slot_shard(idx), idx);
        }
        // Timers: route each live entry to its slot's shard.
        let mut entries: Vec<Reverse<(crate::Nanos, u64, usize)>> = Vec::new();
        for heap in &mut self.timers {
            entries.extend(heap.drain());
        }
        entries.sort();
        self.timers = (0..n).map(|_| BinaryHeap::new()).collect();
        for e in entries {
            let Reverse((_, _, idx)) = e;
            self.timers[self.shard_map.slot_shard(idx)].push(e);
        }
        // Waiters: route each registration to its resource's shard.
        let mut regs: Vec<(ResourceId, Vec<usize>)> = Vec::new();
        for table in &mut self.waiters {
            regs.extend(table.drain_all());
        }
        regs.sort_by_key(|(r, _)| r.0);
        self.waiters = (0..n).map(|_| WaiterTable::default()).collect();
        for (r, slots) in regs {
            let shard = self.shard_map.resource_shard(r);
            for slot in slots {
                self.waiters[shard].push(r, slot);
            }
        }
        self.mailboxes = (0..n).map(|_| Vec::new()).collect();
        self.shard_tally = vec![[0, 0]; n];
        self.shard_totals = vec![[0, 0]; n];
    }

    /// Attribute an engine to a shard (its rack bucket). Safe at any
    /// time: enqueued ready/parked membership and pending timers follow
    /// the slot to its new shard.
    pub fn assign_engine_shard(&mut self, id: EngineId, shard: usize) {
        let idx = id.0 as usize;
        if idx >= self.slots.len() || self.slots[idx].id != id {
            return;
        }
        let shard = if shard < self.shard_map.shards {
            shard
        } else {
            0
        };
        let old = self.shard_map.slot_shard(idx);
        if old == shard {
            self.shard_map.assign_slot(idx, shard);
            return;
        }
        self.shard_map.assign_slot(idx, shard);
        if self.ready.remove(old, idx) {
            self.ready.insert(shard, idx);
        }
        if self.any_parked.remove(old, idx) {
            self.any_parked.insert(shard, idx);
        }
        // Move any live timer entries for this slot.
        let moved: Vec<_> = {
            let heap = &mut self.timers[old];
            let mut keep = BinaryHeap::with_capacity(heap.len());
            let mut moved = Vec::new();
            for e in heap.drain() {
                if e.0 .2 == idx {
                    moved.push(e);
                } else {
                    keep.push(e);
                }
            }
            *heap = keep;
            moved
        };
        for e in moved {
            self.timers[shard].push(e);
        }
    }

    /// Attribute a resource `(kind, index)` to a shard. Live waiter
    /// registrations on the resource move with it.
    pub fn set_resource_shard(&mut self, kind: u32, index: u32, shard: usize) {
        let shard = if shard < self.shard_map.shards {
            shard
        } else {
            0
        };
        let r = ResourceId::new(kind, index);
        let old = self.shard_map.resource_shard(r);
        self.shard_map.assign_resource(kind, index, shard);
        if old != shard {
            let waiting = self.waiters[old].take(r);
            for slot in waiting {
                self.waiters[shard].push(r, slot);
            }
        }
    }

    /// Select the scheduler explicitly (overrides the environment default).
    /// Switching to wake-driven re-readies every live engine so no parked
    /// state is stranded.
    pub fn set_naive(&mut self, naive: bool) {
        if self.naive == naive {
            return;
        }
        self.naive = naive;
        if !naive {
            let mut readied = Vec::new();
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if !slot.finished {
                    slot.park_epoch += 1;
                    slot.registered.clear();
                    slot.parked_any = false;
                    readied.push(i);
                }
            }
            for i in readied {
                self.ready.insert(self.shard_map.slot_shard(i), i);
            }
            self.any_parked.clear();
            for table in &mut self.waiters {
                table.clear();
            }
            for heap in &mut self.timers {
                heap.clear();
            }
        }
    }

    /// Whether the naive round-robin oracle is selected.
    pub fn is_naive(&self) -> bool {
        self.naive
    }

    /// Add an engine; returns its id. The engine is polled starting with
    /// the next scheduler call.
    pub fn spawn(&mut self, engine: Box<dyn Engine<Cx>>) -> EngineId {
        self.spawn_slot(EngineBox::Local(engine))
    }

    /// Add a thread-safe engine, eligible for the concurrent plan phase:
    /// when the wave scheduler runs with workers > 1, this engine's
    /// [`Engine::plan`] may execute on a worker thread against the
    /// frozen context, concurrently with the plans of every other
    /// non-conflicting engine in its wave. Commit order (and therefore
    /// every observable effect) is unchanged.
    pub fn spawn_par(&mut self, engine: Box<dyn Engine<Cx> + Send + Sync>) -> EngineId {
        self.spawn_slot(EngineBox::Par(engine))
    }

    fn spawn_slot(&mut self, engine: EngineBox<Cx>) -> EngineId {
        let id = EngineId(self.next_id);
        self.next_id += 1;
        let index = self.slots.len();
        debug_assert_eq!(index, id.0 as usize, "slot index tracks engine id");
        self.slots.push(Slot {
            id,
            engine: Some(engine),
            finished: false,
            park_epoch: 0,
            registered: Vec::new(),
            parked_any: false,
            call_stamp: 0,
            call_polls: 0,
        });
        self.live += 1;
        self.ready.insert(self.shard_map.slot_shard(index), index);
        id
    }

    /// Number of live (non-finished) engines. O(1).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Cumulative number of `progress` calls.
    pub fn poll_count(&self) -> u64 {
        self.polls
    }

    /// Cumulative `progress` calls that returned [`Poll::Idle`].
    pub fn wasted_poll_count(&self) -> u64 {
        self.wasted_polls
    }

    /// Cumulative parked→ready transitions (wake-driven scheduler only;
    /// the oracle never parks, so this stays 0 there).
    pub fn wake_count(&self) -> u64 {
        self.wakes
    }

    /// Worker count the wave scheduler is configured for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Set the worker count (overrides the `MCCS_SIM_WORKERS` default).
    /// 1 selects the purely sequential sweep; values above 1 engage the
    /// conflict-wave partition with barrier-merged counters. Observable
    /// behaviour is identical at every setting by construction.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Conflict waves formed by the wave scheduler (0 until `workers > 1`).
    pub fn wave_count(&self) -> u64 {
        self.waves
    }

    /// Largest conflict group observed in any wave.
    pub fn max_group_size(&self) -> u64 {
        self.max_group
    }

    /// Commits that consumed a concurrently computed plan.
    pub fn planned_poll_count(&self) -> u64 {
        self.planned_polls
    }

    /// Plans voided before their commit (mid-sweep joiners, unreached
    /// commits).
    pub fn dropped_plan_count(&self) -> u64 {
        self.dropped_plans
    }

    /// Cumulative `[polls, wasted]` per shard — the per-shard tallies
    /// whose ascending-shard merge produces [`Self::poll_count`] /
    /// [`Self::wasted_poll_count`]. Wave-partitioned rounds tally per
    /// conflict group instead (a finer partition) and merge at the wave
    /// barrier, so under workers > 1 the per-shard view only covers the
    /// sequential rounds.
    pub fn per_shard_polls(&self) -> Vec<(u64, u64)> {
        self.shard_totals.iter().map(|t| (t[0], t[1])).collect()
    }

    /// Drive the selected scheduler until the pool is quiescent. Returns
    /// the number of engines that finished during this call.
    pub fn poll(&mut self, cx: &mut Cx) -> usize
    where
        Cx: WakeSource + Sync,
    {
        if self.naive {
            // The oracle ignores wake signals; drain them so the context's
            // buffer cannot grow without bound over a long run.
            self.signal_scratch.clear();
            cx.drain_signals(&mut self.signal_scratch);
            self.signal_scratch.clear();
            self.poll_until_quiescent(cx)
        } else {
            self.poll_ready(cx)
        }
    }

    /// Poll every live engine round-robin until a full pass makes no
    /// progress (every engine returns [`Poll::Idle`]). Returns the number
    /// of engines that finished during this call.
    ///
    /// This is the naive oracle scheduler: O(live engines) per pass no
    /// matter how little happened. [`RuntimePool::poll`] dispatches here
    /// only when naive mode is selected, but the method stays public so
    /// differential tests can drive it directly.
    ///
    /// Termination: each pass either observes progress (bounded by the
    /// engines' own state machines, which are driven by finite queues and
    /// a finite event horizon) or exits. A runaway engine that always
    /// claims progress trips the `pass_limit` safety valve with a panic
    /// naming the engines still reporting progress, which in practice
    /// catches engine bugs immediately in tests.
    pub fn poll_until_quiescent(&mut self, cx: &mut Cx) -> usize {
        let pass_limit = SPIN_LIMIT;
        let mut passes = 0;
        let mut finished_now = 0;
        loop {
            let mut any_progress = false;
            self.round_progressed.clear();
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if slot.finished {
                    continue;
                }
                let shard = self.shard_map.slot_shard(i);
                self.shard_tally[shard][0] += 1;
                match slot
                    .engine
                    .as_mut()
                    .expect("live engine")
                    .get_mut()
                    .progress(cx)
                {
                    Poll::Progressed => {
                        any_progress = true;
                        self.round_progressed.push(i);
                    }
                    Poll::Idle => self.shard_tally[shard][1] += 1,
                    Poll::Finished => {
                        slot.finished = true;
                        slot.engine = None;
                        self.live -= 1;
                        finished_now += 1;
                        any_progress = true;
                    }
                }
            }
            if !any_progress {
                self.merge_shard_tallies();
                break;
            }
            passes += 1;
            if passes >= pass_limit {
                let spinners: Vec<String> = self
                    .round_progressed
                    .iter()
                    .map(|&i| {
                        let s = &self.slots[i];
                        let shard = self.shard_map.slot_shard(i);
                        match &s.engine {
                            Some(e) => format!("{} {} (shard {shard})", s.id, e.get().name()),
                            None => format!("{} <finished> (shard {shard})", s.id),
                        }
                    })
                    .collect();
                panic!(
                    "engine pool failed to quiesce after {pass_limit} passes; \
                     an engine is spinning (always reporting progress); \
                     engines that progressed in the final pass: {spinners:?}"
                );
            }
        }
        finished_now
    }

    /// Wake-driven scheduler: poll only engines that are ready — newly
    /// spawned, signalled since the last call, past their deadline, or
    /// parked with [`Wake::Any`] — in rounds that mirror the naive passes.
    /// Returns the number of engines that finished during this call.
    pub fn poll_ready(&mut self, cx: &mut Cx) -> usize
    where
        Cx: WakeSource + Sync,
    {
        self.call_seq += 1;
        let now = cx.now();
        // Release timers that have come due, scanning every shard's heap
        // head: a deadline parked on a quiet shard wakes exactly like one
        // on a busy shard (release order across shards is irrelevant —
        // woken slots land in the ready sets, which re-merge into slot
        // order).
        for shard in 0..self.timers.len() {
            loop {
                let due = match self.timers[shard].peek() {
                    Some(&Reverse((t, epoch, idx))) if t <= now => (epoch, idx),
                    _ => break,
                };
                self.timers[shard].pop();
                let (epoch, idx) = due;
                if !self.slots[idx].finished && self.slots[idx].park_epoch == epoch {
                    self.wake(idx, None, None);
                }
            }
        }
        // Absorb signals raised since the last scheduler call.
        self.absorb_signals(cx, None, None);

        let mut finished_now = 0;
        loop {
            // Round set: explicitly readied engines plus every Any-parked
            // engine (the naive scheduler polls those each pass too).
            // Shards merge back into one ascending-slot set here — the
            // facade's global order is re-established at every round.
            let mut round: BTreeSet<usize> = BTreeSet::new();
            self.ready.drain_into(&mut round);
            self.any_parked.extend_into(&mut round);
            if round.is_empty() {
                break;
            }
            let mut progressed_any = false;
            self.round_progressed.clear();
            // With workers configured, partition the round into conflict
            // waves: groups whose declared footprints are pairwise
            // disjoint, eligible to run on separate workers. Commit
            // bodies still execute in slot order below — the
            // deterministic merge that keeps every digest byte-identical
            // to the sequential sweep — but plan-capable singleton
            // groups run their read phase concurrently on the worker
            // pool when the sweep reaches their wave, and per-group
            // counters accumulate apart and fold in at the wave barrier.
            let wave_stats = self.workers > 1;
            if wave_stats {
                self.partition_round(&round, cx);
            }
            // Plans computed for the in-flight wave, keyed by slot; the
            // cursor through `wave_sets` advances as the sweep reaches
            // each wave's first member.
            let mut wave_plans: HashMap<usize, EnginePlan> = HashMap::new();
            let mut next_wave = 0usize;
            // Sweep in slot order with a monotone cursor, exactly like a
            // naive pass restricted to ready engines. Engines woken during
            // the sweep join this round if their slot is still ahead of
            // the cursor, otherwise the next one — matching when the
            // naive pass would reach them.
            while let Some(&idx) = round.iter().next() {
                round.remove(&idx);
                let cursor = Some(idx);
                if self.slots[idx].finished {
                    continue;
                }
                if wave_stats {
                    if self.group_of.contains_key(&idx) {
                        // Entering a new wave: every earlier slot has
                        // retired, so the context now *is* the frozen
                        // view the wave's plans will read. Plan-capable
                        // singleton groups of the wave run their read
                        // phase here, concurrently when there are
                        // enough of them to pay for the dispatch.
                        while next_wave < self.wave_sets.len() && idx >= self.wave_sets[next_wave].0
                        {
                            let members = std::mem::take(&mut self.wave_sets[next_wave].1);
                            next_wave += 1;
                            let todo: Vec<usize> = members
                                .into_iter()
                                .filter(|&m| {
                                    (m == idx || round.contains(&m)) && !self.slots[m].finished
                                })
                                .collect();
                            if !todo.is_empty() {
                                self.plan_wave(cx, &todo, &mut wave_plans);
                            }
                        }
                    } else if !wave_plans.is_empty() {
                        // A mid-sweep joiner is about to commit effects
                        // the outstanding plans did not see. Plans are
                        // free to drop — void them all (conservative but
                        // always sound); the affected engines fall back
                        // to the in-place path.
                        self.dropped_plans += wave_plans.len() as u64;
                        wave_plans.clear();
                    }
                }
                // The engine is about to run: whatever parked state it held
                // is consumed (it re-declares on its next Idle).
                self.clear_registrations(idx);
                let home = self.shard_map.slot_shard(idx);
                self.any_parked.remove(home, idx);
                {
                    let slot = &mut self.slots[idx];
                    slot.park_epoch += 1;
                    slot.parked_any = false;
                    if slot.call_stamp != self.call_seq {
                        slot.call_stamp = self.call_seq;
                        slot.call_polls = 0;
                    }
                    slot.call_polls += 1;
                }
                let over_limit = self.slots[idx].call_polls > SPIN_LIMIT;
                // Every poll tallies to its engine's home shard; the
                // buffer merges into the totals in ascending shard order
                // at the wave barrier (wave mode) or at call end, so the
                // per-shard breakdown always sums to the pool counters.
                self.shard_tally[home][0] += 1;
                let plan = wave_plans.remove(&idx);
                if plan.is_some() {
                    self.planned_polls += 1;
                }
                let engine = self.slots[idx].engine.as_mut().expect("live engine");
                let poll = match plan {
                    Some(plan) => engine.get_mut().progress_planned(cx, plan),
                    None => engine.get_mut().progress(cx),
                };
                match poll {
                    Poll::Progressed => {
                        progressed_any = true;
                        self.round_progressed.push(idx);
                        // Its effects may ready parked peers; deliver them
                        // with naive-pass ordering.
                        self.absorb_signals(cx, cursor, Some(&mut round));
                        // A progressing engine is re-polled next round,
                        // like the naive scheduler's next pass.
                        self.ready.insert(home, idx);
                    }
                    Poll::Idle => {
                        self.shard_tally[home][1] += 1;
                        self.park(idx, cx);
                    }
                    Poll::Finished => {
                        progressed_any = true;
                        let slot = &mut self.slots[idx];
                        slot.finished = true;
                        slot.engine = None;
                        self.live -= 1;
                        finished_now += 1;
                        self.absorb_signals(cx, cursor, Some(&mut round));
                    }
                }
                if over_limit {
                    let spinners: Vec<String> = self
                        .round_progressed
                        .iter()
                        .map(|&i| {
                            let s = &self.slots[i];
                            let shard = self.shard_map.slot_shard(i);
                            match &s.engine {
                                Some(e) => format!("{} {} (shard {shard})", s.id, e.get().name()),
                                None => format!("{} <finished> (shard {shard})", s.id),
                            }
                        })
                        .collect();
                    panic!(
                        "engine pool failed to quiesce after {SPIN_LIMIT} polls of one \
                         engine in a single scheduler call (slot {idx}, shard {home}); \
                         an engine is spinning (always reporting progress); \
                         recent progress from: {spinners:?}"
                    );
                }
            }
            // Plans whose commit never arrived (their engine finished or
            // was superseded mid-round) are discarded, never replayed.
            if !wave_plans.is_empty() {
                self.dropped_plans += wave_plans.len() as u64;
            }
            if wave_stats {
                // The wave barrier: every group has retired, fold the
                // per-shard counters into the pool totals.
                self.merge_shard_tallies();
            }
            if !progressed_any {
                // A full round of pure idles — the naive scheduler would
                // stop here too. Engines left in `ready` keep their slot
                // for the next call.
                break;
            }
        }
        self.merge_shard_tallies();
        finished_now
    }

    /// Run the read phase for a wave's plan-capable singleton groups:
    /// every member's `plan` is called against the frozen context, on
    /// the worker pool when the batch is large enough to amortize the
    /// dispatch, inline otherwise (bit-identical either way — plans are
    /// pure reads merged by slot).
    fn plan_wave(&self, cx: &Cx, members: &[usize], out: &mut HashMap<usize, EnginePlan>)
    where
        Cx: Sync,
    {
        let jobs: Vec<(usize, &(dyn Engine<Cx> + Send + Sync))> = members
            .iter()
            .filter_map(|&m| {
                self.slots[m]
                    .engine
                    .as_ref()
                    .and_then(EngineBox::par)
                    .map(|e| (m, e))
            })
            .collect();
        let plans: Vec<Option<EnginePlan>> = if self.workers > 1 && jobs.len() >= PLAN_DISPATCH_MIN
        {
            let shared: &Cx = cx;
            let jobs_ref = &jobs;
            Workers::new(self.workers).run(jobs.len(), move |i| jobs_ref[i].1.plan(shared))
        } else {
            jobs.iter().map(|(_, e)| e.plan(cx)).collect()
        };
        for ((m, _), plan) in jobs.iter().zip(plans) {
            if let Some(plan) = plan {
                out.insert(*m, plan);
            }
        }
    }

    /// Fold the per-shard sequential tallies into the pool totals, in
    /// ascending shard order (the deterministic merge the satellite
    /// counters rely on).
    fn merge_shard_tallies(&mut self) {
        for (shard, tally) in self.shard_tally.iter_mut().enumerate() {
            let [polls, wasted] = std::mem::take(tally);
            self.polls += polls;
            self.wasted_polls += wasted;
            self.shard_totals[shard][0] += polls;
            self.shard_totals[shard][1] += wasted;
        }
    }

    /// Build the conflict-wave partition of a round snapshot: query each
    /// ready engine's [`Footprint`], split the round into waves of
    /// disjoint groups, and record the wave/max-group gauges plus the
    /// slot→group map the sweep tallies against.
    fn partition_round(&mut self, round: &BTreeSet<usize>, cx: &Cx) {
        self.group_of.clear();
        self.wave_sets.clear();
        let entries: Vec<(usize, Footprint)> = round
            .iter()
            .filter(|&&i| !self.slots[i].finished)
            .map(|&i| {
                let fp = self.slots[i]
                    .engine
                    .as_ref()
                    .expect("live engine")
                    .get()
                    .footprint(cx);
                (i, fp)
            })
            .collect();
        for wave in partition(&entries) {
            self.waves += 1;
            self.max_group = self.max_group.max(wave.max_group() as u64);
            // Plan-capable members of this wave: singleton groups (a
            // multi-member group self-conflicts — its members see each
            // other's commits, so only the first could soundly plan and
            // the bookkeeping is not worth one plan) whose engine was
            // spawned thread-safe.
            let mut plannable: Vec<usize> = Vec::new();
            let mut first = usize::MAX;
            for group in &wave.groups {
                first = first.min(group[0]);
                if group.len() == 1 {
                    let s = group[0];
                    if self.slots[s]
                        .engine
                        .as_ref()
                        .is_some_and(|e| e.par().is_some())
                    {
                        plannable.push(s);
                    }
                }
            }
            plannable.sort_unstable();
            for (ordinal, group) in wave.groups.into_iter().enumerate() {
                for slot in group {
                    self.group_of.insert(slot, ordinal);
                }
            }
            if first != usize::MAX {
                self.wave_sets.push((first, plannable));
            }
        }
    }

    /// Park `idx` according to its declared wake condition.
    fn park(&mut self, idx: usize, cx: &Cx)
    where
        Cx: WakeSource,
    {
        let now = cx.now();
        let wake = self.slots[idx]
            .engine
            .as_ref()
            .expect("live engine")
            .get()
            .wake_when(cx);
        let home = self.shard_map.slot_shard(idx);
        match wake {
            Wake::Any => {
                self.slots[idx].parked_any = true;
                self.any_parked.insert(home, idx);
            }
            Wake::On {
                resources,
                deadline,
            } => {
                match deadline {
                    Some(d) if d <= now => {
                        // The deadline is already due: the naive scheduler
                        // would simply poll again next pass, so stay ready
                        // (the round loop still terminates — a round of
                        // pure idles exits regardless of the ready set).
                        self.ready.insert(home, idx);
                        return;
                    }
                    Some(d) => {
                        // Timers ride the *slot's* shard; release scans
                        // every shard head, so a cross-shard wait (rack-A
                        // engine, rack-B deadline setter) cannot be masked.
                        let epoch = self.slots[idx].park_epoch;
                        self.timers[home].push(Reverse((d, epoch, idx)));
                    }
                    None => {}
                }
                for r in &resources {
                    // Registrations ride the *resource's* shard: a slot in
                    // rack A waiting on rack B's queue registers in rack
                    // B's table, where the signal will arrive.
                    self.waiters[self.shard_map.resource_shard(*r)].push(*r, idx);
                }
                self.slots[idx].registered = resources;
            }
        }
    }

    /// Drain the context's signals and ready every engine registered on
    /// them. `cursor`/`round` place woken engines into the in-flight round
    /// when the sweep has not passed their slot yet (naive-pass ordering);
    /// outside a round both are `None` and wakes land in `self.ready`.
    fn absorb_signals(
        &mut self,
        cx: &mut Cx,
        cursor: Option<usize>,
        mut round: Option<&mut BTreeSet<usize>>,
    ) where
        Cx: WakeSource,
    {
        let mut sigs = std::mem::take(&mut self.signal_scratch);
        sigs.clear();
        cx.drain_signals(&mut sigs);
        if self.shard_map.shards > 1 {
            // Cross-shard mailbox: route each signal to its resource's
            // shard, then drain the mailboxes in ascending shard order —
            // the deterministic epoch boundary for inter-rack effects.
            // The reorder relative to the raw signal stream is
            // unobservable: waiter lists are taken whole, each waiter
            // wakes at most once (`registered` empties on the first
            // hit), and woken slots re-merge into slot order before any
            // engine runs.
            for r in sigs.drain(..) {
                self.mailboxes[self.shard_map.resource_shard(r)].push(r);
            }
            for shard in 0..self.mailboxes.len() {
                let mut batch = std::mem::take(&mut self.mailboxes[shard]);
                for r in batch.drain(..) {
                    let list = self.waiters[shard].take(r);
                    for idx in list {
                        if self.slots[idx].finished || self.slots[idx].registered.is_empty() {
                            continue;
                        }
                        self.wake(idx, cursor, round.as_deref_mut());
                    }
                }
                // Hand the (emptied) buffer back for reuse.
                self.mailboxes[shard] = batch;
            }
        } else {
            for r in &sigs {
                let list = self.waiters[0].take(*r);
                for idx in list {
                    if self.slots[idx].finished || self.slots[idx].registered.is_empty() {
                        continue;
                    }
                    self.wake(idx, cursor, round.as_deref_mut());
                }
            }
        }
        self.signal_scratch = sigs;
    }

    /// Transition a parked slot to ready: clear its registrations, bump
    /// its epoch (invalidating any timer), and queue it for polling.
    fn wake(&mut self, idx: usize, cursor: Option<usize>, round: Option<&mut BTreeSet<usize>>) {
        self.clear_registrations(idx);
        let home = self.shard_map.slot_shard(idx);
        let slot = &mut self.slots[idx];
        slot.park_epoch += 1;
        if slot.parked_any {
            slot.parked_any = false;
            self.any_parked.remove(home, idx);
        }
        self.wakes += 1;
        match (cursor, round) {
            (Some(c), Some(round)) if idx > c => {
                round.insert(idx);
            }
            _ => {
                self.ready.insert(home, idx);
            }
        }
    }

    /// Remove `idx` from every waiter list it registered on.
    fn clear_registrations(&mut self, idx: usize) {
        let regs = std::mem::take(&mut self.slots[idx].registered);
        for r in &regs {
            self.waiters[self.shard_map.resource_shard(*r)].remove_slot(*r, idx);
        }
    }

    /// Names of live engines, for debugging deadlocks.
    pub fn live_names(&self) -> Vec<(EngineId, String)> {
        self.slots
            .iter()
            .filter(|s| !s.finished)
            .map(|s| (s.id, s.engine.as_ref().expect("live engine").get().name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nanos;

    /// Counts down; progresses once per poll until it finishes.
    struct Countdown {
        left: u32,
    }

    impl Engine<u32> for Countdown {
        fn progress(&mut self, total: &mut u32) -> Poll {
            if self.left == 0 {
                return Poll::Finished;
            }
            self.left -= 1;
            *total += 1;
            Poll::Progressed
        }
        fn name(&self) -> String {
            format!("countdown({})", self.left)
        }
    }

    /// Waits until the shared counter reaches a threshold, then finishes —
    /// exercises inter-engine progress dependencies.
    struct WaitFor {
        threshold: u32,
    }

    impl Engine<u32> for WaitFor {
        fn progress(&mut self, total: &mut u32) -> Poll {
            if *total >= self.threshold {
                Poll::Finished
            } else {
                Poll::Idle
            }
        }
    }

    #[test]
    fn pool_runs_engines_to_completion() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(Countdown { left: 5 }));
        pool.spawn(Box::new(Countdown { left: 3 }));
        let mut total = 0;
        let finished = pool.poll_until_quiescent(&mut total);
        assert_eq!(finished, 2);
        assert_eq!(total, 8);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn idle_engines_wake_when_dependency_progresses() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        // The waiter is spawned FIRST so a naive single pass would see it
        // idle before the countdown runs; quiescence polling must re-poll it.
        pool.spawn(Box::new(WaitFor { threshold: 4 }));
        pool.spawn(Box::new(Countdown { left: 4 }));
        let mut total = 0;
        let finished = pool.poll_until_quiescent(&mut total);
        assert_eq!(finished, 2);
    }

    #[test]
    fn waiter_stays_live_without_input() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(WaitFor { threshold: 1 }));
        let mut total = 0;
        assert_eq!(pool.poll_until_quiescent(&mut total), 0);
        assert_eq!(pool.live(), 1);
        // External input arrives; the pool picks it up on the next poll.
        total = 1;
        assert_eq!(pool.poll_until_quiescent(&mut total), 1);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn ids_are_unique_and_names_reported() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        let a = pool.spawn(Box::new(Countdown { left: 1 }));
        let b = pool.spawn(Box::new(Countdown { left: 1 }));
        assert_ne!(a, b);
        let names = pool.live_names();
        assert_eq!(names.len(), 2);
        assert!(names[0].1.starts_with("countdown"));
    }

    #[test]
    #[should_panic(expected = "spinning")]
    fn spinning_engine_is_detected() {
        struct Spin;
        impl Engine<u32> for Spin {
            fn progress(&mut self, _: &mut u32) -> Poll {
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(Spin));
        pool.poll_until_quiescent(&mut 0);
    }

    #[test]
    fn spin_panic_names_the_offender() {
        struct Spin;
        impl Engine<u32> for Spin {
            fn progress(&mut self, _: &mut u32) -> Poll {
                Poll::Progressed
            }
            fn name(&self) -> String {
                "spinner-under-test".to_owned()
            }
        }
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        pool.spawn(Box::new(WaitFor {
            threshold: u32::MAX,
        }));
        pool.spawn(Box::new(Spin));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.poll_until_quiescent(&mut 0);
        }))
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("spinner-under-test"), "panic was: {msg}");
        assert!(
            !msg.contains("engine#0"),
            "idle waiter must not be blamed: {msg}"
        );
    }

    // ---- wake-driven scheduler ---------------------------------------------

    /// Minimal context for wake-driven tests: a clock, a signal buffer and
    /// a shared scratch counter engines communicate through.
    #[derive(Default)]
    struct TestCx {
        now: Nanos,
        signals: Vec<ResourceId>,
        total: u32,
    }

    impl WakeSource for TestCx {
        fn now(&self) -> Nanos {
            self.now
        }
        fn drain_signals(&mut self, into: &mut Vec<ResourceId>) {
            into.append(&mut self.signals);
        }
    }

    const RES_A: ResourceId = ResourceId::new(1, 0);

    /// Counts down, signalling RES_A on every step.
    struct SignallingCountdown {
        left: u32,
    }

    impl Engine<TestCx> for SignallingCountdown {
        fn progress(&mut self, cx: &mut TestCx) -> Poll {
            if self.left == 0 {
                return Poll::Finished;
            }
            self.left -= 1;
            cx.total += 1;
            cx.signals.push(RES_A);
            Poll::Progressed
        }
    }

    /// Finishes once the counter reaches a threshold; parks on a resource.
    struct ResourceWaiter {
        threshold: u32,
        resource: ResourceId,
        polls: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl ResourceWaiter {
        fn on_a(threshold: u32, polls: std::rc::Rc<std::cell::Cell<u32>>) -> Self {
            ResourceWaiter {
                threshold,
                resource: RES_A,
                polls,
            }
        }
    }

    impl Engine<TestCx> for ResourceWaiter {
        fn progress(&mut self, cx: &mut TestCx) -> Poll {
            self.polls.set(self.polls.get() + 1);
            if cx.total >= self.threshold {
                Poll::Finished
            } else {
                Poll::Idle
            }
        }
        fn wake_when(&self, _: &TestCx) -> Wake {
            Wake::on(vec![self.resource])
        }
    }

    /// Finishes once the clock reaches a deadline; parks on that deadline.
    struct DeadlineWaiter {
        at: Nanos,
    }

    impl Engine<TestCx> for DeadlineWaiter {
        fn progress(&mut self, cx: &mut TestCx) -> Poll {
            if cx.now >= self.at {
                Poll::Finished
            } else {
                Poll::Idle
            }
        }
        fn wake_when(&self, _: &TestCx) -> Wake {
            Wake::at(self.at)
        }
    }

    #[test]
    fn wake_driven_runs_signalled_waiters() {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        let polls = std::rc::Rc::new(std::cell::Cell::new(0));
        pool.spawn(Box::new(ResourceWaiter::on_a(3, polls.clone())));
        pool.spawn(Box::new(SignallingCountdown { left: 3 }));
        let mut cx = TestCx::default();
        let finished = pool.poll_ready(&mut cx);
        assert_eq!(finished, 2);
        assert_eq!(cx.total, 3);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn parked_engine_is_not_re_polled_without_its_resource() {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        let polls = std::rc::Rc::new(std::cell::Cell::new(0));
        pool.spawn(Box::new(ResourceWaiter::on_a(100, polls.clone())));
        let mut cx = TestCx::default();
        pool.poll_ready(&mut cx);
        let after_first = polls.get();
        assert_eq!(after_first, 1, "polled once then parked");
        // Scheduler calls without the resource signal must skip it.
        for _ in 0..10 {
            pool.poll_ready(&mut cx);
        }
        assert_eq!(polls.get(), after_first, "no polls while parked");
        // Signal arrives: exactly one wake.
        cx.signals.push(RES_A);
        pool.poll_ready(&mut cx);
        assert_eq!(polls.get(), after_first + 1);
        assert_eq!(pool.wake_count(), 1);
    }

    #[test]
    fn spill_indexed_resources_still_wake() {
        // Resource indices past the dense-table bound take the spill-map
        // path through WaiterTable; semantics must be identical.
        let big = ResourceId::new(7, u32::MAX);
        assert!(big.index() as usize >= DENSE_WAITER_LIMIT);
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        let polls = std::rc::Rc::new(std::cell::Cell::new(0));
        pool.spawn(Box::new(ResourceWaiter {
            threshold: 1,
            resource: big,
            polls: polls.clone(),
        }));
        let mut cx = TestCx::default();
        pool.poll_ready(&mut cx);
        assert_eq!(polls.get(), 1, "polled once then parked on spill index");
        for _ in 0..5 {
            pool.poll_ready(&mut cx);
        }
        assert_eq!(polls.get(), 1, "no wake without the signal");
        cx.total = 1;
        cx.signals.push(big);
        assert_eq!(pool.poll_ready(&mut cx), 1);
        assert_eq!(polls.get(), 2);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn deadline_wakes_engine_when_time_reaches_it() {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.spawn(Box::new(DeadlineWaiter {
            at: Nanos::from_micros(10),
        }));
        let mut cx = TestCx::default();
        assert_eq!(pool.poll_ready(&mut cx), 0);
        cx.now = Nanos::from_micros(5);
        assert_eq!(pool.poll_ready(&mut cx), 0, "deadline not due yet");
        assert_eq!(pool.live(), 1);
        cx.now = Nanos::from_micros(10);
        assert_eq!(pool.poll_ready(&mut cx), 1);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn any_parked_engines_follow_naive_semantics() {
        // WaitFor-style engine with no wake_when: defaults to Wake::Any and
        // must still observe progress made by other engines.
        struct AnyWaiter {
            threshold: u32,
        }
        impl Engine<TestCx> for AnyWaiter {
            fn progress(&mut self, cx: &mut TestCx) -> Poll {
                if cx.total >= self.threshold {
                    Poll::Finished
                } else {
                    Poll::Idle
                }
            }
        }
        struct QuietCountdown {
            left: u32,
        }
        impl Engine<TestCx> for QuietCountdown {
            fn progress(&mut self, cx: &mut TestCx) -> Poll {
                if self.left == 0 {
                    return Poll::Finished;
                }
                self.left -= 1;
                cx.total += 1;
                // Note: no signal — only Wake::Any engines may observe this.
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.spawn(Box::new(AnyWaiter { threshold: 4 }));
        pool.spawn(Box::new(QuietCountdown { left: 4 }));
        let mut cx = TestCx::default();
        assert_eq!(pool.poll_ready(&mut cx), 2);
    }

    #[test]
    fn wake_driven_skips_idle_engines_that_naive_repolls() {
        // 1 worker + N parked waiters: the naive scheduler pays N wasted
        // polls per pass, the wake-driven one only the initial park.
        let n = 50;
        let steps = 20;
        let run = |naive: bool| -> u64 {
            let mut pool: RuntimePool<TestCx> = RuntimePool::new();
            pool.set_naive(naive);
            for _ in 0..n {
                // Watch a resource nothing ever signals: these engines are
                // pure idle ballast the wake-driven scheduler must skip.
                pool.spawn(Box::new(ResourceWaiter {
                    threshold: u32::MAX,
                    resource: ResourceId::new(9, 9),
                    polls: std::rc::Rc::new(std::cell::Cell::new(0)),
                }));
            }
            pool.spawn(Box::new(SignallingCountdown { left: steps }));
            let mut cx = TestCx::default();
            pool.poll(&mut cx);
            pool.wasted_poll_count()
        };
        let naive_wasted = run(true);
        let wake_wasted = run(false);
        assert!(
            wake_wasted * 10 <= naive_wasted,
            "wake-driven wasted {wake_wasted}, naive wasted {naive_wasted}"
        );
    }

    #[test]
    fn live_count_stays_cached_and_correct() {
        let mut pool: RuntimePool<u32> = RuntimePool::new();
        assert_eq!(pool.live(), 0);
        pool.spawn(Box::new(Countdown { left: 2 }));
        pool.spawn(Box::new(WaitFor { threshold: 10 }));
        assert_eq!(pool.live(), 2);
        let mut total = 0;
        pool.poll_until_quiescent(&mut total);
        assert_eq!(pool.live(), 1, "countdown finished, waiter parked");
        total = 10;
        pool.poll_until_quiescent(&mut total);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    #[should_panic(expected = "spinning")]
    fn wake_driven_detects_spinning_engine() {
        struct Spin;
        impl Engine<TestCx> for Spin {
            fn progress(&mut self, _: &mut TestCx) -> Poll {
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.spawn(Box::new(Spin));
        pool.poll_ready(&mut TestCx::default());
    }

    // ---- wave scheduler (workers > 1) --------------------------------------

    /// Run the interleaved waiter/countdown workload at a worker count
    /// and return everything observable plus the scheduler counters.
    fn run_interleaved(workers: usize) -> (u32, u64, u64, u64) {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_workers(workers);
        for t in [2, 5, 1, 4, 3] {
            pool.spawn(Box::new(ResourceWaiter::on_a(
                t,
                std::rc::Rc::new(std::cell::Cell::new(0)),
            )));
        }
        pool.spawn(Box::new(SignallingCountdown { left: 5 }));
        let mut cx = TestCx::default();
        pool.poll(&mut cx);
        assert_eq!(pool.live(), 0, "workers={workers}");
        (
            cx.total,
            pool.poll_count(),
            pool.wasted_poll_count(),
            pool.wake_count(),
        )
    }

    #[test]
    fn worker_count_is_observably_invisible() {
        // Not just the outcome: the barrier-merged counters must equal
        // the sequential scheduler's exactly, at every worker count.
        let seq = run_interleaved(1);
        for n in [2, 8] {
            assert_eq!(seq, run_interleaved(n), "workers={n}");
        }
    }

    #[test]
    fn wave_gauges_populate_under_workers() {
        struct FootedWaiter {
            resource: ResourceId,
            threshold: u32,
        }
        impl Engine<TestCx> for FootedWaiter {
            fn progress(&mut self, cx: &mut TestCx) -> Poll {
                if cx.total >= self.threshold {
                    Poll::Finished
                } else {
                    Poll::Idle
                }
            }
            fn wake_when(&self, _: &TestCx) -> Wake {
                Wake::on(vec![self.resource])
            }
            fn footprint(&self, _: &TestCx) -> crate::conflict::Footprint {
                crate::conflict::Footprint::Resources(vec![self.resource])
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_workers(8);
        // Four waiters on four distinct resources: one wave, four groups.
        for i in 0..4 {
            pool.spawn(Box::new(FootedWaiter {
                resource: ResourceId::new(3, i),
                threshold: 1,
            }));
        }
        let mut cx = TestCx::default();
        pool.poll_ready(&mut cx);
        assert!(pool.wave_count() >= 1, "waves: {}", pool.wave_count());
        assert_eq!(pool.max_group_size(), 1, "disjoint footprints");
        assert_eq!(pool.poll_count(), 4, "barrier merge kept the totals");
        assert_eq!(pool.wasted_poll_count(), 4);
        // Default-footprint engines serialize: an exclusive engine in the
        // round makes singleton waves.
        pool.spawn(Box::new(SignallingCountdown { left: 2 }));
        cx.total = 1;
        cx.signals.push(ResourceId::new(3, 0));
        pool.poll_ready(&mut cx);
        assert!(pool.max_group_size() >= 1);
    }

    #[test]
    #[should_panic(expected = "spinning")]
    fn wave_scheduler_detects_spinning_engine() {
        struct Spin;
        impl Engine<TestCx> for Spin {
            fn progress(&mut self, _: &mut TestCx) -> Poll {
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_workers(8);
        pool.spawn(Box::new(Spin));
        pool.poll_ready(&mut TestCx::default());
    }

    // ---- sharded event loop ------------------------------------------------

    /// Interleaved waiter/countdown workload under a shard count, with
    /// every engine and the shared resource attributed round-robin.
    fn run_interleaved_sharded(shards: usize) -> (u32, u64, u64, u64) {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_shards(shards);
        let mut ids = Vec::new();
        for t in [2, 5, 1, 4, 3] {
            ids.push(pool.spawn(Box::new(ResourceWaiter::on_a(
                t,
                std::rc::Rc::new(std::cell::Cell::new(0)),
            ))));
        }
        ids.push(pool.spawn(Box::new(SignallingCountdown { left: 5 })));
        for (i, id) in ids.iter().enumerate() {
            pool.assign_engine_shard(*id, i % shards);
        }
        pool.set_resource_shard(RES_A.kind(), RES_A.index(), 2 % shards);
        let mut cx = TestCx::default();
        pool.poll(&mut cx);
        assert_eq!(pool.live(), 0, "shards={shards}");
        (
            cx.total,
            pool.poll_count(),
            pool.wasted_poll_count(),
            pool.wake_count(),
        )
    }

    #[test]
    fn shard_count_is_observably_invisible() {
        let global = run_interleaved_sharded(1);
        for n in [2, 4, 16] {
            assert_eq!(global, run_interleaved_sharded(n), "shards={n}");
        }
    }

    #[test]
    fn per_shard_tallies_merge_to_the_totals() {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_shards(3);
        let a = pool.spawn(Box::new(SignallingCountdown { left: 4 }));
        let b = pool.spawn(Box::new(ResourceWaiter::on_a(
            4,
            std::rc::Rc::new(std::cell::Cell::new(0)),
        )));
        pool.assign_engine_shard(a, 1);
        pool.assign_engine_shard(b, 2);
        let mut cx = TestCx::default();
        pool.poll(&mut cx);
        let per_shard = pool.per_shard_polls();
        assert_eq!(per_shard.len(), 3);
        let polls: u64 = per_shard.iter().map(|t| t.0).sum();
        let wasted: u64 = per_shard.iter().map(|t| t.1).sum();
        assert_eq!(polls, pool.poll_count(), "shard tallies cover every poll");
        assert_eq!(wasted, pool.wasted_poll_count());
        assert!(per_shard[1].0 > 0, "countdown polled on its shard");
        assert!(per_shard[2].0 > 0, "waiter polled on its shard");
    }

    #[test]
    fn cross_shard_timer_deadline_is_not_masked() {
        // An engine attributed to a quiet shard parks on a deadline while
        // another shard stays busy: the release scan over every shard
        // head must wake it exactly on time.
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_shards(4);
        let sleeper = pool.spawn(Box::new(DeadlineWaiter {
            at: Nanos::from_micros(10),
        }));
        let busy = pool.spawn(Box::new(SignallingCountdown { left: 2 }));
        pool.assign_engine_shard(sleeper, 3);
        pool.assign_engine_shard(busy, 1);
        let mut cx = TestCx::default();
        assert_eq!(
            pool.poll_ready(&mut cx),
            1,
            "countdown finishes, sleeper parks"
        );
        cx.now = Nanos::from_micros(5);
        assert_eq!(pool.poll_ready(&mut cx), 0, "deadline not due yet");
        // Re-attribute the parked sleeper: its timer entry must follow.
        pool.assign_engine_shard(sleeper, 2);
        cx.now = Nanos::from_micros(10);
        assert_eq!(pool.poll_ready(&mut cx), 1, "cross-shard deadline fired");
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn resharding_a_parked_pool_preserves_wakes() {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        let polls = std::rc::Rc::new(std::cell::Cell::new(0));
        let w = pool.spawn(Box::new(ResourceWaiter::on_a(1, polls.clone())));
        let mut cx = TestCx::default();
        pool.poll_ready(&mut cx);
        assert_eq!(polls.get(), 1, "parked under 1 shard");
        // Re-shard with live waiter registrations outstanding, and move
        // both the engine and the resource to non-default shards.
        pool.set_shards(4);
        pool.assign_engine_shard(w, 1);
        pool.set_resource_shard(RES_A.kind(), RES_A.index(), 3);
        pool.poll_ready(&mut cx);
        assert_eq!(polls.get(), 1, "still parked after the reshard");
        cx.total = 1;
        cx.signals.push(RES_A);
        assert_eq!(pool.poll_ready(&mut cx), 1, "signal found the moved table");
        assert_eq!(polls.get(), 2);
    }

    #[test]
    fn wake_driven_spin_panic_names_the_shard() {
        struct Spin;
        impl Engine<TestCx> for Spin {
            fn progress(&mut self, _: &mut TestCx) -> Poll {
                Poll::Progressed
            }
            fn name(&self) -> String {
                "spinner-under-test".to_owned()
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_shards(4);
        let id = pool.spawn(Box::new(Spin));
        pool.assign_engine_shard(id, 2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.poll_ready(&mut TestCx::default());
        }))
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("spinning"), "panic was: {msg}");
        assert!(msg.contains("shard 2"), "panic must name the shard: {msg}");
        assert!(msg.contains("spinner-under-test"), "panic was: {msg}");
    }

    // ---- plan/commit (buffered-effect protocol) ----------------------------

    /// Counts down through the plan/commit protocol: `plan` snapshots the
    /// frozen per-engine state, `progress_planned` checks the snapshot
    /// still holds and commits exactly what `progress` would.
    struct PlannedCountdown {
        left: u32,
        resource: ResourceId,
    }

    impl Engine<TestCx> for PlannedCountdown {
        fn progress(&mut self, cx: &mut TestCx) -> Poll {
            if self.left == 0 {
                return Poll::Finished;
            }
            self.left -= 1;
            cx.total += 1;
            Poll::Progressed
        }
        fn plan(&self, cx: &TestCx) -> Option<EnginePlan> {
            Some(EnginePlan::new((self.left, cx.now)))
        }
        fn progress_planned(&mut self, cx: &mut TestCx, plan: EnginePlan) -> Poll {
            let snap = plan.downcast::<(u32, Nanos)>().expect("typed plan");
            assert_eq!(snap.0, self.left, "plan read the frozen view");
            assert_eq!(snap.1, cx.now, "clock immutable within the round");
            self.progress(cx)
        }
        fn footprint(&self, _: &TestCx) -> Footprint {
            Footprint::Resources(vec![self.resource])
        }
        fn name(&self) -> String {
            "planned-countdown".to_owned()
        }
    }

    fn run_planned(workers: usize) -> (u32, u64, u64, u64) {
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_workers(workers);
        // Five disjoint plan-capable engines: singleton groups in one
        // wave, enough to cross the thread-dispatch threshold.
        for i in 0..5 {
            pool.spawn_par(Box::new(PlannedCountdown {
                left: 3,
                resource: ResourceId::new(3, i),
            }));
        }
        let mut cx = TestCx::default();
        pool.poll(&mut cx);
        assert_eq!(pool.live(), 0, "workers={workers}");
        if workers > 1 {
            assert!(
                pool.planned_poll_count() > 0,
                "plan-capable singletons must take the planned path"
            );
        } else {
            assert_eq!(pool.planned_poll_count(), 0, "sequential sweep never plans");
        }
        (
            cx.total,
            pool.poll_count(),
            pool.wasted_poll_count(),
            pool.wake_count(),
        )
    }

    #[test]
    fn planned_commits_are_observably_identical() {
        let seq = run_planned(1);
        for n in [2, 8] {
            assert_eq!(seq, run_planned(n), "workers={n}");
        }
    }

    #[test]
    fn mid_sweep_joiner_voids_outstanding_plans() {
        /// Progresses twice; signals RES_W on the second step.
        struct LateSignaller {
            left: u32,
        }
        const RES_W: ResourceId = ResourceId::new(4, 0);
        impl Engine<TestCx> for LateSignaller {
            fn progress(&mut self, cx: &mut TestCx) -> Poll {
                if self.left == 0 {
                    return Poll::Finished;
                }
                self.left -= 1;
                cx.total += 1;
                if self.left == 0 {
                    cx.signals.push(RES_W);
                }
                Poll::Progressed
            }
        }
        let mut pool: RuntimePool<TestCx> = RuntimePool::new();
        pool.set_naive(false);
        pool.set_workers(8);
        // Slot 0: exclusive signaller (wave of its own). Slots 1-2 and
        // 4-5: plan-capable singletons. Slot 3: a waiter that parks in
        // round 1 and is signalled back *mid-sweep* in round 2, landing
        // between committed and still-planned wave members.
        pool.spawn(Box::new(LateSignaller { left: 2 }));
        for i in 0..2 {
            pool.spawn_par(Box::new(PlannedCountdown {
                left: 3,
                resource: ResourceId::new(3, i),
            }));
        }
        pool.spawn(Box::new(ResourceWaiter {
            threshold: 5,
            resource: RES_W,
            polls: std::rc::Rc::new(std::cell::Cell::new(0)),
        }));
        for i in 2..4 {
            pool.spawn_par(Box::new(PlannedCountdown {
                left: 3,
                resource: ResourceId::new(3, i),
            }));
        }
        let mut cx = TestCx::default();
        pool.poll(&mut cx);
        assert_eq!(pool.live(), 0);
        assert!(
            pool.dropped_plan_count() >= 2,
            "the joiner must void the not-yet-committed plans (dropped {})",
            pool.dropped_plan_count()
        );
        assert!(pool.planned_poll_count() > 0);
        // Parity: the identical workload at workers=1 observes the same
        // totals — voided plans fall back to the in-place path.
        let seq = {
            let mut pool: RuntimePool<TestCx> = RuntimePool::new();
            pool.set_naive(false);
            pool.spawn(Box::new(LateSignaller { left: 2 }));
            for i in 0..2 {
                pool.spawn_par(Box::new(PlannedCountdown {
                    left: 3,
                    resource: ResourceId::new(3, i),
                }));
            }
            pool.spawn(Box::new(ResourceWaiter {
                threshold: 5,
                resource: RES_W,
                polls: std::rc::Rc::new(std::cell::Cell::new(0)),
            }));
            for i in 2..4 {
                pool.spawn_par(Box::new(PlannedCountdown {
                    left: 3,
                    resource: ResourceId::new(3, i),
                }));
            }
            let mut cx = TestCx::default();
            pool.poll(&mut cx);
            (
                cx.total,
                pool.poll_count(),
                pool.wasted_poll_count(),
                pool.wake_count(),
            )
        };
        assert_eq!(
            seq,
            (
                cx.total,
                pool.poll_count(),
                pool.wasted_poll_count(),
                pool.wake_count()
            )
        );
    }

    #[test]
    fn schedulers_agree_on_interleaved_workload() {
        // A chain of resource waiters released one by one by a countdown:
        // both schedulers must finish everything with the same final state.
        let run = |naive: bool| -> u32 {
            let mut pool: RuntimePool<TestCx> = RuntimePool::new();
            pool.set_naive(naive);
            for t in [2, 5, 1, 4, 3] {
                pool.spawn(Box::new(ResourceWaiter::on_a(
                    t,
                    std::rc::Rc::new(std::cell::Cell::new(0)),
                )));
            }
            pool.spawn(Box::new(SignallingCountdown { left: 5 }));
            let mut cx = TestCx::default();
            pool.poll(&mut cx);
            assert_eq!(pool.live(), 0, "naive={naive}");
            cx.total
        };
        assert_eq!(run(true), run(false));
    }
}
