//! # mccs-sim — discrete-event simulation kernel
//!
//! The foundation for every simulated substrate in the MCCS reproduction:
//! a virtual clock, a deterministic event queue, a deterministic RNG, and a
//! poll-based [`Engine`] abstraction in the spirit of the paper's
//! implementation section ("our engines are designed similar to asynchronous
//! futures in Rust; a pool of runtimes is used to execute the engines").
//!
//! All time is virtual and measured in integer nanoseconds ([`Nanos`]).
//! Determinism is a hard requirement: given the same seed, every experiment
//! in this repository reproduces bit-identical results. The event queue
//! breaks timestamp ties with a monotone sequence number, and the RNG is a
//! self-contained xoshiro256++ implementation so results do not depend on
//! external crate versions.
//!
//! ## Module map
//!
//! * [`time`] — the [`Nanos`] virtual-time type and duration helpers.
//! * [`units`] — bytes and bandwidth with exact transfer-time arithmetic.
//! * [`event`] — the deterministic time-ordered [`EventQueue`].
//! * [`rng`] — seedable xoshiro256++ [`Rng`] plus the distributions used by
//!   the workload generators (uniform, exponential, shuffles).
//! * [`engine`] — the [`Engine`] trait, [`Poll`] status and [`RuntimePool`]
//!   cooperative scheduler (wake-driven by default, with the naive
//!   round-robin poller kept as a differential-testing oracle).
//! * [`waker`] — [`Wake`] conditions, [`ResourceId`]s and the
//!   [`WakeSource`] contract contexts implement so parked engines can be
//!   woken by exactly the events they wait on.
//! * [`conflict`] — conflict-set construction over declared engine
//!   [`Footprint`]s: rounds partition into waves of disjoint groups the
//!   parallel scheduler may run concurrently.
//! * [`par`] — the deterministic [`Workers`] pool (index-ordered batch
//!   merge) and the [`par::ParSet`] wave executor for engines that
//!   buffer their effects.
//! * [`timeline`] — time-series recording for the timeline figures (7, 10).
//! * [`stats`] — means, percentiles and confidence intervals for reporting.

pub mod conflict;
pub mod engine;
pub mod event;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod units;
pub mod waker;

pub use conflict::{partition, Footprint, Wave};
pub use engine::{Engine, EngineId, EnginePlan, Poll, RuntimePool};
pub use event::{EventQueue, ShardedEventQueue};
pub use par::Workers;
pub use rng::Rng;
pub use stats::Summary;
pub use time::Nanos;
pub use timeline::TimeSeries;
pub use units::{Bandwidth, Bytes};
pub use waker::{ResourceId, Wake, WakeSet, WakeSource};
