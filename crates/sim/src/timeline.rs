//! Time-series recording.
//!
//! The paper's Figures 7 and 10 plot quantities (algorithm bandwidth,
//! normalized throughput) against elapsed time. [`TimeSeries`] collects
//! `(time, value)` samples during a run and can resample them into fixed
//! windows for plotting or CSV export.

use crate::time::Nanos;

/// A named sequence of `(time, value)` samples, append-only in time order.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(Nanos, f64)>,
}

impl TimeSeries {
    /// An empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample. Samples must be pushed in non-decreasing time order.
    pub fn push(&mut self, at: Nanos, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(at >= last, "time-series samples must be time ordered");
        }
        self.samples.push((at, value));
    }

    /// Raw samples.
    pub fn samples(&self) -> &[(Nanos, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the values of all samples in `[from, to)`.
    pub fn mean_in(&self, from: Nanos, to: Nanos) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.samples {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Resample into fixed windows of width `window`, producing one
    /// `(window_start, mean)` point per non-empty window — the form used to
    /// render the timeline figures.
    pub fn windowed_means(&self, window: Nanos) -> Vec<(Nanos, f64)> {
        assert!(window > Nanos::ZERO, "window must be positive");
        let mut out = Vec::new();
        if self.samples.is_empty() {
            return out;
        }
        let end = self.samples.last().expect("non-empty").0;
        let mut start = Nanos::ZERO;
        while start <= end {
            let stop = start + window;
            if let Some(m) = self.mean_in(start, stop) {
                out.push((start, m));
            }
            start = stop;
        }
        out
    }

    /// Interpolate the value at `t` by last-sample-carried-forward
    /// (step interpolation, matching how bandwidth counters behave).
    pub fn value_at(&self, t: Nanos) -> Option<f64> {
        let idx = self.samples.partition_point(|&(st, _)| st <= t);
        idx.checked_sub(1).map(|i| self.samples[i].1)
    }

    /// Render as CSV lines `time_s,value` (no header).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        for &(t, v) in &self.samples {
            s.push_str(&format!("{:.6},{:.6}\n", t.as_secs_f64(), v));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new("bw");
        ts.push(Nanos::from_secs(0), 1.0);
        ts.push(Nanos::from_secs(1), 2.0);
        ts.push(Nanos::from_secs(2), 4.0);
        ts.push(Nanos::from_secs(3), 8.0);
        ts
    }

    #[test]
    fn push_and_len() {
        let ts = series();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.name(), "bw");
        assert!(!ts.is_empty());
    }

    #[test]
    #[should_panic(expected = "time ordered")]
    fn out_of_order_push_panics() {
        let mut ts = series();
        ts.push(Nanos::from_secs(1), 0.0);
    }

    #[test]
    fn mean_in_window() {
        let ts = series();
        assert_eq!(
            ts.mean_in(Nanos::from_secs(0), Nanos::from_secs(2)),
            Some(1.5)
        );
        assert_eq!(ts.mean_in(Nanos::from_secs(10), Nanos::from_secs(11)), None);
    }

    #[test]
    fn windowed_means_cover_range() {
        let ts = series();
        let w = ts.windowed_means(Nanos::from_secs(2));
        assert_eq!(
            w,
            vec![(Nanos::from_secs(0), 1.5), (Nanos::from_secs(2), 6.0)]
        );
    }

    #[test]
    fn step_interpolation() {
        let ts = series();
        assert_eq!(ts.value_at(Nanos::from_millis(500)), Some(1.0));
        assert_eq!(ts.value_at(Nanos::from_secs(2)), Some(4.0));
        assert_eq!(TimeSeries::new("e").value_at(Nanos::ZERO), None);
    }

    #[test]
    fn csv_lines() {
        let csv = series().to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("0.000000,1.000000"));
    }
}
