//! Deterministic random numbers.
//!
//! A self-contained xoshiro256++ generator seeded through splitmix64, plus
//! the handful of distributions the workload and placement generators need
//! (uniform ranges, exponential inter-arrival times, Fisher-Yates shuffles).
//! Keeping the generator in-tree (rather than depending on `rand`'s
//! `SmallRng`, whose algorithm is unspecified) guarantees that experiment
//! outputs are stable across toolchain and dependency upgrades.

/// xoshiro256++ pseudo-random generator.
///
/// ```
/// use mccs_sim::Rng;
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator from a single `u64` via splitmix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child stream; used to give each subsystem
    /// (placement, workload, network jitter, ...) its own generator so that
    /// adding draws in one subsystem never perturbs another.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method to avoid modulo bias.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)` — convenience for indexing.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// gaps of a Poisson process, as used for the job-arrival pattern of
    /// the paper's §6.5).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse-CDF; (1 - f64()) is in (0, 1] so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box-Muller (used for trace jitter).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// In-place Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.index(items.len())]
    }

    /// Sample `k` distinct indices from `[0, n)` (partial Fisher-Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::seed_from(42);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for c in counts {
            // each bucket expects 10_000; allow 5% deviation
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = Rng::seed_from(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(0.2)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.2).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::seed_from(11);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20);
        assert!(d.iter().all(|&i| i < 50));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from(1);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }
}
