//! # mccs-baseline — the NCCL-like library baseline
//!
//! The comparator the paper evaluates MCCS against: a collective
//! communication **library linked into the application**. It captures
//! exactly the three deficiencies §2.2 attributes to tenant-side libraries
//! in a multi-tenant cloud:
//!
//! 1. **No topology awareness** — the inter-host ring follows the
//!    user-assigned rank order ([`RingChoice::RankOrder`]); only the
//!    intra-host segment is optimized (host-contiguous), as NCCL does.
//! 2. **Strategy frozen at init** — ring orders and connection hashes are
//!    resolved when the job starts and never change.
//! 3. **Network-agnostic optimization** — multiple connections (channels)
//!    are opened for parallelism, but their paths are whatever ECMP
//!    hashing yields; collisions go unnoticed.
//!
//! Variants used throughout the evaluation:
//! * **NCCL** — `RingChoice::RankOrder`, ECMP.
//! * **NCCL(OR)** — `RingChoice::Explicit(optimal rings)` (the provider's
//!   locality-aware order applied by hand), ECMP: isolates MCCS's system
//!   overhead from its algorithmic gains.
//! * **Random ring** — `RingChoice::RandomHosts` (the §6.5 baseline).
//! * **OR+FFA at scale** — explicit rings plus a [`RouteMap`]: what the
//!   paper's own flow-level simulator does for Figure 11.
//!
//! Because the library runs *inside* the tenant, there is no IPC latency —
//! only a kernel-launch overhead per collective. The job executes as one
//! library-mode engine in the shared [`World`], driving network flows and
//! intra-host transfers directly.

use mccs_collectives::{CollectiveOp, CollectiveSchedule, EdgeTask, RingOrder};
use mccs_core::cluster::Cluster;
use mccs_core::config::{CollectiveConfig, RouteMap};
use mccs_core::world::{FlowOwner, World};
use mccs_device::{StreamId, StreamOp};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_netsim::{FlowSpec, RouteChoice};
use mccs_sim::{Bytes, Engine, Nanos, Poll, Rng};
use mccs_topology::GpuId;
use std::collections::HashMap;

/// How the library picks its ring order at init.
#[derive(Clone, Debug)]
pub enum RingChoice {
    /// NCCL default: host-grouped user rank order.
    RankOrder,
    /// Externally supplied rings (NCCL(OR), or per-channel variants).
    Explicit(Vec<RingOrder>),
    /// Uniformly random host order, GPUs host-contiguous.
    RandomHosts,
    /// Uniformly random GPU order — an arbitrary user rank assignment
    /// with no intra-host grouping at all: the §6.5 "random ring
    /// selection" baseline.
    RandomGpus,
}

/// One phase of the job's iteration body.
#[derive(Clone, Debug)]
pub enum Phase {
    /// Exposed compute for this long (no communication).
    Compute(Nanos),
    /// A collective over the whole job.
    Collective {
        /// The operation.
        op: CollectiveOp,
        /// Buffer size (NCCL-tests semantics).
        size: Bytes,
    },
}

/// Library configuration fixed at init.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Parallel rings (NCCL defaults to at least 2).
    pub channels: usize,
    /// Ring selection.
    pub ring: RingChoice,
    /// Explicit route pins (empty = ECMP). Only the at-scale simulation
    /// studies use this; a real tenant library cannot pin routes.
    pub routes: RouteMap,
    /// Kernel-launch overhead per collective.
    pub launch_overhead: Nanos,
    /// Salt mixed into the connection hashes: distinct trials of the same
    /// job draw fresh ECMP outcomes, like re-established connections with
    /// new source ports would.
    pub hash_salt: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            channels: 2,
            ring: RingChoice::RankOrder,
            routes: RouteMap::ecmp(),
            launch_overhead: Nanos::from_micros(10),
            hash_salt: 0,
        }
    }
}

enum JobState {
    Idle,
    Computing { until: Nanos },
    LaunchingAt { at: Nanos, issued: Nanos },
    Collecting { seq: u64 },
    Done,
}

/// A whole library-mode job (all ranks execute the same SPMD program, so
/// the library is simulated as one engine — the same centralization the
/// paper's flow-level simulator uses).
pub struct BaselineJob {
    app: AppId,
    comm: CommunicatorId,
    owner: u32,
    /// Membership, retained for management-style inspection in tests.
    #[allow(dead_code)]
    gpus: Vec<GpuId>,
    channel_rings: Vec<RingOrder>,
    routes: RouteMap,
    config_epoch_hash: CollectiveConfig,
    launch_overhead: Nanos,
    phases: Vec<Phase>,
    iterations: usize,
    pc: usize,
    iter: usize,
    next_seq: u64,
    state: JobState,
    streams: HashMap<(GpuId, usize), StreamId>,
    started_at: Option<Nanos>,
    start_at: Nanos,
}

/// Communicator ids at or above this bit are reserved for library-mode
/// jobs and never collide with shim-issued communicators.
pub const BASELINE_COMM_BASE: u64 = 1 << 62;

impl BaselineJob {
    /// Build and register a baseline job on `cluster`. The job starts
    /// executing at `start_at` (virtual time) and runs `iterations` copies
    /// of `phases`. Returns the app id used for traces.
    pub fn spawn(
        cluster: &mut Cluster,
        name: &str,
        cfg: BaselineConfig,
        gpus: Vec<GpuId>,
        phases: Vec<Phase>,
        iterations: usize,
        start_at: Nanos,
    ) -> AppId {
        assert!(!gpus.is_empty(), "job needs GPUs");
        assert!(iterations > 0, "job needs at least one iteration");
        assert!(cfg.channels > 0, "job needs at least one channel");
        let app = cluster.register_app_name(name);
        let comm = CommunicatorId(BASELINE_COMM_BASE + u64::from(app.0));
        let owner = cluster.world.alloc_external_owner();
        let topo = &cluster.world.topo;
        let channel_rings: Vec<RingOrder> = match &cfg.ring {
            RingChoice::RankOrder => {
                vec![RingOrder::nccl_default(topo, &gpus); cfg.channels]
            }
            RingChoice::Explicit(rings) => {
                assert!(!rings.is_empty(), "explicit ring set empty");
                (0..cfg.channels)
                    .map(|c| rings[c % rings.len()].clone())
                    .collect()
            }
            RingChoice::RandomHosts => {
                let mut rng = cluster.world.rng.fork();
                vec![random_host_ring(topo, &gpus, &mut rng); cfg.channels]
            }
            RingChoice::RandomGpus => {
                let mut rng = cluster.world.rng.fork();
                let mut order = gpus.clone();
                rng.shuffle(&mut order);
                vec![RingOrder::new(order); cfg.channels]
            }
        };
        // Connection hashes are derived through the same deterministic
        // function the service uses, seeded by the communicator id —
        // fixed at init, exactly like NCCL's connections.
        // The `epoch` field only feeds the connection-hash derivation here,
        // so the trial salt rides in it.
        let config_epoch_hash = CollectiveConfig {
            epoch: cfg.hash_salt,
            channel_rings: channel_rings.clone(),
            routes: cfg.routes.clone(),
        };
        let job = BaselineJob {
            app,
            comm,
            owner,
            gpus,
            channel_rings,
            routes: cfg.routes,
            config_epoch_hash,
            launch_overhead: cfg.launch_overhead,
            phases,
            iterations,
            pc: 0,
            iter: 0,
            next_seq: 0,
            state: JobState::Idle,
            streams: HashMap::new(),
            started_at: None,
            start_at,
        };
        cluster.spawn_engine(Box::new(job));
        app
    }

    fn stream_for(&mut self, w: &mut World, gpu: GpuId, channel: usize) -> StreamId {
        *self
            .streams
            .entry((gpu, channel))
            .or_insert_with(|| w.devices.create_stream(gpu))
    }

    fn launch_collective(
        &mut self,
        w: &mut World,
        op: CollectiveOp,
        size: Bytes,
        issued: Nanos,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let schedule = CollectiveSchedule::ring(&w.topo, op, size, &self.channel_rings);
        let mut tasks = Vec::new();
        for ch in &schedule.channels {
            for task in &ch.tasks {
                tasks.push((ch.channel, *task));
            }
        }
        let tokens = w.register_launch(self.comm, seq, 0, 1, tasks.len());
        w.trace
            .issued(self.app, self.comm, 0, seq, op, size, issued);
        w.trace.launched(self.comm, 0, seq, 0, w.clock);
        for ((channel, task), token) in tasks.into_iter().zip(tokens) {
            match task {
                EdgeTask::IntraHost { from, bytes, .. } => {
                    let bandwidth = w.devices.config().intra_host_bandwidth;
                    let stream = self.stream_for(w, from, channel);
                    w.device_enqueue(
                        stream,
                        StreamOp::Transfer {
                            bytes,
                            bandwidth,
                            token,
                        },
                    );
                }
                EdgeTask::InterHost {
                    src_nic,
                    dst_nic,
                    bytes,
                    ..
                } => {
                    let routing = match self.routes.get(channel, src_nic, dst_nic) {
                        Some(r) => RouteChoice::Pinned(r),
                        None => RouteChoice::Ecmp {
                            hash: self
                                .config_epoch_hash
                                .ecmp_hash(self.comm, channel, src_nic, dst_nic),
                        },
                    };
                    let now = w.clock;
                    let id = w.net.start_flow(
                        now,
                        FlowSpec {
                            src: src_nic,
                            dst: dst_nic,
                            bytes: Some(bytes),
                            routing,
                            rate_cap: None,
                            tag: token,
                            guaranteed: false,
                            tenant: self.app.0,
                        },
                    );
                    w.flow_owner_nic.insert(id, FlowOwner::External(self.owner));
                }
            }
        }
        seq
    }
}

/// A uniformly random host-level ring (GPUs stay host-contiguous — even a
/// topology-oblivious library keeps the intra-host segment together).
pub fn random_host_ring(
    topo: &mccs_topology::Topology,
    gpus: &[GpuId],
    rng: &mut Rng,
) -> RingOrder {
    use std::collections::BTreeMap;
    let mut by_host: BTreeMap<mccs_topology::HostId, Vec<GpuId>> = BTreeMap::new();
    for &g in gpus {
        by_host.entry(topo.host_of_gpu(g)).or_default().push(g);
    }
    let mut hosts: Vec<_> = by_host.keys().copied().collect();
    rng.shuffle(&mut hosts);
    let order: Vec<GpuId> = hosts
        .into_iter()
        .flat_map(|h| by_host[&h].clone())
        .collect();
    RingOrder::new(order)
}

impl Engine<World> for BaselineJob {
    fn progress(&mut self, w: &mut World) -> Poll {
        // Route our flow completions into the shared progress registry.
        let events = w.take_external_events(self.owner);
        let mut progressed = !events.is_empty();
        for c in events {
            w.complete_token(c.tag, c.finished_at);
        }
        loop {
            match self.state {
                JobState::Idle => {
                    if w.clock < self.start_at {
                        w.schedule_wake(self.start_at);
                        break;
                    }
                    self.started_at.get_or_insert(w.clock);
                    if self.iter >= self.iterations {
                        self.state = JobState::Done;
                        continue;
                    }
                    let Some(phase) = self.phases.get(self.pc).cloned() else {
                        self.pc = 0;
                        self.iter += 1;
                        continue;
                    };
                    match phase {
                        Phase::Compute(d) => {
                            let until = w.clock + d;
                            w.schedule_wake(until);
                            self.state = JobState::Computing { until };
                        }
                        Phase::Collective { .. } => {
                            let at = w.clock + self.launch_overhead;
                            w.schedule_wake(at);
                            self.state = JobState::LaunchingAt {
                                at,
                                issued: w.clock,
                            };
                        }
                    }
                    progressed = true;
                }
                JobState::Computing { until } => {
                    if w.clock < until {
                        break;
                    }
                    self.pc += 1;
                    self.state = JobState::Idle;
                    progressed = true;
                }
                JobState::LaunchingAt { at, issued } => {
                    if w.clock < at {
                        break;
                    }
                    let Phase::Collective { op, size } = self.phases[self.pc] else {
                        unreachable!("launching a non-collective phase")
                    };
                    let seq = self.launch_collective(w, op, size, issued);
                    self.state = JobState::Collecting { seq };
                    progressed = true;
                }
                JobState::Collecting { seq } => {
                    let Some(done_at) = w.collective_completed_at(self.comm, seq) else {
                        break;
                    };
                    w.trace.completed(self.comm, 0, seq, done_at);
                    self.pc += 1;
                    self.state = JobState::Idle;
                    progressed = true;
                }
                JobState::Done => {
                    return Poll::Finished;
                }
            }
        }
        if progressed {
            Poll::Progressed
        } else {
            Poll::Idle
        }
    }

    fn name(&self) -> String {
        format!("baseline-job({})", self.app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_collectives::op::all_reduce_sum;
    use mccs_core::ClusterConfig;
    use mccs_topology::presets;
    use std::sync::Arc;

    fn cluster() -> Cluster {
        Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(7))
    }

    fn allreduce_phases(size: Bytes) -> Vec<Phase> {
        vec![Phase::Collective {
            op: all_reduce_sum(),
            size,
        }]
    }

    #[test]
    fn nccl_like_job_runs_and_records() {
        let mut c = cluster();
        let gpus = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let app = BaselineJob::spawn(
            &mut c,
            "nccl",
            BaselineConfig::default(),
            gpus,
            allreduce_phases(Bytes::mib(64)),
            3,
            Nanos::ZERO,
        );
        c.run_until_quiescent(Nanos::from_secs(10));
        let tl = c.mgmt().timeline(app);
        assert_eq!(tl.len(), 3);
        for r in &tl {
            assert!(r.latency().expect("complete") > Nanos::ZERO);
        }
    }

    #[test]
    fn baseline_is_faster_than_service_for_tiny_messages() {
        // The library has no IPC latency: for small collectives it must
        // beat the service — the Figure 6 small-message regime.
        let gpus = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let size = Bytes::kib(128);

        let mut lib = cluster();
        let app = BaselineJob::spawn(
            &mut lib,
            "nccl",
            BaselineConfig::default(),
            gpus.clone(),
            allreduce_phases(size),
            1,
            Nanos::ZERO,
        );
        lib.run_until_quiescent(Nanos::from_secs(5));
        let lib_lat = lib.mgmt().timeline(app)[0].latency().expect("complete");

        // vs the full MCCS path measured in core's integration tests:
        // small collectives pay ~50-80us of IPC; the library pays only the
        // launch overhead.
        assert!(
            lib_lat < Nanos::from_millis(1),
            "library small-message latency {lib_lat}"
        );
    }

    #[test]
    fn rank_order_vs_optimal_ring_shapes() {
        // Interleaved "VM order" (racks {H0,H1} {H2,H3}, user order
        // H0,H2,H1,H3) makes every ring edge cross racks; the optimal ring
        // crosses twice. With 2x oversubscription the bad ring is slower.
        let size = Bytes::mib(256);
        let vm_order = vec![GpuId(0), GpuId(4), GpuId(2), GpuId(6)];

        let run = |ring: RingChoice| -> Nanos {
            let mut c = cluster();
            let app = BaselineJob::spawn(
                &mut c,
                "job",
                BaselineConfig {
                    ring,
                    ..Default::default()
                },
                vm_order.clone(),
                allreduce_phases(size),
                2,
                Nanos::ZERO,
            );
            c.run_until_quiescent(Nanos::from_secs(60));
            c.mgmt().timeline(app)[1].latency().expect("complete")
        };

        let nccl = run(RingChoice::RankOrder);
        let topo = presets::testbed();
        let optimal = RingOrder::new(vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)]);
        assert!(optimal.is_host_contiguous(&topo));
        let or = run(RingChoice::Explicit(vec![optimal]));
        assert!(
            nccl > or,
            "rank-order ring ({nccl}) should be slower than optimal ({or})"
        );
    }

    #[test]
    fn compute_phases_delay_collectives() {
        let mut c = cluster();
        let gpus = vec![GpuId(0), GpuId(2)];
        let app = BaselineJob::spawn(
            &mut c,
            "train",
            BaselineConfig::default(),
            gpus,
            vec![
                Phase::Compute(Nanos::from_millis(10)),
                Phase::Collective {
                    op: all_reduce_sum(),
                    size: Bytes::mib(16),
                },
            ],
            2,
            Nanos::ZERO,
        );
        c.run_until_quiescent(Nanos::from_secs(10));
        let tl = c.mgmt().timeline(app);
        assert_eq!(tl.len(), 2);
        assert!(tl[0].issued_at >= Nanos::from_millis(10));
        assert!(tl[1].issued_at >= tl[0].completed_at.expect("complete") + Nanos::from_millis(10));
    }

    #[test]
    fn start_time_is_respected() {
        let mut c = cluster();
        let app = BaselineJob::spawn(
            &mut c,
            "late",
            BaselineConfig::default(),
            vec![GpuId(0), GpuId(2)],
            allreduce_phases(Bytes::mib(1)),
            1,
            Nanos::from_millis(50),
        );
        c.run_until_quiescent(Nanos::from_secs(10));
        let tl = c.mgmt().timeline(app);
        assert!(tl[0].issued_at >= Nanos::from_millis(50));
    }

    #[test]
    fn random_ring_is_deterministic_per_seed() {
        let topo = presets::testbed();
        let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
        let mut r1 = Rng::seed_from(9);
        let mut r2 = Rng::seed_from(9);
        let a = random_host_ring(&topo, &gpus, &mut r1);
        let b = random_host_ring(&topo, &gpus, &mut r2);
        assert_eq!(a, b);
        assert!(a.is_host_contiguous(&topo));
    }
}
