//! Iteration traces and the training-time breakdown analyzer.

use mccs_collectives::CollectiveOp;
use mccs_sim::{Bytes, Nanos};

/// One phase of a training iteration, as seen by the communication layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TracePhase {
    /// Exposed (non-overlapped) GPU compute.
    Compute(Nanos),
    /// A collective operation.
    Collective {
        /// The operation.
        op: CollectiveOp,
        /// Buffer size.
        size: Bytes,
    },
    /// CPU <-> GPU memory copy (input pipeline, optimizer offload).
    Memcpy(Nanos),
    /// GPU idle (input stalls, synchronization waits).
    Idle(Nanos),
}

/// A repeating iteration profile.
#[derive(Clone, Debug)]
pub struct IterationTrace {
    /// Workload label ("vgg19-dp", ...).
    pub name: String,
    /// One iteration's phases, in order.
    pub phases: Vec<TracePhase>,
    /// Number of iterations to run.
    pub iterations: usize,
}

impl IterationTrace {
    /// Build a trace.
    pub fn new(name: impl Into<String>, phases: Vec<TracePhase>, iterations: usize) -> Self {
        assert!(!phases.is_empty(), "empty iteration");
        assert!(iterations > 0, "zero iterations");
        IterationTrace {
            name: name.into(),
            phases,
            iterations,
        }
    }

    /// Total bytes moved by collectives per iteration.
    pub fn collective_bytes_per_iteration(&self) -> Bytes {
        self.phases
            .iter()
            .filter_map(|p| match p {
                TracePhase::Collective { size, .. } => Some(*size),
                _ => None,
            })
            .sum()
    }

    /// Number of collectives per iteration.
    pub fn collectives_per_iteration(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| matches!(p, TracePhase::Collective { .. }))
            .count()
    }

    /// Fixed (non-communication) time per iteration.
    pub fn fixed_time_per_iteration(&self) -> Nanos {
        self.phases
            .iter()
            .map(|p| match p {
                TracePhase::Compute(d) | TracePhase::Memcpy(d) | TracePhase::Idle(d) => *d,
                TracePhase::Collective { .. } => Nanos::ZERO,
            })
            .sum()
    }

    /// Scale every collective size by `f` (weak-scaling studies).
    pub fn scale_collectives(&self, f: f64) -> IterationTrace {
        let phases = self
            .phases
            .iter()
            .map(|p| match *p {
                TracePhase::Collective { op, size } => TracePhase::Collective {
                    op,
                    size: size.mul_f64(f),
                },
                other => other,
            })
            .collect();
        IterationTrace::new(self.name.clone(), phases, self.iterations)
    }
}

/// Training-time breakdown (the Figure 2 quantity): fractions of total
/// iteration time spent per category.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Breakdown {
    /// GPU idle fraction.
    pub idle: f64,
    /// CPU<->GPU copy fraction.
    pub memcpy: f64,
    /// Exposed compute fraction.
    pub compute: f64,
    /// Exposed communication fraction.
    pub comm: f64,
}

impl Breakdown {
    /// Compute the breakdown of a trace, pricing each collective at
    /// `comm_time(size)` — e.g. a measured bandwidth, or a closed-form
    /// model.
    pub fn of(trace: &IterationTrace, mut comm_time: impl FnMut(Bytes) -> Nanos) -> Breakdown {
        let mut idle = 0.0;
        let mut memcpy = 0.0;
        let mut compute = 0.0;
        let mut comm = 0.0;
        for p in &trace.phases {
            match *p {
                TracePhase::Compute(d) => compute += d.as_secs_f64(),
                TracePhase::Memcpy(d) => memcpy += d.as_secs_f64(),
                TracePhase::Idle(d) => idle += d.as_secs_f64(),
                TracePhase::Collective { size, .. } => comm += comm_time(size).as_secs_f64(),
            }
        }
        let total = idle + memcpy + compute + comm;
        assert!(total > 0.0, "zero-length iteration");
        Breakdown {
            idle: idle / total,
            memcpy: memcpy / total,
            compute: compute / total,
            comm: comm / total,
        }
    }

    /// The fractions sum to 1 (within float tolerance).
    pub fn is_normalized(&self) -> bool {
        (self.idle + self.memcpy + self.compute + self.comm - 1.0).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_collectives::op::all_reduce_sum;
    use mccs_sim::Bandwidth;

    fn trace() -> IterationTrace {
        IterationTrace::new(
            "t",
            vec![
                TracePhase::Compute(Nanos::from_millis(30)),
                TracePhase::Collective {
                    op: all_reduce_sum(),
                    size: Bytes::mib(25),
                },
                TracePhase::Memcpy(Nanos::from_millis(5)),
                TracePhase::Idle(Nanos::from_millis(5)),
                TracePhase::Collective {
                    op: all_reduce_sum(),
                    size: Bytes::mib(25),
                },
            ],
            10,
        )
    }

    #[test]
    fn aggregates() {
        let t = trace();
        assert_eq!(t.collective_bytes_per_iteration(), Bytes::mib(50));
        assert_eq!(t.collectives_per_iteration(), 2);
        assert_eq!(t.fixed_time_per_iteration(), Nanos::from_millis(40));
    }

    #[test]
    fn breakdown_normalizes() {
        let t = trace();
        // price collectives at 5 GB/s algorithm bandwidth
        let b = Breakdown::of(&t, |s| Bandwidth::gibytes_per_sec(5.0).transfer_time(s));
        assert!(b.is_normalized());
        // 2 x 25MiB at 5GB/s ~ 10.5ms comm vs 40ms fixed
        assert!(b.comm > 0.15 && b.comm < 0.30, "comm {}", b.comm);
        assert!(b.compute > 0.5);
    }

    #[test]
    fn scaling_collectives() {
        let t = trace().scale_collectives(2.0);
        assert_eq!(t.collective_bytes_per_iteration(), Bytes::mib(100));
        assert_eq!(t.fixed_time_per_iteration(), Nanos::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "empty iteration")]
    fn rejects_empty() {
        IterationTrace::new("e", vec![], 1);
    }
}
