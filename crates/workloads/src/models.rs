//! Calibrated model profiles.
//!
//! Substitutes for the paper's profiled traces (PyTorch v2.1.0 +
//! DeepSpeed v0.10.3 + Megatron-LM on the testbed — hardware we do not
//! have). Each constructor documents the public architecture constants the
//! profile is derived from; what the experiments consume is only the
//! *shape*: collective sizes, their count per iteration, and the compute
//! gaps between them.

use crate::trace::{IterationTrace, TracePhase};
use mccs_collectives::op::all_reduce_sum;
use mccs_sim::{Bytes, Nanos};

/// VGG-19 data-parallel training (the paper's tenant A).
///
/// VGG-19 has ~143.7 M parameters → ~574.7 MB of fp32 gradients per
/// iteration. DDP-style gradient bucketing (25 MB buckets, the PyTorch
/// default) yields 23 AllReduces interleaved with backward compute. The
/// compute phases are sized for an RTX-3090-class GPU at batch 32
/// (~190 ms/iteration of compute, dominated by the convolutional
/// backward), with a small input-pipeline memcpy per iteration.
pub fn vgg19_data_parallel(iterations: usize) -> IterationTrace {
    const PARAM_BYTES: u64 = 574_700_000;
    const BUCKET: u64 = 25_000_000;
    let buckets = PARAM_BYTES.div_ceil(BUCKET) as usize; // 23
    let mut phases = Vec::new();
    // input pipeline + forward
    phases.push(TracePhase::Memcpy(Nanos::from_millis(4)));
    phases.push(TracePhase::Compute(Nanos::from_millis(60)));
    // backward: gradient buckets become ready back to front
    let bwd_slice = Nanos::from_micros(130_000 / buckets as u64); // ~130ms total backward
    for b in 0..buckets {
        phases.push(TracePhase::Compute(bwd_slice));
        let size = if b == buckets - 1 {
            Bytes::new(PARAM_BYTES - BUCKET * (buckets as u64 - 1))
        } else {
            Bytes::new(BUCKET)
        };
        phases.push(TracePhase::Collective {
            op: all_reduce_sum(),
            size,
        });
    }
    IterationTrace::new("vgg19-dp", phases, iterations)
}

/// GPT-2.7B tensor-parallel fine-tuning (the paper's tenants B and C).
///
/// The 2.7 B-parameter GPT configuration (32 layers, hidden 2560).
/// Megatron tensor parallelism issues two activation AllReduces per layer
/// in forward and two in backward; at micro-batch 2 × sequence 1024 ×
/// hidden 2560 × fp16 each AllReduce moves 2·1024·2560·2 B = 10 MiB.
/// Compute per layer-slice (matmuls over the same activations) is sized
/// so communication is a substantial but not saturating share — the
/// fine-tuning jobs must have idle cycles for the TS policy to discover
/// (§4.3 Example #4).
pub fn gpt27b_tensor_parallel(iterations: usize) -> IterationTrace {
    const LAYERS: usize = 32;
    let act = Bytes::new(2 * 1024 * 2560 * 2); // 10 MiB
    let mut phases = Vec::new();
    phases.push(TracePhase::Memcpy(Nanos::from_millis(2)));
    // forward: per layer, compute slice + 2 activation allreduces
    for _ in 0..LAYERS {
        phases.push(TracePhase::Compute(Nanos::from_micros(4_000)));
        phases.push(TracePhase::Collective {
            op: all_reduce_sum(),
            size: act,
        });
        phases.push(TracePhase::Collective {
            op: all_reduce_sum(),
            size: act,
        });
    }
    // backward: twice the compute, same communication pattern
    for _ in 0..LAYERS {
        phases.push(TracePhase::Compute(Nanos::from_micros(8_000)));
        phases.push(TracePhase::Collective {
            op: all_reduce_sum(),
            size: act,
        });
        phases.push(TracePhase::Collective {
            op: all_reduce_sum(),
            size: act,
        });
    }
    IterationTrace::new("gpt2.7b-tp", phases, iterations)
}

/// ResNet-50 data-parallel training (the §6.5 at-scale workload:
/// "50 jobs of ResNet-50 of model size 100 MB").
///
/// 100 MB of gradients per iteration in 25 MB buckets (4 AllReduces),
/// ~120 ms compute per iteration on the simulated accelerator.
pub fn resnet50_data_parallel(iterations: usize) -> IterationTrace {
    const BUCKETS: usize = 4;
    let bucket = Bytes::new(25_000_000);
    let mut phases = Vec::new();
    phases.push(TracePhase::Compute(Nanos::from_millis(40)));
    for _ in 0..BUCKETS {
        phases.push(TracePhase::Compute(Nanos::from_millis(20)));
        phases.push(TracePhase::Collective {
            op: all_reduce_sum(),
            size: bucket,
        });
    }
    IterationTrace::new("resnet50-dp", phases, iterations)
}

/// The four anonymized product-group profiles behind Figure 2 — synthetic
/// mixes with the figure's qualitative shape (communication is a
/// significant share everywhere; group A is the most communication-bound,
/// D the most compute-bound with visible idle time).
pub fn product_group_profiles() -> Vec<IterationTrace> {
    let mk = |name: &str,
              compute_ms: u64,
              comm_mb: u64,
              comm_ops: usize,
              memcpy_ms: u64,
              idle_ms: u64| {
        let mut phases = vec![
            TracePhase::Memcpy(Nanos::from_millis(memcpy_ms)),
            TracePhase::Idle(Nanos::from_millis(idle_ms)),
        ];
        let slice = Nanos::from_millis(compute_ms / comm_ops as u64);
        for _ in 0..comm_ops {
            phases.push(TracePhase::Compute(slice));
            phases.push(TracePhase::Collective {
                op: all_reduce_sum(),
                size: Bytes::new(comm_mb * 1_000_000 / comm_ops as u64),
            });
        }
        IterationTrace::new(name, phases, 1)
    };
    vec![
        mk("group-A", 60, 600, 12, 4, 6),
        mk("group-B", 90, 400, 8, 6, 10),
        mk("group-C", 120, 350, 8, 8, 14),
        mk("group-D", 160, 250, 6, 10, 22),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_moves_the_full_gradient_every_iteration() {
        let t = vgg19_data_parallel(1);
        let total = t.collective_bytes_per_iteration();
        assert_eq!(total, Bytes::new(574_700_000));
        assert_eq!(t.collectives_per_iteration(), 23);
    }

    #[test]
    fn gpt_pattern_is_per_layer() {
        let t = gpt27b_tensor_parallel(1);
        assert_eq!(t.collectives_per_iteration(), 32 * 4);
        // ~1.3 GiB of activations per iteration
        let gb = t.collective_bytes_per_iteration().as_f64() / 1e9;
        assert!((1.0..2.0).contains(&gb), "gpt comm {gb} GB");
    }

    #[test]
    fn resnet_matches_paper_model_size() {
        let t = resnet50_data_parallel(1);
        assert_eq!(
            t.collective_bytes_per_iteration(),
            Bytes::new(100_000_000),
            "the paper's 100MB model"
        );
    }

    #[test]
    fn product_groups_have_distinct_mixes() {
        use crate::trace::Breakdown;
        use mccs_sim::Bandwidth;
        let profiles = product_group_profiles();
        assert_eq!(profiles.len(), 4);
        let comm_fracs: Vec<f64> = profiles
            .iter()
            .map(|t| Breakdown::of(t, |s| Bandwidth::gibytes_per_sec(4.0).transfer_time(s)).comm)
            .collect();
        // A most communication-bound, D least
        assert!(comm_fracs[0] > comm_fracs[3]);
        // every group has nontrivial communication (the Figure 2 takeaway)
        assert!(comm_fracs.iter().all(|&f| f > 0.1), "{comm_fracs:?}");
    }
}
