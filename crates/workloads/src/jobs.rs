//! Job and placement generation for the at-scale study (§6.5).
//!
//! "We run 50 jobs ... job sizes are either 16 or 32 GPUs with equal
//! probability ... jobs arrival follows a Poisson distribution with the
//! lambda set to 200 ms. Random placement means the simulator allocates
//! GPUs to a job randomly; compact placement assigns GPUs that belong to
//! the same rack whenever possible."

use mccs_sim::{Nanos, Rng};
use mccs_topology::{GpuId, RackId, Topology};
use std::collections::BTreeSet;

/// Placement strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Uniformly random free GPUs.
    Random,
    /// Rack-by-rack: prefer racks with the most free GPUs, packing each
    /// before spilling to the next.
    Compact,
}

/// A generated job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Job index.
    pub id: usize,
    /// Arrival time.
    pub arrival: Nanos,
    /// GPUs requested.
    pub size: usize,
}

/// Generate `count` jobs with Poisson arrivals of mean `mean_gap` and
/// sizes drawn uniformly from `sizes`.
pub fn poisson_jobs(count: usize, mean_gap: Nanos, sizes: &[usize], rng: &mut Rng) -> Vec<JobSpec> {
    assert!(!sizes.is_empty());
    let mut t = Nanos::ZERO;
    (0..count)
        .map(|id| {
            t += Nanos::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
            JobSpec {
                id,
                arrival: t,
                size: *rng.choose(sizes),
            }
        })
        .collect()
}

/// Tracks which GPUs are free and places jobs.
#[derive(Debug)]
pub struct PlacementMap {
    free: BTreeSet<GpuId>,
    total: usize,
}

impl PlacementMap {
    /// All GPUs free.
    pub fn new(topo: &Topology) -> Self {
        let free: BTreeSet<GpuId> = topo.gpus().iter().map(|g| g.id).collect();
        PlacementMap {
            total: free.len(),
            free,
        }
    }

    /// Free GPU count.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total GPU count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Try to place a job of `size` GPUs; on success the GPUs are marked
    /// busy and returned in allocation order.
    ///
    /// Placement is **host-granular** (as in the NetHint-style setup the
    /// paper adopts, where jobs occupy whole 8-GPU hosts): the job takes
    /// `ceil(size / gpus_per_host)` fully-free hosts — randomly chosen or
    /// rack-compacted — and uses `size` GPUs from them.
    pub fn place(
        &mut self,
        topo: &Topology,
        size: usize,
        strategy: Placement,
        rng: &mut Rng,
    ) -> Option<Vec<GpuId>> {
        if size == 0 {
            return Some(Vec::new());
        }
        let gph = topo.nics_per_host();
        let hosts_needed = size.div_ceil(gph);
        // Hosts whose every GPU is free.
        let mut free_hosts: Vec<_> = topo
            .hosts()
            .iter()
            .filter(|h| h.gpus.iter().all(|g| self.free.contains(g)))
            .map(|h| h.id)
            .collect();
        if free_hosts.len() < hosts_needed {
            return None;
        }
        let chosen_hosts: Vec<_> = match strategy {
            Placement::Random => rng
                .sample_indices(free_hosts.len(), hosts_needed)
                .into_iter()
                .map(|i| free_hosts[i])
                .collect(),
            Placement::Compact => {
                // racks sorted by free-host count descending, then id;
                // fill rack by rack.
                let mut per_rack: Vec<(RackId, Vec<_>)> = (0..topo.rack_count())
                    .map(|r| {
                        let rack = RackId(r as u32);
                        let hosts: Vec<_> = free_hosts
                            .iter()
                            .copied()
                            .filter(|&h| topo.rack_of(h) == rack)
                            .collect();
                        (rack, hosts)
                    })
                    .collect();
                per_rack.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
                free_hosts = per_rack.into_iter().flat_map(|(_, h)| h).collect();
                free_hosts.truncate(hosts_needed);
                free_hosts
            }
        };
        let chosen: Vec<GpuId> = chosen_hosts
            .iter()
            .flat_map(|&h| topo.host(h).gpus.clone())
            .take(size)
            .collect();
        debug_assert_eq!(chosen.len(), size);
        for g in &chosen {
            self.free.remove(g);
        }
        Some(chosen)
    }

    /// Return a finished job's GPUs to the pool.
    pub fn release(&mut self, gpus: &[GpuId]) {
        for &g in gpus {
            assert!(self.free.insert(g), "double release of {g}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_topology::presets::{self, SpineLeafConfig};

    fn big_topo() -> Topology {
        presets::spine_leaf(&SpineLeafConfig::paper_large_scale())
    }

    #[test]
    fn poisson_arrivals_are_increasing_with_right_mean() {
        let mut rng = Rng::seed_from(1);
        let jobs = poisson_jobs(500, Nanos::from_millis(200), &[16, 32], &mut rng);
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let mean_gap = jobs.last().expect("jobs").arrival.as_secs_f64() / 500.0;
        assert!((0.17..0.23).contains(&mean_gap), "mean gap {mean_gap}");
        // both sizes occur
        assert!(jobs.iter().any(|j| j.size == 16));
        assert!(jobs.iter().any(|j| j.size == 32));
    }

    #[test]
    fn compact_placement_prefers_one_rack() {
        let topo = big_topo();
        let mut map = PlacementMap::new(&topo);
        let mut rng = Rng::seed_from(2);
        // 32 GPUs fit exactly into one rack (4 hosts x 8 GPUs)
        let gpus = map
            .place(&topo, 32, Placement::Compact, &mut rng)
            .expect("space");
        let racks: BTreeSet<RackId> = gpus
            .iter()
            .map(|&g| topo.rack_of(topo.host_of_gpu(g)))
            .collect();
        assert_eq!(racks.len(), 1, "32-GPU job should fit one rack");
    }

    #[test]
    fn compact_spills_to_second_rack_when_fragmented() {
        let topo = big_topo();
        let mut map = PlacementMap::new(&topo);
        let mut rng = Rng::seed_from(3);
        // occupy 16 GPUs in every rack so no rack can hold 32 alone
        for r in 0..topo.rack_count() {
            let rack_gpus: Vec<GpuId> = topo
                .gpus()
                .iter()
                .filter(|g| topo.rack_of(g.host) == RackId(r as u32))
                .map(|g| g.id)
                .take(16)
                .collect();
            for g in rack_gpus {
                map.free.remove(&g);
            }
        }
        let _ = &mut rng;
        let gpus = map
            .place(&topo, 32, Placement::Compact, &mut rng)
            .expect("space");
        let racks: BTreeSet<RackId> = gpus
            .iter()
            .map(|&g| topo.rack_of(topo.host_of_gpu(g)))
            .collect();
        assert_eq!(racks.len(), 2, "fragmented cluster needs two racks");
    }

    #[test]
    fn random_placement_spans_racks_usually() {
        let topo = big_topo();
        let mut map = PlacementMap::new(&topo);
        let mut rng = Rng::seed_from(4);
        let gpus = map
            .place(&topo, 32, Placement::Random, &mut rng)
            .expect("space");
        let racks: BTreeSet<RackId> = gpus
            .iter()
            .map(|&g| topo.rack_of(topo.host_of_gpu(g)))
            .collect();
        assert!(racks.len() > 2, "random 32 of 768 should span many racks");
    }

    #[test]
    fn occupancy_accounting() {
        let topo = big_topo();
        let mut map = PlacementMap::new(&topo);
        let mut rng = Rng::seed_from(5);
        assert_eq!(map.total(), 768);
        let a = map
            .place(&topo, 16, Placement::Random, &mut rng)
            .expect("fits");
        assert_eq!(map.free_count(), 768 - 16);
        map.release(&a);
        assert_eq!(map.free_count(), 768);
    }

    #[test]
    fn placement_fails_when_full() {
        let topo = presets::testbed();
        let mut map = PlacementMap::new(&topo);
        let mut rng = Rng::seed_from(6);
        assert!(map.place(&topo, 9, Placement::Random, &mut rng).is_none());
        let _ = map
            .place(&topo, 8, Placement::Random, &mut rng)
            .expect("all");
        assert!(map.place(&topo, 1, Placement::Compact, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_detected() {
        let topo = presets::testbed();
        let mut map = PlacementMap::new(&topo);
        map.release(&[GpuId(0)]);
    }
}
