//! The traffic generator.
//!
//! The paper evaluates training workloads with "a traffic generator with
//! profile traces ... implemented with Rust using the MCCS library"
//! (§6.1). [`TrafficGenerator`] is that program: one rank replaying an
//! [`IterationTrace`] through the shim — allocate buffers, init the
//! communicator, then loop compute / collective / memcpy / idle phases.
//!
//! A converter to library-mode phases lets the same trace drive the NCCL
//! baseline ([`to_baseline_phases`]).

use crate::trace::{IterationTrace, TracePhase};
use mccs_baseline::Phase as BaselinePhase;
use mccs_device::MemHandle;
use mccs_ipc::CommunicatorId;
use mccs_shim::{AppProgram, AppStatus, ReqId, ShimApi};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::GpuId;

enum GenState {
    AllocSend(Option<ReqId>),
    AllocRecv(Option<ReqId>),
    Init(Option<ReqId>),
    WaitStart,
    Phase {
        idx: usize,
        pending: Option<ReqId>,
        phase_deadline: Option<Nanos>,
    },
    Done,
}

/// One rank of a trace-replaying tenant.
pub struct TrafficGenerator {
    name: String,
    comm: CommunicatorId,
    world: Vec<GpuId>,
    rank: usize,
    trace: IterationTrace,
    start_at: Nanos,
    state: GenState,
    send: Option<MemHandle>,
    recv: Option<MemHandle>,
    iter: usize,
    /// Completed iterations (for throughput accounting in experiments).
    pub iterations_done: usize,
    /// Iteration completion times.
    pub iteration_ends: Vec<Nanos>,
}

impl TrafficGenerator {
    /// Build a generator for `rank` of `world`, starting at `start_at`.
    pub fn new(
        name: impl Into<String>,
        comm: CommunicatorId,
        world: Vec<GpuId>,
        rank: usize,
        trace: IterationTrace,
        start_at: Nanos,
    ) -> Self {
        assert!(rank < world.len());
        TrafficGenerator {
            name: name.into(),
            comm,
            world,
            rank,
            trace,
            start_at,
            state: GenState::AllocSend(None),
            send: None,
            recv: None,
            iter: 0,
            iterations_done: 0,
            iteration_ends: Vec::new(),
        }
    }

    /// The largest collective buffer the trace needs.
    fn buffer_size(&self) -> Bytes {
        self.trace
            .phases
            .iter()
            .filter_map(|p| match p {
                TracePhase::Collective { size, .. } => Some(*size),
                _ => None,
            })
            .max()
            .unwrap_or(Bytes::kib(4))
    }
}

impl AppProgram for TrafficGenerator {
    fn poll(&mut self, api: &mut ShimApi<'_>) -> AppStatus {
        api.pump();
        let buffer_size = self.buffer_size();
        loop {
            match &mut self.state {
                GenState::AllocSend(req) => match req {
                    None => {
                        *req = Some(api.alloc(buffer_size));
                        api.pump();
                    }
                    Some(r) => match api.alloc_result(*r) {
                        Some(h) => {
                            self.send = Some(h);
                            self.state = GenState::AllocRecv(None);
                        }
                        None => return AppStatus::Blocked,
                    },
                },
                GenState::AllocRecv(req) => match req {
                    None => {
                        *req = Some(api.alloc(buffer_size));
                        api.pump();
                    }
                    Some(r) => match api.alloc_result(*r) {
                        Some(h) => {
                            self.recv = Some(h);
                            self.state = GenState::Init(None);
                        }
                        None => return AppStatus::Blocked,
                    },
                },
                GenState::Init(req) => match req {
                    None => {
                        *req = Some(api.comm_init_rank(self.comm, self.world.clone(), self.rank));
                        api.pump();
                    }
                    Some(r) => match api.comm_result(*r) {
                        Some(_) => self.state = GenState::WaitStart,
                        None => return AppStatus::Blocked,
                    },
                },
                GenState::WaitStart => {
                    if api.now() < self.start_at {
                        api.schedule_wake(self.start_at);
                        return AppStatus::Blocked;
                    }
                    self.state = GenState::Phase {
                        idx: 0,
                        pending: None,
                        phase_deadline: None,
                    };
                }
                GenState::Phase {
                    idx,
                    pending,
                    phase_deadline,
                } => {
                    if *idx >= self.trace.phases.len() {
                        self.iter += 1;
                        self.iterations_done = self.iter;
                        self.iteration_ends.push(api.now());
                        if self.iter >= self.trace.iterations {
                            self.state = GenState::Done;
                            continue;
                        }
                        self.state = GenState::Phase {
                            idx: 0,
                            pending: None,
                            phase_deadline: None,
                        };
                        continue;
                    }
                    match self.trace.phases[*idx] {
                        TracePhase::Compute(d) | TracePhase::Memcpy(d) => {
                            // Modeled on the app stream: enqueue once, wait
                            // for the stream to drain.
                            match phase_deadline {
                                None => {
                                    api.compute(d);
                                    *phase_deadline = Some(api.now()); // marker
                                }
                                Some(_) => {
                                    if api.stream_idle() {
                                        *idx += 1;
                                        *phase_deadline = None;
                                    } else {
                                        return AppStatus::Blocked;
                                    }
                                }
                            }
                        }
                        TracePhase::Idle(d) => match phase_deadline {
                            None => {
                                let until = api.now() + d;
                                *phase_deadline = Some(until);
                                api.schedule_wake(until);
                                return AppStatus::Blocked;
                            }
                            Some(until) => {
                                if api.now() >= *until {
                                    *idx += 1;
                                    *phase_deadline = None;
                                } else {
                                    api.schedule_wake(*until);
                                    return AppStatus::Blocked;
                                }
                            }
                        },
                        TracePhase::Collective { op, size } => match pending {
                            None => {
                                let send = (self.send.expect("allocated"), 0);
                                let recv = (self.recv.expect("allocated"), 0);
                                *pending =
                                    Some(api.collective(self.comm, op, size, send, recv, None));
                                api.pump();
                            }
                            Some(r) => {
                                if let Some(msg) = api.error(*r) {
                                    panic!("generator '{}' collective failed: {msg}", self.name);
                                }
                                if api.collective_done(*r) {
                                    *pending = None;
                                    *idx += 1;
                                } else {
                                    return AppStatus::Blocked;
                                }
                            }
                        },
                    }
                }
                GenState::Done => return AppStatus::Finished,
            }
        }
    }

    fn name(&self) -> String {
        format!("{}-r{}", self.name, self.rank)
    }
}

/// Convert a trace into library-mode phases for the NCCL baseline
/// (idle/memcpy become compute gaps — the library only sees time passing).
pub fn to_baseline_phases(trace: &IterationTrace) -> Vec<BaselinePhase> {
    trace
        .phases
        .iter()
        .map(|p| match *p {
            TracePhase::Compute(d) | TracePhase::Memcpy(d) | TracePhase::Idle(d) => {
                BaselinePhase::Compute(d)
            }
            TracePhase::Collective { op, size } => BaselinePhase::Collective { op, size },
        })
        .collect()
}

/// Spawn a trace-replaying tenant on every GPU of `gpus` (one rank each).
pub fn spawn_traffic_app(
    cluster: &mut mccs_core::Cluster,
    name: &str,
    comm: CommunicatorId,
    gpus: &[GpuId],
    trace: &IterationTrace,
    start_at: Nanos,
) -> mccs_ipc::AppId {
    let ranks = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let gen =
                TrafficGenerator::new(name, comm, gpus.to_vec(), rank, trace.clone(), start_at);
            (gpu, Box::new(gen) as Box<dyn AppProgram>)
        })
        .collect();
    cluster.add_app(name, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use mccs_core::{Cluster, ClusterConfig};
    use mccs_ipc::AppId;
    use mccs_topology::presets;
    use std::sync::Arc;

    #[test]
    fn generator_replays_a_trace_end_to_end() {
        let mut cluster = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(11));
        let trace = models::resnet50_data_parallel(2);
        let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let app = spawn_traffic_app(
            &mut cluster,
            "resnet",
            CommunicatorId(1),
            &gpus,
            &trace,
            Nanos::ZERO,
        );
        cluster.run_until_quiescent(Nanos::from_secs(60));
        let tl = cluster.mgmt().timeline(app);
        // 4 allreduces per iteration x 2 iterations
        assert_eq!(tl.len(), 8);
        // compute gaps exist: consecutive issues are separated by >= 20ms
        for pair in tl.windows(2) {
            let gap = pair[1].issued_at - pair[0].completed_at.expect("done");
            assert!(
                gap >= Nanos::from_millis(19),
                "expected compute gap, got {gap}"
            );
        }
    }

    #[test]
    fn trace_gaps_are_discoverable_by_ts() {
        let mut cluster = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(12));
        let trace = models::resnet50_data_parallel(4);
        let gpus = [GpuId(0), GpuId(2)];
        let app = spawn_traffic_app(
            &mut cluster,
            "traced",
            CommunicatorId(1),
            &gpus,
            &trace,
            Nanos::ZERO,
        );
        cluster.run_until_quiescent(Nanos::from_secs(120));
        let gaps = cluster.mgmt().idle_gaps(app);
        assert!(
            !gaps.is_empty(),
            "periodic trace must expose idle gaps for TS"
        );
        let _ = AppId(0);
    }

    #[test]
    fn baseline_conversion_preserves_structure() {
        let trace = models::vgg19_data_parallel(1);
        let phases = to_baseline_phases(&trace);
        assert_eq!(phases.len(), trace.phases.len());
        let colls = phases
            .iter()
            .filter(|p| matches!(p, BaselinePhase::Collective { .. }))
            .count();
        assert_eq!(colls, trace.collectives_per_iteration());
    }
}
