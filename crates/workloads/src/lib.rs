//! # mccs-workloads — training workloads, traces and job generators
//!
//! Everything the evaluation runs on top of the system:
//!
//! * [`trace`] — iteration traces: the `(compute, collective, memcpy,
//!   idle)` phase sequences a training job repeats, plus the breakdown
//!   analyzer behind Figure 2.
//! * [`models`] — calibrated profiles substituting for the paper's
//!   PyTorch/DeepSpeed/Megatron traces (repro gate: no GPUs here):
//!   VGG-19 data-parallel, GPT-2.7B tensor-parallel, ResNet-50
//!   data-parallel. Parameter counts and bucket sizes are documented at
//!   each constructor; only the *structure* (collective sizes and compute
//!   gaps) matters for the network experiments.
//! * [`generator`] — the traffic generator (the paper implements exactly
//!   this "with Rust using the MCCS library"): an
//!   [`AppProgram`](mccs_shim::AppProgram) replaying a trace through the
//!   shim.
//! * [`jobs`] — the §6.5 job generator: Poisson arrivals, 16/32-GPU jobs,
//!   random vs. compact placement over a live occupancy map.

pub mod generator;
pub mod jobs;
pub mod models;
pub mod trace;

pub use generator::TrafficGenerator;
pub use jobs::{JobSpec, Placement, PlacementMap};
pub use models::{gpt27b_tensor_parallel, resnet50_data_parallel, vgg19_data_parallel};
pub use trace::{Breakdown, IterationTrace, TracePhase};
