//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the criterion API its benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated to a target
//! measurement time, then sampled repeatedly; the report prints
//! `min / median / mean` nanoseconds per iteration. No plots, no
//! statistical regression — numbers land on stdout and in
//! [`Criterion::results`] for programmatic use.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim always times per-batch and subtracts setup).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// One benchmark's aggregated timing.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id as passed to `bench_function`.
    pub name: String,
    /// Fastest observed sample, ns per iteration.
    pub min_ns: f64,
    /// Median sample, ns per iteration.
    pub median_ns: f64,
    /// Mean over all samples, ns per iteration.
    pub mean_ns: f64,
}

/// The benchmark driver.
pub struct Criterion {
    target_time: Duration,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(300),
            samples: 12,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_time = t;
        self
    }

    /// Override the sample count.
    pub fn sample_count(mut self, n: usize) -> Self {
        self.samples = n.max(3);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Time `f`'s routine and print a one-line report.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibrate: grow the iteration count until one sample fills its
        // share of the measurement budget.
        let per_sample = self.target_time / self.samples as u32;
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= per_sample || iters >= 1 << 24 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                100
            } else {
                // Aim straight for the budget with 2x headroom.
                (per_sample.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 100) as u64
            };
            iters = iters.saturating_mul(grow);
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min_ns = per_iter[0];
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<40} min {:>12}  median {:>12}  mean {:>12}  ({iters} iters/sample)",
            fmt_ns(min_ns),
            fmt_ns(median_ns),
            fmt_ns(mean_ns),
        );
        self.results.push(BenchResult {
            name: id.to_owned(),
            min_ns,
            median_ns,
            mean_ns,
        });
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh inputs, excluding `setup` time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
