//! # mccs-topology — datacenter cluster model
//!
//! The physical-network substrate the MCCS service reasons about and the
//! flow-level simulator (`mccs-netsim`) runs on: hosts with GPUs and NICs,
//! racks and pods, leaf/spine switches, directed capacity-labelled links,
//! and multi-path routing with ECMP semantics.
//!
//! The cloud provider's *private* view — the whole point of the paper is
//! that tenants never see this structure; only the provider-side components
//! (`mccs-core`, `mccs-control`) take a [`Topology`] argument.
//!
//! ## Module map
//! * [`ids`] — typed identifiers for every entity.
//! * [`graph`] — the [`Topology`] graph: hosts, GPUs, NICs, switches, links.
//! * [`builder`] — imperative construction API.
//! * [`routing`] — path enumeration, equal-cost path sets, ECMP selection.
//! * [`presets`] — the paper's concrete topologies: the 4-host testbed
//!   (Fig. 5a), the 768-GPU spine-leaf cluster (§6.5), the 4-switch ring
//!   (Fig. 7), and a flat single-switch network.
//! * [`locality`] — rack/pod grouping and locality distance used by the
//!   locality-aware ring policy.

pub mod builder;
pub mod graph;
pub mod ids;
pub mod locality;
pub mod presets;
pub mod routing;

pub use builder::TopologyBuilder;
pub use graph::{Gpu, Host, Link, Nic, Switch, SwitchRole, Topology};
pub use ids::{GpuId, HostId, LinkId, NicId, PodId, RackId, SwitchId};
pub use locality::{Locality, LocalityMap};
pub use routing::{Route, RouteId};
