//! Imperative topology construction.
//!
//! [`TopologyBuilder`] assigns dense ids in creation order, wires NIC
//! up/downlinks automatically and validates the finished graph. The presets
//! in [`crate::presets`] are thin layers over this builder; tests and
//! downstream users can construct arbitrary fabrics with it.

use crate::graph::{Endpoint, Gpu, Host, Link, Nic, Switch, SwitchRole, Topology};
use crate::ids::{GpuId, HostId, LinkId, NicId, PodId, RackId, SwitchId};
use mccs_sim::Bandwidth;

/// Builder for [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    hosts: Vec<Host>,
    gpus: Vec<Gpu>,
    nics: Vec<Nic>,
    switches: Vec<Switch>,
    links: Vec<Link>,
    rack_pods: Vec<PodId>,
    rack_hosts: Vec<Vec<HostId>>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a rack inside a pod; racks must be declared before hosts
    /// reference them. Returns the new rack id.
    pub fn add_rack(&mut self, pod: PodId) -> RackId {
        let id = RackId(self.rack_hosts.len() as u32);
        self.rack_pods.push(pod);
        self.rack_hosts.push(Vec::new());
        id
    }

    /// Add a switch.
    pub fn add_switch(&mut self, role: SwitchRole, rack: Option<RackId>) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(Switch { id, role, rack });
        id
    }

    /// Add a host with `gpu_count` GPUs, each affined to its own NIC of
    /// `nic_bandwidth`, with all NICs attached to `switch`. This mirrors
    /// the paper's testbed (one 50 Gbps virtual NIC per GPU) and its
    /// large-scale cluster (8 GPUs + 8 NICs per host).
    pub fn add_host(
        &mut self,
        rack: RackId,
        switch: SwitchId,
        gpu_count: usize,
        nic_bandwidth: Bandwidth,
    ) -> HostId {
        assert!(rack.index() < self.rack_hosts.len(), "undeclared rack");
        assert!(switch.index() < self.switches.len(), "undeclared switch");
        assert!(gpu_count > 0, "host needs at least one GPU");
        let host_id = HostId(self.hosts.len() as u32);
        let mut gpu_ids = Vec::with_capacity(gpu_count);
        let mut nic_ids = Vec::with_capacity(gpu_count);
        for local in 0..gpu_count {
            let nic_id = NicId(self.nics.len() as u32);
            let uplink = self.push_link(
                Endpoint::Nic(nic_id),
                Endpoint::Switch(switch),
                nic_bandwidth,
            );
            let downlink = self.push_link(
                Endpoint::Switch(switch),
                Endpoint::Nic(nic_id),
                nic_bandwidth,
            );
            self.nics.push(Nic {
                id: nic_id,
                host: host_id,
                local_index: local,
                switch,
                uplink,
                downlink,
                bandwidth: nic_bandwidth,
            });
            let gpu_id = GpuId(self.gpus.len() as u32);
            self.gpus.push(Gpu {
                id: gpu_id,
                host: host_id,
                local_index: local,
                nic: nic_id,
            });
            gpu_ids.push(gpu_id);
            nic_ids.push(nic_id);
        }
        self.hosts.push(Host {
            id: host_id,
            rack,
            gpus: gpu_ids,
            nics: nic_ids,
        });
        self.rack_hosts[rack.index()].push(host_id);
        host_id
    }

    /// Connect two switches with a bidirectional pair of links of the given
    /// rate. Returns `(a_to_b, b_to_a)` link ids.
    pub fn connect_switches(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        bandwidth: Bandwidth,
    ) -> (LinkId, LinkId) {
        assert_ne!(a, b, "self-loop link");
        let ab = self.push_link(Endpoint::Switch(a), Endpoint::Switch(b), bandwidth);
        let ba = self.push_link(Endpoint::Switch(b), Endpoint::Switch(a), bandwidth);
        (ab, ba)
    }

    /// Add a unidirectional switch-to-switch link (used by tests exercising
    /// asymmetric fabrics).
    pub fn connect_switches_oneway(
        &mut self,
        from: SwitchId,
        to: SwitchId,
        bandwidth: Bandwidth,
    ) -> LinkId {
        assert_ne!(from, to, "self-loop link");
        self.push_link(Endpoint::Switch(from), Endpoint::Switch(to), bandwidth)
    }

    fn push_link(&mut self, from: Endpoint, to: Endpoint, bandwidth: Bandwidth) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            from,
            to,
            bandwidth,
        });
        id
    }

    /// Finish: compute adjacency, validate, and freeze the topology.
    ///
    /// # Panics
    /// Panics when the structural invariants of [`Topology::validate`] do
    /// not hold — a builder bug, not a user error.
    pub fn build(self) -> Topology {
        let mut switch_out = vec![Vec::new(); self.switches.len()];
        for link in &self.links {
            if let Endpoint::Switch(sw) = link.from {
                switch_out[sw.index()].push(link.id);
            }
        }
        let topo = Topology {
            hosts: self.hosts,
            gpus: self.gpus,
            nics: self.nics,
            switches: self.switches,
            links: self.links,
            rack_pods: self.rack_pods,
            rack_hosts: self.rack_hosts,
            switch_out,
            route_cache: Default::default(),
        };
        if let Err(e) = topo.validate() {
            panic!("TopologyBuilder produced an invalid topology: {e}");
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_host_topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let pod = PodId(0);
        let rack = b.add_rack(pod);
        let leaf = b.add_switch(SwitchRole::Leaf, Some(rack));
        b.add_host(rack, leaf, 2, Bandwidth::gbps(50.0));
        b.add_host(rack, leaf, 2, Bandwidth::gbps(50.0));
        b.build()
    }

    #[test]
    fn builds_and_validates() {
        let t = two_host_topo();
        assert_eq!(t.hosts().len(), 2);
        assert_eq!(t.gpus().len(), 4);
        assert_eq!(t.nics().len(), 4);
        // 4 NICs * 2 links each
        assert_eq!(t.links().len(), 8);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn gpu_nic_affinity() {
        let t = two_host_topo();
        for gpu in t.gpus() {
            let nic = t.nic(gpu.nic);
            assert_eq!(nic.host, gpu.host);
            assert_eq!(nic.local_index, gpu.local_index);
        }
    }

    #[test]
    fn rack_membership() {
        let t = two_host_topo();
        assert_eq!(t.hosts_in_rack(RackId(0)).len(), 2);
        assert!(t.same_rack(HostId(0), HostId(1)));
        assert!(t.same_host(GpuId(0), GpuId(1)));
        assert!(!t.same_host(GpuId(1), GpuId(2)));
    }

    #[test]
    fn switch_links_bidirectional() {
        let mut b = TopologyBuilder::new();
        let pod = PodId(0);
        let r = b.add_rack(pod);
        let s1 = b.add_switch(SwitchRole::Leaf, Some(r));
        let s2 = b.add_switch(SwitchRole::Spine, None);
        let (ab, ba) = b.connect_switches(s1, s2, Bandwidth::gbps(100.0));
        b.add_host(r, s1, 1, Bandwidth::gbps(100.0));
        let t = b.build();
        assert_eq!(t.link(ab).from, Endpoint::Switch(s1));
        assert_eq!(t.link(ba).to, Endpoint::Switch(s1));
        assert_eq!(t.switch_out_links(s1).len(), 2); // to spine + host downlink
    }

    #[test]
    #[should_panic(expected = "undeclared rack")]
    fn rejects_unknown_rack() {
        let mut b = TopologyBuilder::new();
        let s = b.add_switch(SwitchRole::Leaf, None);
        b.add_host(RackId(0), s, 1, Bandwidth::gbps(10.0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new();
        let s = b.add_switch(SwitchRole::Generic, None);
        b.connect_switches(s, s, Bandwidth::gbps(1.0));
    }
}
