//! The paper's concrete topologies.
//!
//! * [`testbed`] — the 4-host evaluation testbed of Figure 5a: two emulated
//!   racks, two spines, 50 Gbps inter-switch links, two 50 Gbps virtual NICs
//!   per host (one per GPU), 2× oversubscription.
//! * [`spine_leaf`] — the parameterized Clos used for the §6.5 simulations
//!   (16 spines × 24 leaves × 4 hosts × 8 GPUs = 768 GPUs, 200 Gbps links).
//! * [`switch_ring`] — the 4-switch ring of Figure 7's reconfiguration demo.
//! * [`single_switch`] — a flat network for unit tests.

use crate::builder::TopologyBuilder;
use crate::graph::{SwitchRole, Topology};
use crate::ids::PodId;
use mccs_sim::Bandwidth;

/// Parameters for a two-tier spine-leaf (Clos) fabric.
#[derive(Clone, Debug)]
pub struct SpineLeafConfig {
    /// Number of spine switches; every leaf connects to every spine.
    pub spines: usize,
    /// Number of leaf (top-of-rack) switches; one rack per leaf.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// GPUs per host; each GPU gets its own NIC of `nic_bandwidth`.
    pub gpus_per_host: usize,
    /// Per-NIC line rate.
    pub nic_bandwidth: Bandwidth,
    /// Per leaf-spine link rate.
    pub leaf_spine_bandwidth: Bandwidth,
}

impl SpineLeafConfig {
    /// The §6.5 large-scale cluster: 16 spines, 24 leaves, 4 hosts/leaf,
    /// 8 GPUs + 8 NICs per host, all links 200 Gbps (oversubscription 2:
    /// 4×8×200G up from hosts vs 16×200G to spines per leaf).
    pub fn paper_large_scale() -> Self {
        SpineLeafConfig {
            spines: 16,
            leaves: 24,
            hosts_per_leaf: 4,
            gpus_per_host: 8,
            nic_bandwidth: Bandwidth::gbps(200.0),
            leaf_spine_bandwidth: Bandwidth::gbps(200.0),
        }
    }

    /// Oversubscription ratio: host uplink capacity per leaf over
    /// leaf-to-spine capacity.
    pub fn oversubscription(&self) -> f64 {
        let up =
            self.hosts_per_leaf as f64 * self.gpus_per_host as f64 * self.nic_bandwidth.as_bps();
        let down = self.spines as f64 * self.leaf_spine_bandwidth.as_bps();
        up / down
    }
}

/// Build a two-tier spine-leaf fabric (single pod).
pub fn spine_leaf(cfg: &SpineLeafConfig) -> Topology {
    assert!(cfg.spines > 0 && cfg.leaves > 0, "degenerate fabric");
    let mut b = TopologyBuilder::new();
    let pod = PodId(0);
    let spines: Vec<_> = (0..cfg.spines)
        .map(|_| b.add_switch(SwitchRole::Spine, None))
        .collect();
    for _ in 0..cfg.leaves {
        let rack = b.add_rack(pod);
        let leaf = b.add_switch(SwitchRole::Leaf, Some(rack));
        for &spine in &spines {
            b.connect_switches(leaf, spine, cfg.leaf_spine_bandwidth);
        }
        for _ in 0..cfg.hosts_per_leaf {
            b.add_host(rack, leaf, cfg.gpus_per_host, cfg.nic_bandwidth);
        }
    }
    b.build()
}

/// The paper's testbed (Fig. 5a): 4 hosts, 2 GPUs each, one 50 Gbps virtual
/// NIC per GPU; 2 racks of 2 hosts; 2 leaves × 2 spines with 50 Gbps
/// inter-switch links (oversubscription 2).
///
/// Host numbering is physical: H0, H1 in rack 0; H2, H3 in rack 1.
/// (Tenant-visible "VM order" interleaving racks — which makes NCCL's
/// rank-order ring cross racks — is applied by the experiment harness, not
/// baked into the topology.)
pub fn testbed() -> Topology {
    spine_leaf(&SpineLeafConfig {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 2,
        gpus_per_host: 2,
        nic_bandwidth: Bandwidth::gbps(50.0),
        leaf_spine_bandwidth: Bandwidth::gbps(50.0),
    })
}

/// The Figure 7 scenario: `n` switches connected in a ring, one host per
/// switch. Collective rings over the hosts can run "clockwise" (following
/// increasing switch index) or "counterclockwise"; a background flow on one
/// clockwise inter-switch link only degrades clockwise collectives.
pub fn switch_ring(
    n: usize,
    gpus_per_host: usize,
    nic_bandwidth: Bandwidth,
    inter_switch_bandwidth: Bandwidth,
) -> Topology {
    assert!(n >= 3, "ring needs at least 3 switches");
    let mut b = TopologyBuilder::new();
    let racks: Vec<_> = (0..n).map(|_| b.add_rack(PodId(0))).collect();
    let switches: Vec<_> = (0..n)
        .map(|i| b.add_switch(SwitchRole::Generic, Some(racks[i])))
        .collect();
    for i in 0..n {
        b.connect_switches(switches[i], switches[(i + 1) % n], inter_switch_bandwidth);
    }
    for i in 0..n {
        b.add_host(racks[i], switches[i], gpus_per_host, nic_bandwidth);
    }
    b.build()
}

/// A flat single-switch network: `hosts` hosts of `gpus_per_host` GPUs.
pub fn single_switch(hosts: usize, gpus_per_host: usize, nic_bandwidth: Bandwidth) -> Topology {
    let mut b = TopologyBuilder::new();
    let rack = b.add_rack(PodId(0));
    let sw = b.add_switch(SwitchRole::Leaf, Some(rack));
    for _ in 0..hosts {
        b.add_host(rack, sw, gpus_per_host, nic_bandwidth);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NicId;

    #[test]
    fn testbed_shape() {
        let t = testbed();
        assert_eq!(t.hosts().len(), 4);
        assert_eq!(t.gpus().len(), 8);
        assert_eq!(t.nics().len(), 8);
        assert_eq!(t.rack_count(), 2);
        assert_eq!(t.switches().len(), 4); // 2 leaves + 2 spines
        assert!(t.validate().is_ok());
    }

    #[test]
    fn testbed_cross_rack_diversity_is_two() {
        let t = testbed();
        // host0 nic0 -> host2 nic0 crosses racks: one path per spine.
        let h0nic = t.host(crate::ids::HostId(0)).nics[0];
        let h2nic = t.host(crate::ids::HostId(2)).nics[0];
        assert_eq!(t.path_diversity(h0nic, h2nic), 2);
        // same-rack pairs ride the shared leaf: single path.
        let h1nic = t.host(crate::ids::HostId(1)).nics[0];
        assert_eq!(t.path_diversity(h0nic, h1nic), 1);
    }

    #[test]
    fn testbed_oversubscription_is_two() {
        let cfg = SpineLeafConfig {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 2,
            gpus_per_host: 2,
            nic_bandwidth: Bandwidth::gbps(50.0),
            leaf_spine_bandwidth: Bandwidth::gbps(50.0),
        };
        assert!((cfg.oversubscription() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_large_scale_shape() {
        let cfg = SpineLeafConfig::paper_large_scale();
        assert!((cfg.oversubscription() - 2.0).abs() < 1e-12);
        let t = spine_leaf(&cfg);
        assert_eq!(t.gpus().len(), 768);
        assert_eq!(t.hosts().len(), 96);
        assert_eq!(t.rack_count(), 24);
        assert_eq!(t.switches().len(), 40);
        // cross-rack diversity = number of spines
        let a = t.host(crate::ids::HostId(0)).nics[0];
        let b = t.host(crate::ids::HostId(4)).nics[0];
        assert_eq!(t.path_diversity(a, b), 16);
    }

    #[test]
    fn switch_ring_shape() {
        let t = switch_ring(4, 2, Bandwidth::gbps(50.0), Bandwidth::gbps(100.0));
        assert_eq!(t.hosts().len(), 4);
        assert_eq!(t.switches().len(), 4);
        // adjacent hosts: unique 1-switch-hop path
        assert_eq!(t.path_diversity(NicId(0), NicId(2)), 1);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn single_switch_shape() {
        let t = single_switch(3, 4, Bandwidth::gbps(100.0));
        assert_eq!(t.gpus().len(), 12);
        assert_eq!(t.rack_count(), 1);
        assert_eq!(t.path_diversity(NicId(0), NicId(4)), 1);
    }
}
