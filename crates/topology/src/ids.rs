//! Typed identifiers.
//!
//! Every entity in the cluster model gets its own index newtype so that a
//! GPU index can never be confused with a NIC or link index. Identifiers
//! are dense indices assigned in creation order by [`crate::TopologyBuilder`].

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index behind this id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A physical host (server).
    HostId,
    "host"
);
id_type!(
    /// A GPU, globally indexed across the cluster.
    GpuId,
    "gpu"
);
id_type!(
    /// A NIC (or SR-IOV virtual NIC), globally indexed.
    NicId,
    "nic"
);
id_type!(
    /// A switch (leaf, spine, or generic).
    SwitchId,
    "sw"
);
id_type!(
    /// A directed link.
    LinkId,
    "link"
);
id_type!(
    /// A rack: the failure/locality domain directly above hosts.
    RackId,
    "rack"
);
id_type!(
    /// A pod: a group of racks sharing an aggregation layer.
    PodId,
    "pod"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(format!("{}", GpuId(3)), "gpu3");
        assert_eq!(format!("{:?}", LinkId(7)), "link7");
        assert_eq!(HostId(9).index(), 9);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NicId(1));
        set.insert(NicId(1));
        set.insert(NicId(2));
        assert_eq!(set.len(), 2);
        assert!(NicId(1) < NicId(2));
    }
}
