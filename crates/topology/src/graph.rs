//! The cluster graph.
//!
//! A [`Topology`] is an immutable directed graph whose endpoints are NICs
//! and switches. Hosts, GPUs, racks and pods are bookkeeping layered on
//! top: a host holds GPUs and NICs; GPU `i` of a host is affined to NIC `i`
//! (the paper's testbed dedicates one 50 Gbps virtual NIC per GPU); a rack
//! groups hosts; a pod groups racks.
//!
//! Intra-host transfers (GPU-to-GPU over shared memory / NVLink-class
//! channels) do not traverse this graph — they are modeled by
//! `mccs-device`. The graph starts at the NIC.

use crate::ids::{GpuId, HostId, LinkId, NicId, PodId, RackId, SwitchId};
use mccs_sim::Bandwidth;

/// Where a link endpoint attaches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// A host NIC.
    Nic(NicId),
    /// A switch port.
    Switch(SwitchId),
}

/// A directed, capacity-labelled link.
#[derive(Clone, Debug)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Transmitting endpoint.
    pub from: Endpoint,
    /// Receiving endpoint.
    pub to: Endpoint,
    /// Line rate.
    pub bandwidth: Bandwidth,
}

/// The role of a switch in the fabric (informational; routing is generic).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchRole {
    /// Top-of-rack / leaf switch serving one rack.
    Leaf,
    /// Spine / aggregation switch.
    Spine,
    /// Anything else (e.g. the ring switches of Figure 7).
    Generic,
}

/// A switch.
#[derive(Clone, Debug)]
pub struct Switch {
    /// This switch's id.
    pub id: SwitchId,
    /// Its role in the fabric.
    pub role: SwitchRole,
    /// The rack it serves, for leaf switches.
    pub rack: Option<RackId>,
}

/// A GPU.
#[derive(Clone, Debug)]
pub struct Gpu {
    /// This GPU's global id.
    pub id: GpuId,
    /// Owning host.
    pub host: HostId,
    /// Index within the host (0-based).
    pub local_index: usize,
    /// The NIC this GPU's inter-host traffic uses.
    pub nic: NicId,
}

/// A NIC (physical or SR-IOV virtual function).
#[derive(Clone, Debug)]
pub struct Nic {
    /// This NIC's global id.
    pub id: NicId,
    /// Owning host.
    pub host: HostId,
    /// Index within the host (0-based).
    pub local_index: usize,
    /// The switch it attaches to.
    pub switch: SwitchId,
    /// Uplink (NIC -> switch) link.
    pub uplink: LinkId,
    /// Downlink (switch -> NIC) link.
    pub downlink: LinkId,
    /// Line rate.
    pub bandwidth: Bandwidth,
}

/// A host (server).
#[derive(Clone, Debug)]
pub struct Host {
    /// This host's id.
    pub id: HostId,
    /// The rack it sits in.
    pub rack: RackId,
    /// Its GPUs, in local-index order.
    pub gpus: Vec<GpuId>,
    /// Its NICs, in local-index order.
    pub nics: Vec<NicId>,
}

/// The immutable cluster graph. Build with [`crate::TopologyBuilder`] or a
/// preset from [`crate::presets`].
#[derive(Debug)]
pub struct Topology {
    pub(crate) hosts: Vec<Host>,
    pub(crate) gpus: Vec<Gpu>,
    pub(crate) nics: Vec<Nic>,
    pub(crate) switches: Vec<Switch>,
    pub(crate) links: Vec<Link>,
    /// rack -> pod mapping.
    pub(crate) rack_pods: Vec<PodId>,
    /// rack -> hosts.
    pub(crate) rack_hosts: Vec<Vec<HostId>>,
    /// Outgoing switch-to-switch / switch-to-nic adjacency:
    /// for each switch, the links leaving it.
    pub(crate) switch_out: Vec<Vec<LinkId>>,
    /// Memoized equal-cost path sets (see `routing`).
    pub(crate) route_cache: crate::routing::RouteCache,
}

impl Topology {
    // ---- entity accessors ------------------------------------------------

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// All GPUs.
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// All NICs.
    pub fn nics(&self) -> &[Nic] {
        &self.nics
    }

    /// All switches.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Look up a host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// Look up a GPU.
    pub fn gpu(&self, id: GpuId) -> &Gpu {
        &self.gpus[id.index()]
    }

    /// Look up a NIC.
    pub fn nic(&self, id: NicId) -> &Nic {
        &self.nics[id.index()]
    }

    /// Look up a switch.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.index()]
    }

    /// Look up a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    // ---- locality --------------------------------------------------------

    /// The rack a host sits in.
    pub fn rack_of(&self, host: HostId) -> RackId {
        self.host(host).rack
    }

    /// The pod a rack sits in.
    pub fn pod_of(&self, rack: RackId) -> PodId {
        self.rack_pods[rack.index()]
    }

    /// The pod a host sits in.
    pub fn pod_of_host(&self, host: HostId) -> PodId {
        self.pod_of(self.rack_of(host))
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.rack_hosts.len()
    }

    /// Number of pods.
    pub fn pod_count(&self) -> usize {
        self.rack_pods
            .iter()
            .map(|p| p.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Hosts in a rack, in id order.
    pub fn hosts_in_rack(&self, rack: RackId) -> &[HostId] {
        &self.rack_hosts[rack.index()]
    }

    /// The host a GPU belongs to.
    pub fn host_of_gpu(&self, gpu: GpuId) -> HostId {
        self.gpu(gpu).host
    }

    /// The NIC affined to a GPU.
    pub fn nic_of_gpu(&self, gpu: GpuId) -> NicId {
        self.gpu(gpu).nic
    }

    /// Whether two GPUs share a host (their traffic never enters the fabric).
    pub fn same_host(&self, a: GpuId, b: GpuId) -> bool {
        self.gpu(a).host == self.gpu(b).host
    }

    /// Whether two hosts share a rack.
    pub fn same_rack(&self, a: HostId, b: HostId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    // ---- graph structure ---------------------------------------------------

    /// Links leaving a switch.
    pub fn switch_out_links(&self, sw: SwitchId) -> &[LinkId] {
        &self.switch_out[sw.index()]
    }

    /// Per-link solver bucket for rack-partitioned rate solves: bucket `0`
    /// is the shared/global bucket (links not attributable to one rack —
    /// e.g. spine-to-spine hops in a switch ring); bucket `r + 1` holds
    /// the links attributable to rack `r`. A NIC endpoint resolves to its
    /// host's rack; a switch endpoint resolves to the switch's rack (set
    /// for leaf switches). A leaf↔spine link therefore lands in the leaf's
    /// rack, so any two flows sharing *any* link always share at least one
    /// bucket — the property that makes bucket-granularity components a
    /// sound coarsening of flow×link connected components.
    pub fn link_rack_buckets(&self) -> Vec<u32> {
        let rack_of_ep = |ep: &Endpoint| -> Option<RackId> {
            match ep {
                Endpoint::Nic(n) => Some(self.rack_of(self.nic(*n).host)),
                Endpoint::Switch(s) => self.switch(*s).rack,
            }
        };
        self.links
            .iter()
            .map(|l| match (rack_of_ep(&l.from), rack_of_ep(&l.to)) {
                (Some(a), Some(b)) if a != b => 0,
                (Some(a), _) => a.index() as u32 + 1,
                (_, Some(b)) => b.index() as u32 + 1,
                (None, None) => 0,
            })
            .collect()
    }

    /// Total NIC count per host (uniform clusters); panics on empty cluster.
    pub fn nics_per_host(&self) -> usize {
        self.hosts.first().expect("empty cluster").nics.len()
    }

    /// Total GPU count.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Structural sanity checks; run by the builder and available to tests.
    ///
    /// Verifies: id/index density, NIC up/downlink endpoints, GPU-NIC
    /// affinity pointing at the same host, rack membership consistency,
    /// and switch adjacency covering exactly the switch-sourced links.
    pub fn validate(&self) -> Result<(), String> {
        for (i, h) in self.hosts.iter().enumerate() {
            if h.id.index() != i {
                return Err(format!("host id {} at index {i}", h.id));
            }
            if !self.rack_hosts[h.rack.index()].contains(&h.id) {
                return Err(format!("{} missing from its rack list", h.id));
            }
        }
        for (i, g) in self.gpus.iter().enumerate() {
            if g.id.index() != i {
                return Err(format!("gpu id {} at index {i}", g.id));
            }
            if self.nic(g.nic).host != g.host {
                return Err(format!("{} affined to NIC on another host", g.id));
            }
        }
        for (i, n) in self.nics.iter().enumerate() {
            if n.id.index() != i {
                return Err(format!("nic id {} at index {i}", n.id));
            }
            let up = self.link(n.uplink);
            if up.from != Endpoint::Nic(n.id) || up.to != Endpoint::Switch(n.switch) {
                return Err(format!("{} uplink endpoints wrong", n.id));
            }
            let down = self.link(n.downlink);
            if down.from != Endpoint::Switch(n.switch) || down.to != Endpoint::Nic(n.id) {
                return Err(format!("{} downlink endpoints wrong", n.id));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.id.index() != i {
                return Err(format!("link id {} at index {i}", l.id));
            }
            if l.bandwidth.as_bps() <= 0.0 {
                return Err(format!("{} has zero bandwidth", l.id));
            }
        }
        for (i, out) in self.switch_out.iter().enumerate() {
            for &l in out {
                if self.link(l).from != Endpoint::Switch(SwitchId(i as u32)) {
                    return Err(format!("adjacency of sw{i} lists foreign {l}"));
                }
            }
        }
        let switch_sourced = self
            .links
            .iter()
            .filter(|l| matches!(l.from, Endpoint::Switch(_)))
            .count();
        let adj_total: usize = self.switch_out.iter().map(Vec::len).sum();
        if switch_sourced != adj_total {
            return Err("switch adjacency incomplete".into());
        }
        Ok(())
    }
}
