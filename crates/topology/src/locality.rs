//! Locality structure over GPU sets.
//!
//! The locality-aware ring policy (paper §4.3, Example #1) groups a
//! communicator's participant hosts "by their locality (e.g., under the
//! same rack, under the same pod) and then connects them in a sequential
//! order". [`LocalityMap`] computes that grouping for an arbitrary GPU set;
//! [`Locality`] is the distance lattice between two GPUs.

use crate::graph::Topology;
use crate::ids::{GpuId, HostId, PodId, RackId};
use std::collections::BTreeMap;

/// How close two GPUs are, from tightest to loosest coupling.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Locality {
    /// Same host: traffic stays on intra-host channels.
    SameHost,
    /// Same rack: traffic turns around at the leaf switch.
    SameRack,
    /// Same pod, different racks: traffic crosses the spine layer.
    SamePod,
    /// Different pods.
    CrossPod,
}

impl Topology {
    /// Locality class of a GPU pair.
    pub fn locality(&self, a: GpuId, b: GpuId) -> Locality {
        let ha = self.host_of_gpu(a);
        let hb = self.host_of_gpu(b);
        if ha == hb {
            Locality::SameHost
        } else if self.rack_of(ha) == self.rack_of(hb) {
            Locality::SameRack
        } else if self.pod_of_host(ha) == self.pod_of_host(hb) {
            Locality::SamePod
        } else {
            Locality::CrossPod
        }
    }
}

/// A GPU set organized pod -> rack -> host -> GPUs, each level in
/// deterministic (id) order. This is the input shape the greedy
/// locality-aware ring constructor walks.
#[derive(Clone, Debug)]
pub struct LocalityMap {
    /// pod -> rack -> host -> gpus, all sorted by id.
    pods: BTreeMap<PodId, BTreeMap<RackId, BTreeMap<HostId, Vec<GpuId>>>>,
    total: usize,
}

impl LocalityMap {
    /// Group `gpus` by their position in `topo`.
    pub fn build(topo: &Topology, gpus: &[GpuId]) -> Self {
        let mut pods: BTreeMap<PodId, BTreeMap<RackId, BTreeMap<HostId, Vec<GpuId>>>> =
            BTreeMap::new();
        for &g in gpus {
            let host = topo.host_of_gpu(g);
            let rack = topo.rack_of(host);
            let pod = topo.pod_of(rack);
            pods.entry(pod)
                .or_default()
                .entry(rack)
                .or_default()
                .entry(host)
                .or_default()
                .push(g);
        }
        for racks in pods.values_mut() {
            for hosts in racks.values_mut() {
                for gs in hosts.values_mut() {
                    gs.sort_unstable();
                }
            }
        }
        LocalityMap {
            pods,
            total: gpus.len(),
        }
    }

    /// Total GPU count.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct racks.
    pub fn rack_count(&self) -> usize {
        self.pods.values().map(BTreeMap::len).sum()
    }

    /// Number of distinct hosts.
    pub fn host_count(&self) -> usize {
        self.pods
            .values()
            .flat_map(BTreeMap::values)
            .map(BTreeMap::len)
            .sum()
    }

    /// GPUs flattened in locality order: pods, then racks within the pod,
    /// then hosts within the rack, then GPUs within the host. Chaining this
    /// order into a ring visits every host exactly once and every rack
    /// contiguously — the greedy optimal ring of §4.3.
    pub fn locality_order(&self) -> Vec<GpuId> {
        self.pods
            .values()
            .flat_map(BTreeMap::values)
            .flat_map(BTreeMap::values)
            .flatten()
            .copied()
            .collect()
    }

    /// Hosts in locality order with their GPUs.
    pub fn hosts_in_order(&self) -> Vec<(HostId, Vec<GpuId>)> {
        self.pods
            .values()
            .flat_map(BTreeMap::values)
            .flat_map(BTreeMap::iter)
            .map(|(h, gs)| (*h, gs.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn locality_lattice() {
        let t = presets::testbed();
        // testbed: H0,H1 rack0; H2,H3 rack1; GPUs 0,1 on H0 etc.
        assert_eq!(t.locality(GpuId(0), GpuId(1)), Locality::SameHost);
        assert_eq!(t.locality(GpuId(0), GpuId(2)), Locality::SameRack);
        assert_eq!(t.locality(GpuId(0), GpuId(4)), Locality::SamePod);
        assert!(Locality::SameHost < Locality::SameRack);
        assert!(Locality::SamePod < Locality::CrossPod);
    }

    #[test]
    fn map_groups_by_rack_and_host() {
        let t = presets::testbed();
        // GPUs from H0 (rack0), H2 and H3 (rack1), deliberately shuffled.
        let gpus = vec![GpuId(7), GpuId(0), GpuId(4), GpuId(1), GpuId(6)];
        let m = LocalityMap::build(&t, &gpus);
        assert_eq!(m.len(), 5);
        assert_eq!(m.rack_count(), 2);
        assert_eq!(m.host_count(), 3);
        let order = m.locality_order();
        // H0's GPUs (0,1) contiguous, then H2 (4), then H3 (6,7).
        assert_eq!(
            order,
            vec![GpuId(0), GpuId(1), GpuId(4), GpuId(6), GpuId(7)]
        );
    }

    #[test]
    fn hosts_in_order_are_rack_contiguous() {
        let t = presets::testbed();
        let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
        let m = LocalityMap::build(&t, &gpus);
        let hosts: Vec<HostId> = m.hosts_in_order().into_iter().map(|(h, _)| h).collect();
        assert_eq!(hosts, vec![HostId(0), HostId(1), HostId(2), HostId(3)]);
        // rack boundaries: exactly one transition 0..1 at index 1->2
        let racks: Vec<_> = hosts.iter().map(|&h| t.rack_of(h)).collect();
        let transitions = racks.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1);
    }

    #[test]
    fn empty_map() {
        let t = presets::testbed();
        let m = LocalityMap::build(&t, &[]);
        assert!(m.is_empty());
        assert_eq!(m.locality_order(), Vec::<GpuId>::new());
    }
}
