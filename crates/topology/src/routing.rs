//! Multi-path routing.
//!
//! Routing between NICs enumerates **all minimum-hop switch paths** — the
//! equal-cost set that datacenter ECMP hashes over. MCCS's explicit route
//! control (the paper encodes a route id in the RoCEv2 UDP source port and
//! installs policy-based routing at the switches) is modeled by [`RouteId`]:
//! an index into the deterministic equal-cost path set for a NIC pair.
//!
//! Enumeration is a BFS over switches followed by a shortest-path-DAG walk,
//! with results memoized per NIC pair (the 768-GPU cluster of §6.5 touches
//! many pairs repeatedly during fair flow assignment).

use crate::graph::{Endpoint, Topology};
use crate::ids::{LinkId, NicId, SwitchId};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

/// An index into the equal-cost path set of a NIC pair — the provider's
/// explicit route handle ("route ID" in the paper's §5 Management).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouteId(pub u32);

impl RouteId {
    /// The dense index behind this id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A concrete NIC-to-NIC path: uplink, zero or more switch-to-switch links,
/// downlink.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Route {
    /// Source NIC.
    pub src: NicId,
    /// Destination NIC.
    pub dst: NicId,
    /// Which equal-cost choice this is.
    pub id: RouteId,
    /// The links traversed, in order.
    pub links: Arc<[LinkId]>,
}

impl Route {
    /// Number of links traversed.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

/// The memoized equal-cost route set for one (src, dst) NIC pair.
type PathSet = Arc<Vec<Route>>;

/// Memoized equal-cost path sets. Owned by [`Topology`].
#[derive(Default, Debug)]
pub(crate) struct RouteCache {
    cache: RwLock<HashMap<(NicId, NicId), PathSet>>,
}

impl Topology {
    /// All equal-cost (minimum-hop) routes from `src` to `dst`, in a
    /// deterministic order (lexicographic by link id). Memoized.
    ///
    /// # Panics
    /// Panics if `src == dst` (loopback never reaches the fabric) or if the
    /// fabric is partitioned between the two NICs.
    pub fn ecmp_paths(&self, src: NicId, dst: NicId) -> Arc<Vec<Route>> {
        assert_ne!(src, dst, "no route from a NIC to itself");
        if let Some(hit) = self
            .route_cache
            .cache
            .read()
            .expect("route cache poisoned")
            .get(&(src, dst))
        {
            return Arc::clone(hit);
        }
        let routes = Arc::new(self.enumerate_shortest(src, dst));
        self.route_cache
            .cache
            .write()
            .expect("route cache poisoned")
            .insert((src, dst), Arc::clone(&routes));
        routes
    }

    /// Number of equal-cost choices between two NICs — the "network
    /// multi-path choices" count that sizes the ring/channel fan-out in the
    /// paper's §6.5.
    pub fn path_diversity(&self, src: NicId, dst: NicId) -> usize {
        self.ecmp_paths(src, dst).len()
    }

    /// The route an ECMP hash selects. The hash is mixed (splitmix64
    /// finalizer) before reduction so correlated inputs (consecutive
    /// connection ids) spread across paths like a real switch hash.
    pub fn ecmp_route(&self, src: NicId, dst: NicId, hash: u64) -> Route {
        let paths = self.ecmp_paths(src, dst);
        let mut z = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        paths[(z % paths.len() as u64) as usize].clone()
    }

    /// The explicitly pinned route `id` — MCCS's source-routing knob.
    ///
    /// # Panics
    /// Panics if `id` is out of range for the pair's equal-cost set.
    pub fn pinned_route(&self, src: NicId, dst: NicId, id: RouteId) -> Route {
        let paths = self.ecmp_paths(src, dst);
        paths
            .get(id.index())
            .unwrap_or_else(|| {
                panic!(
                    "route {id:?} out of range: {} equal-cost paths {src}->{dst}",
                    paths.len()
                )
            })
            .clone()
    }

    /// BFS + shortest-path-DAG enumeration.
    fn enumerate_shortest(&self, src: NicId, dst: NicId) -> Vec<Route> {
        let src_nic = self.nic(src);
        let dst_nic = self.nic(dst);
        let start = src_nic.switch;
        let goal = dst_nic.switch;

        if start == goal {
            // Same leaf: the only path is up and straight back down.
            return vec![Route {
                src,
                dst,
                id: RouteId(0),
                links: Arc::from(vec![src_nic.uplink, dst_nic.downlink]),
            }];
        }

        // BFS distances from `start` over switch-to-switch links.
        let n = self.switches().len();
        let mut dist = vec![u32::MAX; n];
        dist[start.index()] = 0;
        let mut frontier = vec![start];
        while !frontier.is_empty() && dist[goal.index()] == u32::MAX {
            let mut next = Vec::new();
            for sw in frontier {
                for &lid in self.switch_out_links(sw) {
                    if let Endpoint::Switch(peer) = self.link(lid).to {
                        if dist[peer.index()] == u32::MAX {
                            dist[peer.index()] = dist[sw.index()] + 1;
                            next.push(peer);
                        }
                    }
                }
            }
            frontier = next;
        }
        assert!(
            dist[goal.index()] != u32::MAX,
            "fabric partitioned: no switch path {start} -> {goal}"
        );

        // Walk every path that strictly descends the BFS distance-to-go.
        // Recomputing distance-from-goal gives us that descent test.
        let mut dist_to_goal = vec![u32::MAX; n];
        dist_to_goal[goal.index()] = 0;
        let mut frontier = vec![goal];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for sw in frontier {
                // reverse traversal: find links INTO `sw`
                for link in self.links() {
                    if link.to == Endpoint::Switch(sw) {
                        if let Endpoint::Switch(prev) = link.from {
                            if dist_to_goal[prev.index()] == u32::MAX {
                                dist_to_goal[prev.index()] = dist_to_goal[sw.index()] + 1;
                                next.push(prev);
                            }
                        }
                    }
                }
            }
            frontier = next;
        }

        let total = dist[goal.index()];
        let mut routes = Vec::new();
        let mut stack: Vec<LinkId> = Vec::new();
        self.dfs_paths(
            start,
            goal,
            total,
            &dist_to_goal,
            &mut stack,
            &mut routes,
            src,
            dst,
        );
        for (i, r) in routes.iter_mut().enumerate() {
            r.id = RouteId(i as u32);
        }
        routes
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_paths(
        &self,
        at: SwitchId,
        goal: SwitchId,
        remaining: u32,
        dist_to_goal: &[u32],
        stack: &mut Vec<LinkId>,
        out: &mut Vec<Route>,
        src: NicId,
        dst: NicId,
    ) {
        if at == goal {
            let mut links = Vec::with_capacity(stack.len() + 2);
            links.push(self.nic(src).uplink);
            links.extend_from_slice(stack);
            links.push(self.nic(dst).downlink);
            out.push(Route {
                src,
                dst,
                id: RouteId(0), // renumbered by caller
                links: Arc::from(links),
            });
            return;
        }
        // Links are visited in id order => deterministic enumeration.
        for &lid in self.switch_out_links(at) {
            if let Endpoint::Switch(peer) = self.link(lid).to {
                if dist_to_goal[peer.index()] == remaining - 1 {
                    stack.push(lid);
                    self.dfs_paths(
                        peer,
                        goal,
                        remaining - 1,
                        dist_to_goal,
                        stack,
                        out,
                        src,
                        dst,
                    );
                    stack.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::graph::SwitchRole;
    use crate::ids::PodId;
    use mccs_sim::Bandwidth;

    /// 2 leaves x 2 spines, 1 host of 1 GPU per leaf.
    fn two_by_two() -> Topology {
        let mut b = TopologyBuilder::new();
        let pod = PodId(0);
        let r0 = b.add_rack(pod);
        let r1 = b.add_rack(pod);
        let l0 = b.add_switch(SwitchRole::Leaf, Some(r0));
        let l1 = b.add_switch(SwitchRole::Leaf, Some(r1));
        let s0 = b.add_switch(SwitchRole::Spine, None);
        let s1 = b.add_switch(SwitchRole::Spine, None);
        for l in [l0, l1] {
            for s in [s0, s1] {
                b.connect_switches(l, s, Bandwidth::gbps(50.0));
            }
        }
        b.add_host(r0, l0, 1, Bandwidth::gbps(100.0));
        b.add_host(r1, l1, 1, Bandwidth::gbps(100.0));
        b.build()
    }

    #[test]
    fn cross_rack_has_one_path_per_spine() {
        let t = two_by_two();
        let paths = t.ecmp_paths(NicId(0), NicId(1));
        assert_eq!(paths.len(), 2);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.hop_count(), 4); // up, leaf->spine, spine->leaf, down
            assert_eq!(p.id, RouteId(i as u32));
            assert_eq!(p.links[0], t.nic(NicId(0)).uplink);
            assert_eq!(*p.links.last().expect("nonempty"), t.nic(NicId(1)).downlink);
        }
        assert_ne!(paths[0].links, paths[1].links);
    }

    #[test]
    fn same_leaf_single_path() {
        let mut b = TopologyBuilder::new();
        let r = b.add_rack(PodId(0));
        let l = b.add_switch(SwitchRole::Leaf, Some(r));
        b.add_host(r, l, 1, Bandwidth::gbps(50.0));
        b.add_host(r, l, 1, Bandwidth::gbps(50.0));
        let t = b.build();
        let paths = t.ecmp_paths(NicId(0), NicId(1));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hop_count(), 2);
    }

    #[test]
    fn ecmp_route_is_deterministic_and_spreads() {
        let t = two_by_two();
        let a = t.ecmp_route(NicId(0), NicId(1), 1);
        let b = t.ecmp_route(NicId(0), NicId(1), 1);
        assert_eq!(a, b);
        let chosen: std::collections::HashSet<RouteId> = (0..32u64)
            .map(|h| t.ecmp_route(NicId(0), NicId(1), h).id)
            .collect();
        assert_eq!(chosen.len(), 2, "hash never spread across both paths");
    }

    #[test]
    fn pinned_route_selects_exactly() {
        let t = two_by_two();
        let p = t.pinned_route(NicId(0), NicId(1), RouteId(1));
        assert_eq!(p.id, RouteId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pinned_route_rejects_bad_id() {
        let t = two_by_two();
        t.pinned_route(NicId(0), NicId(1), RouteId(99));
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn no_self_route() {
        let t = two_by_two();
        t.ecmp_paths(NicId(0), NicId(0));
    }

    #[test]
    fn cache_returns_same_arc() {
        let t = two_by_two();
        let a = t.ecmp_paths(NicId(0), NicId(1));
        let b = t.ecmp_paths(NicId(0), NicId(1));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn ring_topology_min_hop_only() {
        // 4 switches in a ring; between adjacent switches the 1-hop
        // direction is the unique equal-cost path (the 3-hop way around is
        // longer, so ECMP never uses it).
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..4).map(|_| b.add_rack(PodId(0))).collect();
        let sw: Vec<_> = (0..4)
            .map(|i| b.add_switch(SwitchRole::Generic, Some(r[i])))
            .collect();
        for i in 0..4 {
            b.connect_switches(sw[i], sw[(i + 1) % 4], Bandwidth::gbps(100.0));
        }
        for i in 0..4 {
            b.add_host(r[i], sw[i], 1, Bandwidth::gbps(100.0));
        }
        let t = b.build();
        let paths = t.ecmp_paths(NicId(0), NicId(1));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hop_count(), 3); // up, sw0->sw1, down
                                             // Opposite corners: both directions are 2 switch hops -> 2 paths.
        let paths = t.ecmp_paths(NicId(0), NicId(2));
        assert_eq!(paths.len(), 2);
    }
}
