//! Stress test of the Figure-4 reconfiguration protocol: repeated
//! reconfigurations at randomized times while collectives are in flight,
//! across many seeds. The safety properties under test:
//!
//! 1. every collective completes (no reconfiguration deadlock),
//! 2. every sequence number executes under the SAME epoch on every rank,
//! 3. epochs are monotone non-decreasing in sequence order,
//! 4. every issued reconfiguration is eventually applied.

use mccs_collectives::op::all_reduce_sum;
use mccs_collectives::RingOrder;
use mccs_core::config::RouteMap;
use mccs_core::{Cluster, ClusterConfig};
use mccs_ipc::CommunicatorId;
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos, Rng};
use mccs_topology::{presets, GpuId};
use std::sync::Arc;

fn spawn(cluster: &mut Cluster, comm: CommunicatorId, gpus: &[GpuId], iters: usize) {
    let size = Bytes::mib(16);
    let ranks = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = ScriptedProgram::new(
                format!("stress/r{rank}"),
                vec![
                    ScriptStep::Alloc { size, slot: 0 },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm,
                        world: gpus.to_vec(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm,
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                    ScriptStep::Repeat {
                        from_step: 3,
                        times: iters - 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn AppProgram>)
        })
        .collect();
    cluster.add_app("stress", ranks);
}

#[test]
fn repeated_reconfigurations_are_safe_across_seeds() {
    for seed in 0..8u64 {
        let mut rng = Rng::seed_from(seed);
        let mut cluster = Cluster::new(
            Arc::new(presets::testbed()),
            ClusterConfig::with_seed(1000 + seed),
        );
        let comm = CommunicatorId(1);
        let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let iters = 20;
        spawn(&mut cluster, comm, &gpus, iters);

        // Issue 3-5 reconfigurations at random times while the workload
        // runs, alternating ring direction (sometimes while a previous
        // drain may still be settling — delivery jitter does the rest).
        let reconfigs = 3 + (rng.below(3) as usize);
        let mut t = Nanos::from_millis(5);
        for _ in 0..reconfigs {
            t += Nanos::from_micros(rng.range(3_000, 25_000));
            cluster.run_until(t);
            let info = cluster.mgmt().communicator(comm).expect("registered");
            let flipped: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
            cluster.mgmt().reconfigure(comm, flipped, RouteMap::ecmp());
            // Let the barrier settle before the next request (the protocol
            // forbids overlapping reconfigurations per communicator).
            t += Nanos::from_millis(30);
            cluster.run_until(t);
        }
        cluster.run_until_quiescent(Nanos::from_secs(120));

        // 1. everything completed
        let tl = cluster.mgmt().timeline(mccs_ipc::AppId(0));
        assert_eq!(tl.len(), iters, "seed {seed}: collectives lost");

        // 2+3. per-seq epoch agreement and monotonicity
        let records = cluster.mgmt().trace(mccs_ipc::AppId(0));
        let mut by_seq: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for r in &records {
            assert!(r.completed_at.is_some(), "seed {seed}: incomplete record");
            by_seq.entry(r.seq).or_default().push(r.epoch);
        }
        let mut prev_epoch = 0;
        for (seq, epochs) in &by_seq {
            assert_eq!(
                epochs.len(),
                gpus.len(),
                "seed {seed}: seq {seq} missing ranks"
            );
            assert!(
                epochs.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: seq {seq} mixed epochs {epochs:?}"
            );
            assert!(
                epochs[0] >= prev_epoch,
                "seed {seed}: epoch regressed at seq {seq}"
            );
            prev_epoch = epochs[0];
        }

        // 4. all reconfigurations applied
        let info = cluster.mgmt().communicator(comm).expect("registered");
        assert_eq!(
            info.epoch, reconfigs as u64,
            "seed {seed}: not every reconfiguration was applied"
        );
    }
}

#[test]
fn reconfiguration_of_idle_communicator_applies_immediately() {
    // The barrier max over "nothing launched" is None: the new config
    // must apply without waiting for any collective.
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(77));
    let comm = CommunicatorId(1);
    let gpus = [GpuId(0), GpuId(2)];
    // Workload starts late; reconfigure while fully idle.
    let size = Bytes::mib(8);
    let ranks = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = ScriptedProgram::new(
                format!("idle/r{rank}"),
                vec![
                    ScriptStep::Alloc { size, slot: 0 },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm,
                        world: gpus.to_vec(),
                        rank,
                    },
                    ScriptStep::SleepUntil(Nanos::from_millis(50)),
                    ScriptStep::Collective {
                        comm,
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn AppProgram>)
        })
        .collect();
    let app = cluster.add_app("idle", ranks);

    cluster.run_until(Nanos::from_millis(5));
    let info = cluster.mgmt().communicator(comm).expect("registered");
    let flipped: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
    cluster.mgmt().reconfigure(comm, flipped, RouteMap::ecmp());
    cluster.run_until(Nanos::from_millis(20));
    assert_eq!(
        cluster.mgmt().communicator(comm).expect("registered").epoch,
        1,
        "idle reconfiguration should apply before any collective runs"
    );
    cluster.run_until_quiescent(Nanos::from_secs(30));
    // The single collective then ran under the new epoch.
    let tl = cluster.mgmt().timeline(app);
    assert_eq!(tl.len(), 1);
    assert_eq!(tl[0].epoch, 1);
}
