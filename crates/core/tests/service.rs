//! End-to-end tests of the MCCS service: tenant programs talking through
//! the shim to frontends, proxies and transports over the simulated
//! testbed fabric.

use mccs_collectives::op::all_reduce_sum;
use mccs_collectives::{bandwidth, CollectiveOp, ReduceKind, RingOrder};
use mccs_core::config::RouteMap;
use mccs_core::{Cluster, ClusterConfig, ServiceConfig, TrafficWindows};
use mccs_ipc::CommunicatorId;
use mccs_shim::{ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::{presets, GpuId, RouteId};
use std::sync::Arc;

/// A rank program: alloc two buffers, init the communicator, run `iters`
/// collectives back to back.
#[allow(clippy::too_many_arguments)]
fn rank_program(
    name: &str,
    comm: CommunicatorId,
    world: &[GpuId],
    rank: usize,
    op: CollectiveOp,
    size: Bytes,
    iters: usize,
    start_at: Nanos,
) -> ScriptedProgram {
    assert!(iters >= 1);
    ScriptedProgram::new(
        format!("{name}/r{rank}"),
        vec![
            ScriptStep::Alloc { size, slot: 0 },
            ScriptStep::Alloc { size, slot: 1 },
            ScriptStep::CommInit {
                comm,
                world: world.to_vec(),
                rank,
            },
            ScriptStep::SleepUntil(start_at),
            ScriptStep::Collective {
                comm,
                op,
                size,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 4,
                times: iters - 1,
            },
        ],
    )
}

fn testbed_cluster(seed: u64) -> Cluster {
    Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(seed))
}

/// Launch one app over `gpus` running `iters` collectives of `size`.
fn spawn_app(
    cluster: &mut Cluster,
    name: &str,
    comm: CommunicatorId,
    gpus: &[GpuId],
    op: CollectiveOp,
    size: Bytes,
    iters: usize,
) -> mccs_ipc::AppId {
    spawn_app_at(cluster, name, comm, gpus, op, size, iters, Nanos::ZERO)
}

/// Like `spawn_app` but collectives begin only at `start_at`.
#[allow(clippy::too_many_arguments)]
fn spawn_app_at(
    cluster: &mut Cluster,
    name: &str,
    comm: CommunicatorId,
    gpus: &[GpuId],
    op: CollectiveOp,
    size: Bytes,
    iters: usize,
    start_at: Nanos,
) -> mccs_ipc::AppId {
    let ranks = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = rank_program(name, comm, gpus, rank, op, size, iters, start_at);
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app(name, ranks)
}

#[test]
fn single_host_allreduce_uses_intra_host_channels_only() {
    let mut cluster = testbed_cluster(1);
    let comm = CommunicatorId(1);
    let gpus = [GpuId(0), GpuId(1)];
    spawn_app(
        &mut cluster,
        "local",
        comm,
        &gpus,
        all_reduce_sum(),
        Bytes::mib(16),
        1,
    );
    let end = cluster.run_until_quiescent(Nanos::from_secs(5));
    assert!(end > Nanos::ZERO);
    // no network flows at all
    assert_eq!(cluster.world.net.flow_count(), 0);
    let tl = cluster.mgmt().timeline(mccs_ipc::AppId(0));
    assert_eq!(tl.len(), 1);
    // Each of 2 ring edges carries (2*1/2)*16MiB = 16MiB at ~20GiB/s shm:
    // well under 2ms with overheads.
    let lat = tl[0].latency().expect("complete");
    assert!(
        lat < Nanos::from_millis(3),
        "intra-host allreduce took {lat}"
    );
}

#[test]
fn four_host_allreduce_hits_line_rate() {
    let mut cluster = testbed_cluster(2);
    let comm = CommunicatorId(7);
    // one GPU per host; world order follows hosts so the default
    // (NCCL-like) ring is already rack-contiguous.
    let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
    let size = Bytes::mib(64);
    spawn_app(&mut cluster, "ar4", comm, &gpus, all_reduce_sum(), size, 3);
    cluster.run_until_quiescent(Nanos::from_secs(10));
    let tl = cluster.mgmt().timeline(mccs_ipc::AppId(0));
    assert_eq!(tl.len(), 3);
    for rec in &tl {
        let lat = rec.latency().expect("complete");
        // Ideal: 1.5 * 64MiB at 50 Gbps = 16.1ms; allow overheads.
        let ideal = Nanos::from_secs_f64(1.5 * size.as_f64() * 8.0 / 50e9);
        assert!(
            lat >= ideal,
            "collective faster than the physics: {lat} < {ideal}"
        );
        assert!(
            lat < ideal + Nanos::from_millis(1),
            "too much overhead: {lat} vs ideal {ideal}"
        );
        // Algorithm bandwidth just under the 4.17 GB/s ideal.
        let algbw = bandwidth::algo_bandwidth(size, lat);
        assert!(
            algbw.as_gbytes_per_sec() > 4.0,
            "algbw {}",
            algbw.as_gbytes_per_sec()
        );
    }
}

#[test]
fn eight_gpu_two_channels_engage_both_nics() {
    let mut cluster = testbed_cluster(3);
    let comm = CommunicatorId(2);
    let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
    spawn_app(
        &mut cluster,
        "ar8",
        comm,
        &gpus,
        all_reduce_sum(),
        Bytes::mib(64),
        1,
    );
    cluster.run_until_quiescent(Nanos::from_secs(10));
    let info = cluster.mgmt().communicator(comm).expect("registered");
    assert_eq!(info.channels, 2, "2 GPUs/host -> 2 channels");
    assert_eq!(info.registered_ranks, 8);
    let tl = cluster.mgmt().timeline(mccs_ipc::AppId(0));
    assert_eq!(tl.len(), 1);
}

#[test]
fn allgather_latency_scales_with_op_factor() {
    // AllGather moves (n-1)/n*S per edge vs AllReduce's 2(n-1)/n*S:
    // same size should take about half the time.
    let size = Bytes::mib(128);
    let run = |op: CollectiveOp, seed: u64| -> Nanos {
        let mut cluster = testbed_cluster(seed);
        let comm = CommunicatorId(1);
        let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        spawn_app(&mut cluster, "x", comm, &gpus, op, size, 1);
        cluster.run_until_quiescent(Nanos::from_secs(20));
        cluster.mgmt().timeline(mccs_ipc::AppId(0))[0]
            .latency()
            .expect("complete")
    };
    let ar = run(all_reduce_sum(), 4);
    let ag = run(CollectiveOp::AllGather, 4);
    let ratio = ar.as_secs_f64() / ag.as_secs_f64();
    assert!(
        (1.8..2.2).contains(&ratio),
        "AR/AG latency ratio {ratio}, expected ~2"
    );
}

#[test]
fn collectives_serialize_per_communicator() {
    let mut cluster = testbed_cluster(5);
    let comm = CommunicatorId(1);
    let gpus = [GpuId(0), GpuId(2)];
    let size = Bytes::mib(32);
    spawn_app(
        &mut cluster,
        "serial",
        comm,
        &gpus,
        all_reduce_sum(),
        size,
        4,
    );
    cluster.run_until_quiescent(Nanos::from_secs(30));
    let tl = cluster.mgmt().timeline(mccs_ipc::AppId(0));
    assert_eq!(tl.len(), 4);
    for pair in tl.windows(2) {
        let prev_done = pair[0].completed_at.expect("complete");
        let next_started = pair[1].launched_at.expect("launched");
        assert!(
            next_started >= prev_done,
            "collective {} launched before {} completed",
            pair[1].seq,
            pair[0].seq
        );
    }
}

#[test]
fn reconfiguration_is_safe_and_epochs_agree() {
    let mut cluster = testbed_cluster(6);
    let comm = CommunicatorId(3);
    let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
    let size = Bytes::mib(32);
    let iters = 12;
    spawn_app(
        &mut cluster,
        "reconf",
        comm,
        &gpus,
        all_reduce_sum(),
        size,
        iters,
    );
    // Let a few collectives through, then reverse the ring at runtime.
    cluster.run_until(Nanos::from_millis(40));
    let info = cluster.mgmt().communicator(comm).expect("registered");
    assert_eq!(info.epoch, 0);
    let reversed: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
    cluster.mgmt().reconfigure(comm, reversed, RouteMap::ecmp());
    cluster.run_until_quiescent(Nanos::from_secs(30));

    // All collectives completed.
    let tl = cluster.mgmt().timeline(mccs_ipc::AppId(0));
    assert_eq!(tl.len(), iters);
    // The epoch advanced.
    let info = cluster.mgmt().communicator(comm).expect("registered");
    assert_eq!(info.epoch, 1);
    // SAFETY PROPERTY: for every sequence number, all ranks executed it
    // under the same epoch.
    let records = cluster.mgmt().trace(mccs_ipc::AppId(0));
    let mut by_seq: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for r in &records {
        by_seq.entry(r.seq).or_default().push(r.epoch);
    }
    let mut saw_epoch1 = false;
    for (seq, epochs) in &by_seq {
        assert_eq!(epochs.len(), 4, "seq {seq} missing rank records");
        assert!(
            epochs.windows(2).all(|w| w[0] == w[1]),
            "seq {seq} executed under mixed epochs: {epochs:?}"
        );
        saw_epoch1 |= epochs[0] == 1;
    }
    assert!(saw_epoch1, "no collective ran under the new configuration");
}

/// Check the Figure 4 safety property on a completed run: every sequence
/// number executed under one epoch on all `ranks` ranks.
fn assert_epochs_agree(cluster: &mut Cluster, app: mccs_ipc::AppId, ranks: usize) {
    let records = cluster.mgmt().trace(app);
    let mut by_seq: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for r in &records {
        by_seq.entry(r.seq).or_default().push(r.epoch);
    }
    for (seq, epochs) in &by_seq {
        assert_eq!(epochs.len(), ranks, "seq {seq} missing rank records");
        assert!(
            epochs.windows(2).all(|w| w[0] == w[1]),
            "seq {seq} executed under mixed epochs: {epochs:?}"
        );
    }
}

#[test]
fn reconfiguration_survives_skewed_req_arrival() {
    // Crank control-message jitter so a `Req` can take up to 9 hop
    // latencies to reach a rank: a neighbour's barrier gossip then often
    // arrives *before* the rank's own request (the pending-gossip path)
    // and late gossip keeps circulating past ranks that already finished
    // their barrier. The protocol must still quiesce safely.
    for seed in [11u64, 12, 13, 14] {
        let cfg = ClusterConfig {
            service: ServiceConfig {
                control_jitter_frac: 8.0,
                ..ServiceConfig::default()
            },
            ..ClusterConfig::with_seed(seed)
        };
        let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
        let comm = CommunicatorId(3);
        let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let iters = 10;
        let app = spawn_app(
            &mut cluster,
            "skew",
            comm,
            &gpus,
            all_reduce_sum(),
            Bytes::mib(16),
            iters,
        );
        cluster.run_until(Nanos::from_millis(20));
        let info = cluster.mgmt().communicator(comm).expect("registered");
        let reversed: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
        cluster.mgmt().reconfigure(comm, reversed, RouteMap::ecmp());
        cluster.run_until_quiescent(Nanos::from_secs(30));

        let tl = cluster.mgmt().timeline(app);
        assert_eq!(tl.len(), iters, "seed {seed}: collectives lost");
        let info = cluster.mgmt().communicator(comm).expect("registered");
        assert_eq!(info.epoch, 1, "seed {seed}: reconfiguration never applied");
        assert_epochs_agree(&mut cluster, app, gpus.len());
    }
}

#[test]
fn back_to_back_reconfigurations_tolerate_late_gossip() {
    // Issue a second reconfiguration as soon as the first is applied,
    // while epoch-1 gossip may still be circulating the control ring:
    // stale messages must neither corrupt the epoch-2 barrier nor
    // deadlock it.
    let cfg = ClusterConfig {
        service: ServiceConfig {
            control_jitter_frac: 8.0,
            ..ServiceConfig::default()
        },
        ..ClusterConfig::with_seed(17)
    };
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    let comm = CommunicatorId(3);
    let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
    let iters = 14;
    let app = spawn_app(
        &mut cluster,
        "twice",
        comm,
        &gpus,
        all_reduce_sum(),
        Bytes::mib(16),
        iters,
    );
    cluster.run_until(Nanos::from_millis(20));
    let info = cluster.mgmt().communicator(comm).expect("registered");
    let reversed: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
    cluster
        .mgmt()
        .reconfigure(comm, reversed.clone(), RouteMap::ecmp());
    // Step in small increments and fire the second reconfiguration the
    // moment the first lands on rank 0.
    let mut t = Nanos::from_millis(20);
    loop {
        t += Nanos::from_millis(1);
        cluster.run_until(t);
        let info = cluster.mgmt().communicator(comm).expect("registered");
        if info.epoch == 1 {
            let back: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
            cluster.mgmt().reconfigure(comm, back, RouteMap::ecmp());
            break;
        }
        assert!(
            t < Nanos::from_secs(30),
            "first reconfiguration never applied"
        );
    }
    cluster.run_until_quiescent(Nanos::from_secs(60));

    let tl = cluster.mgmt().timeline(app);
    assert_eq!(tl.len(), iters, "collectives lost across reconfigurations");
    let info = cluster.mgmt().communicator(comm).expect("registered");
    assert_eq!(info.epoch, 2, "second reconfiguration never applied");
    assert_epochs_agree(&mut cluster, app, gpus.len());
}

#[test]
fn schedule_caching_reproduces_uncached_timings() {
    // The per-rank schedule cache is a pure memoization: a run with it on
    // must produce bit-identical completion times to a run with it off,
    // including across a mid-run reconfiguration (cache invalidation).
    let run = |cache: bool| -> Vec<Nanos> {
        let cfg = ClusterConfig {
            service: ServiceConfig {
                cache_schedules: cache,
                ..ServiceConfig::default()
            },
            ..ClusterConfig::with_seed(23)
        };
        let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
        let comm = CommunicatorId(3);
        let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let app = spawn_app(
            &mut cluster,
            "cache",
            comm,
            &gpus,
            all_reduce_sum(),
            Bytes::mib(16),
            8,
        );
        cluster.run_until(Nanos::from_millis(20));
        let info = cluster.mgmt().communicator(comm).expect("registered");
        let reversed: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
        cluster.mgmt().reconfigure(comm, reversed, RouteMap::ecmp());
        cluster.run_until_quiescent(Nanos::from_secs(30));
        cluster
            .mgmt()
            .timeline(app)
            .iter()
            .map(|r| r.completed_at.expect("done"))
            .collect()
    };
    let cached = run(true);
    let uncached = run(false);
    assert_eq!(cached.len(), 8);
    assert_eq!(
        cached, uncached,
        "schedule caching changed observable timings"
    );
}

#[test]
fn communicators_with_identical_ring_shape_share_one_cache_entry() {
    // Two communicators over the same GPUs derive the same rings, so the
    // world-level cache must hold exactly one schedule both of them use:
    // the very first rank to launch derives it, every later launch — on
    // either communicator — hits.
    let mut cluster = testbed_cluster(41);
    let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
    let size = Bytes::mib(1);
    let progs: Vec<(GpuId, Box<dyn mccs_shim::AppProgram>)> = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = ScriptedProgram::new(
                format!("twin/r{rank}"),
                vec![
                    ScriptStep::Alloc { size, slot: 0 },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm: CommunicatorId(1),
                        world: gpus.to_vec(),
                        rank,
                    },
                    ScriptStep::CommInit {
                        comm: CommunicatorId(2),
                        world: gpus.to_vec(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm: CommunicatorId(1),
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                    ScriptStep::Collective {
                        comm: CommunicatorId(2),
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    let app = cluster.add_app("twin", progs);
    cluster.run_until_quiescent(Nanos::from_secs(30));
    assert_eq!(
        cluster.mgmt().timeline(app).len(),
        2,
        "both collectives ran"
    );

    let mgmt = cluster.mgmt();
    let cache = &mgmt.world().schedule_cache;
    let (hits, misses) = cache.stats();
    assert_eq!(
        cache.len(),
        1,
        "identical ring shapes must share one schedule entry"
    );
    assert_eq!(misses, 1, "only the first launch derives");
    // 4 ranks x 2 communicators = 8 lookups; all but the first hit.
    assert_eq!(hits, 7, "every later launch on either communicator hits");
}

#[test]
fn reconfiguration_keys_a_fresh_cache_entry() {
    // Epoch correctness is structural: a reconfigured ring produces a new
    // key, so the new config derives a fresh schedule (a miss) while the
    // old entry simply goes cold instead of being served stale.
    let mut cluster = testbed_cluster(43);
    let comm = CommunicatorId(5);
    let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
    let app = spawn_app(
        &mut cluster,
        "reconf",
        comm,
        &gpus,
        all_reduce_sum(),
        Bytes::mib(16),
        8,
    );
    cluster.run_until(Nanos::from_millis(20));
    let info = cluster.mgmt().communicator(comm).expect("registered");
    let reversed: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
    cluster.mgmt().reconfigure(comm, reversed, RouteMap::ecmp());
    cluster.run_until_quiescent(Nanos::from_secs(30));
    assert_eq!(cluster.mgmt().timeline(app).len(), 8);

    let mgmt = cluster.mgmt();
    let cache = &mgmt.world().schedule_cache;
    let (hits, misses) = cache.stats();
    assert_eq!(
        cache.len(),
        2,
        "old and new ring shapes key distinct entries"
    );
    assert_eq!(misses, 2, "one derivation per ring shape");
    assert!(hits > 0, "steady-state launches hit");
}

#[test]
fn rooted_collectives_validate_buffers_per_rank() {
    // NCCL semantics: Broadcast reads the send buffer only at the root and
    // Reduce writes the recv buffer only at the root. Non-root ranks with
    // a token-sized buffer on the insignificant side must pass validation.
    let size = Bytes::mib(1);
    let run = |op: CollectiveOp, small_send: bool| {
        let mut cluster = testbed_cluster(31);
        let comm = CommunicatorId(1);
        let gpus = [GpuId(0), GpuId(1)];
        let progs: Vec<(GpuId, Box<dyn mccs_shim::AppProgram>)> = gpus
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                // rank 1 is non-root: shrink the insignificant buffer.
                let tiny = rank == 1;
                let (send_size, recv_size) = match (tiny, small_send) {
                    (true, true) => (Bytes::kib(4), size),
                    (true, false) => (size, Bytes::kib(4)),
                    (false, _) => (size, size),
                };
                let prog = ScriptedProgram::new(
                    format!("rooted/r{rank}"),
                    vec![
                        ScriptStep::Alloc {
                            size: send_size,
                            slot: 0,
                        },
                        ScriptStep::Alloc {
                            size: recv_size,
                            slot: 1,
                        },
                        ScriptStep::CommInit {
                            comm,
                            world: gpus.to_vec(),
                            rank,
                        },
                        ScriptStep::Collective {
                            comm,
                            op,
                            size,
                            send_slot: 0,
                            recv_slot: 1,
                        },
                    ],
                );
                (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
            })
            .collect();
        let app = cluster.add_app("rooted", progs);
        cluster.run_until_quiescent(Nanos::from_secs(5));
        let tl = cluster.mgmt().timeline(app);
        assert_eq!(tl.len(), 1, "collective did not complete for {op:?}");
        tl[0].latency().expect("complete");
    };
    // Non-root Broadcast rank needs no send buffer ...
    run(CollectiveOp::Broadcast { root: 0 }, true);
    // ... and a non-root Reduce rank needs no recv buffer.
    run(
        CollectiveOp::Reduce {
            root: 0,
            kind: ReduceKind::Sum,
        },
        false,
    );
}

#[test]
fn rooted_collectives_still_reject_undersized_significant_buffers() {
    // The root's send buffer for Broadcast stays significant: shrinking it
    // must still trip the service-side validation.
    let size = Bytes::mib(1);
    let mut cluster = testbed_cluster(33);
    let comm = CommunicatorId(1);
    let gpus = [GpuId(0), GpuId(1)];
    let progs: Vec<(GpuId, Box<dyn mccs_shim::AppProgram>)> = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let send_size = if rank == 0 { Bytes::kib(4) } else { size };
            let prog = ScriptedProgram::new(
                format!("badroot/r{rank}"),
                vec![
                    ScriptStep::Alloc {
                        size: send_size,
                        slot: 0,
                    },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm,
                        world: gpus.to_vec(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm,
                        op: CollectiveOp::Broadcast { root: 0 },
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app("badroot", progs);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cluster.run_until_quiescent(Nanos::from_secs(5));
    }))
    .expect_err("root's undersized send buffer must be rejected");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("buffer validation failed"),
        "unexpected panic: {msg}"
    );
}

#[test]
fn pinned_routes_beat_colliding_ecmp() {
    // Two 2-rank apps, both crossing racks on the same NIC pairs. With a
    // deliberately colliding ECMP we see ~halved rates; with FFA-style
    // pins on distinct routes both run at line rate.
    let size = Bytes::mib(128);
    let gpus_a = [GpuId(0), GpuId(4)]; // H0 -> H2, NIC0s
    let gpus_b = [GpuId(2), GpuId(6)]; // H1 -> H3, NIC0s

    // ECMP hashes are a deterministic function of (comm, epoch, channel,
    // NIC pair) — as in NCCL, connections outlive collectives — so find a
    // communicator-id pair whose default hashes collide on a path.
    let topo = presets::testbed();
    let colliding_pair = {
        use mccs_core::config::CollectiveConfig;
        let mut found = None;
        'outer: for a_id in 1..40u64 {
            for b_id in (a_id + 1)..40u64 {
                let ca = CollectiveConfig::default_for(&topo, &gpus_a);
                let cb = CollectiveConfig::default_for(&topo, &gpus_b);
                let na0 = topo.nic_of_gpu(gpus_a[0]);
                let na1 = topo.nic_of_gpu(gpus_a[1]);
                let nb0 = topo.nic_of_gpu(gpus_b[0]);
                let nb1 = topo.nic_of_gpu(gpus_b[1]);
                let ra = topo.ecmp_route(na0, na1, ca.ecmp_hash(CommunicatorId(a_id), 0, na0, na1));
                let rb = topo.ecmp_route(nb0, nb1, cb.ecmp_hash(CommunicatorId(b_id), 0, nb0, nb1));
                // same spine path (compare middle links)
                if ra.links[1] == rb.links[1] {
                    found = Some((a_id, b_id));
                    break 'outer;
                }
            }
        }
        found.expect("some comm-id pair must hash to the same spine")
    };

    let run = |pin: bool, seed: u64| -> Nanos {
        let mut cluster = testbed_cluster(seed);
        let a = CommunicatorId(colliding_pair.0);
        let b = CommunicatorId(colliding_pair.1);
        let start = Nanos::from_millis(5);
        spawn_app_at(
            &mut cluster,
            "A",
            a,
            &gpus_a,
            all_reduce_sum(),
            size,
            2,
            start,
        );
        spawn_app_at(
            &mut cluster,
            "B",
            b,
            &gpus_b,
            all_reduce_sum(),
            size,
            2,
            start,
        );
        // wait for registration (collectives start only at 5 ms)
        cluster.run_until(Nanos::from_millis(1));
        if pin {
            let topo = Arc::clone(cluster.world.net.topology());
            for (comm, gpus, route) in [(a, gpus_a, 0u32), (b, gpus_b, 1u32)] {
                let info = cluster.mgmt().communicator(comm).expect("registered");
                let mut routes = RouteMap::ecmp();
                // pin both directions of the single inter-host edge pair
                let n0 = topo.nic_of_gpu(gpus[0]);
                let n1 = topo.nic_of_gpu(gpus[1]);
                routes.pin(0, n0, n1, RouteId(route));
                routes.pin(0, n1, n0, RouteId(route));
                cluster.mgmt().reconfigure(comm, info.rings.clone(), routes);
            }
        }
        cluster.run_until_quiescent(Nanos::from_secs(60));
        // slowest app's last completion
        let t1 = cluster.mgmt().timeline(mccs_ipc::AppId(0));
        let t2 = cluster.mgmt().timeline(mccs_ipc::AppId(1));
        t1.last()
            .expect("ran")
            .completed_at
            .expect("complete")
            .max(t2.last().expect("ran").completed_at.expect("complete"))
    };
    let ecmp_t = run(false, 1);
    let pinned_t = run(true, 1);
    assert!(
        ecmp_t.as_secs_f64() > pinned_t.as_secs_f64() * 1.5,
        "pinning should halve completion under collision: ecmp {ecmp_t}, pinned {pinned_t}"
    );
}

#[test]
fn traffic_windows_gate_and_release_flows() {
    let mut cluster = testbed_cluster(8);
    let comm = CommunicatorId(1);
    let gpus = [GpuId(0), GpuId(4)];
    let size = Bytes::mib(64);
    let app = spawn_app(
        &mut cluster,
        "gated",
        comm,
        &gpus,
        all_reduce_sum(),
        size,
        2,
    );
    // Gate the app to a 30%-duty window.
    cluster.run_until(Nanos::from_millis(1));
    cluster
        .mgmt()
        .set_traffic_windows(
            app,
            Some(
                TrafficWindows::single(
                    Nanos::from_millis(10),
                    Nanos::from_millis(0),
                    Nanos::from_millis(3),
                )
                .expect("valid window"),
            ),
        )
        .expect("valid schedule accepted");
    cluster.run_until_quiescent(Nanos::from_secs(60));
    let gated_tl = cluster.mgmt().timeline(app);
    assert_eq!(gated_tl.len(), 2);
    let gated_last = gated_tl.last().expect("ran").completed_at.expect("done");

    // Reference run without gating.
    let mut free = testbed_cluster(8);
    spawn_app(&mut free, "free", comm, &gpus, all_reduce_sum(), size, 2);
    free.run_until_quiescent(Nanos::from_secs(60));
    let free_last = free
        .mgmt()
        .timeline(mccs_ipc::AppId(0))
        .last()
        .expect("ran")
        .completed_at
        .expect("done");
    // 30% duty cycle: roughly 3x slower end to end.
    let slowdown = gated_last.as_secs_f64() / free_last.as_secs_f64();
    assert!(
        slowdown > 2.0,
        "gating too weak: slowdown {slowdown:.2} (gated {gated_last}, free {free_last})"
    );
}

#[test]
fn malformed_traffic_windows_rejected_without_aborting() {
    // A tenant-supplied schedule whose windows overflow the period must
    // come back as InvalidArgument — not crash the service — and leave
    // the transports untouched so traffic proceeds ungated.
    let mut cluster = testbed_cluster(8);
    let comm = CommunicatorId(1);
    let gpus = [GpuId(0), GpuId(4)];
    let app = spawn_app(
        &mut cluster,
        "tenant",
        comm,
        &gpus,
        all_reduce_sum(),
        Bytes::mib(4),
        2,
    );
    // Construction refuses the bad schedule outright.
    let err = TrafficWindows::single(
        Nanos::from_millis(10),
        Nanos::from_millis(8),
        Nanos::from_millis(5),
    )
    .expect_err("overlong window must not construct");
    assert_eq!(err.code, mccs_ipc::ErrorCode::InvalidArgument);
    // A schedule corrupted after construction (fields are public) is
    // caught again at the management API.
    let bad = TrafficWindows {
        period: Nanos::from_millis(10),
        open: vec![
            (Nanos::from_millis(0), Nanos::from_millis(5)),
            (Nanos::from_millis(3), Nanos::from_millis(2)),
        ],
    };
    let err = cluster
        .mgmt()
        .set_traffic_windows(app, Some(bad))
        .expect_err("overlapping windows rejected");
    assert_eq!(err.code, mccs_ipc::ErrorCode::InvalidArgument);
    // Service still healthy: the app runs to completion, ungated.
    cluster.run_until_quiescent(Nanos::from_secs(60));
    assert_eq!(cluster.mgmt().timeline(app).len(), 2);
}

#[test]
fn invalid_buffer_is_rejected_by_the_service() {
    // A program that allocates too little for the collective it issues:
    // the service's validation must reject it (error completion), and the
    // scripted program panics on the surfaced error.
    let mut cluster = testbed_cluster(9);
    let comm = CommunicatorId(1);
    let gpus = [GpuId(0), GpuId(1)];
    let progs: Vec<(GpuId, Box<dyn mccs_shim::AppProgram>)> = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = ScriptedProgram::new(
                format!("bad/r{rank}"),
                vec![
                    ScriptStep::Alloc {
                        size: Bytes::kib(4),
                        slot: 0,
                    },
                    ScriptStep::Alloc {
                        size: Bytes::kib(4),
                        slot: 1,
                    },
                    ScriptStep::CommInit {
                        comm,
                        world: gpus.to_vec(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm,
                        op: all_reduce_sum(),
                        size: Bytes::mib(1), // larger than the 4K buffers
                        send_slot: 0,
                        recv_slot: 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app("bad", progs);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cluster.run_until_quiescent(Nanos::from_secs(5));
    }))
    .expect_err("validation must fire");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("buffer validation failed"),
        "unexpected panic: {msg}"
    );
}

#[test]
fn management_sees_link_utilization() {
    let mut cluster = testbed_cluster(21);
    let comm = CommunicatorId(1);
    let gpus = [GpuId(0), GpuId(4)];
    spawn_app(
        &mut cluster,
        "util",
        comm,
        &gpus,
        all_reduce_sum(),
        Bytes::mib(256),
        1,
    );
    // run into the middle of the transfer
    cluster.run_until(Nanos::from_millis(30));
    let hot = cluster.mgmt().hottest_link().expect("traffic in flight");
    assert!(
        (hot.1 - 1.0).abs() < 1e-6,
        "a lone cross-rack flow saturates its bottleneck: {hot:?}"
    );
    let busy = cluster.mgmt().link_utilization();
    // one flow per direction, each traversing 4 links
    assert_eq!(busy.len(), 8, "expected both directions' paths: {busy:?}");
    // after completion the network is quiet again
    cluster.run_until_quiescent(Nanos::from_secs(30));
    assert!(cluster.mgmt().hottest_link().is_none());
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let mut cluster = testbed_cluster(42);
        let comm = CommunicatorId(1);
        let gpus = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        spawn_app(
            &mut cluster,
            "det",
            comm,
            &gpus,
            all_reduce_sum(),
            Bytes::mib(16),
            5,
        );
        cluster.run_until_quiescent(Nanos::from_secs(30));
        cluster
            .mgmt()
            .timeline(mccs_ipc::AppId(0))
            .iter()
            .map(|r| r.completed_at.expect("done"))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed must reproduce identical timings");
}
