//! Crash-tolerant control plane: controller checkpoint/restart with
//! epoch-fenced, idempotent reconfiguration.
//!
//! The central properties under test:
//!
//! * **Convergence** — a controller crashed mid-drain and restarted from
//!   its checkpoint reconciles to exactly the state the crash-free run
//!   reaches: post-repair pins equal the healthy-fabric plan.
//! * **Idempotence** — re-driving a drain whose completion the dead
//!   incarnation never observed is a no-op when the drain in fact
//!   completed: the run's observable digest is byte-identical to the
//!   crash-free run.
//! * **Fencing** — commands from a previous controller incarnation are
//!   dropped by the ranks, counted, and never perturb protocol state.
//! * **Bounded memory** — detour baselines and drain obligations are
//!   cleared on fail-back retirement and communicator destroy.
//! * **Overflow resync** — a long outage rolls the bounded health
//!   channel past the frozen cursor; the restart resyncs from a snapshot
//!   that matches ground truth.

use mccs_collectives::op::all_reduce_sum;
use mccs_core::config::ServiceConfig;
use mccs_core::messages::ProxyMsg;
use mccs_core::proxy::ReconfigState;
use mccs_core::recovery::RecoveryPolicy;
use mccs_core::{
    ChaosAction, ChaosDriver, Cluster, ClusterConfig, CollectiveConfig, DetourPolicy, Explorer,
    ExplorerConfig, FailureEvent, HealthDelivery, RouteMap,
};
use mccs_ipc::CommunicatorId;
use mccs_shim::{ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId, SwitchRole};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const COMM: CommunicatorId = CommunicatorId(1);
const GPUS: [GpuId; 4] = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];

fn rank_program(name: &str, rank: usize, size: Bytes, iters: usize) -> ScriptedProgram {
    ScriptedProgram::new(
        format!("{name}/r{rank}"),
        vec![
            ScriptStep::Alloc { size, slot: 0 },
            ScriptStep::Alloc { size, slot: 1 },
            ScriptStep::CommInit {
                comm: COMM,
                world: GPUS.to_vec(),
                rank,
            },
            ScriptStep::Collective {
                comm: COMM,
                op: all_reduce_sum(),
                size,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 3,
                times: iters - 1,
            },
        ],
    )
}

/// A service config with an aggressive checkpoint cadence, so every
/// recovery-engine poll snapshots the controller's working state.
fn eager_checkpoint_svc() -> ServiceConfig {
    ServiceConfig {
        controller_checkpoint_interval: Nanos::from_micros(1),
        ..ServiceConfig::default()
    }
}

fn cluster_with_svc(seed: u64, size: Bytes, iters: usize, svc: ServiceConfig) -> Cluster {
    let cfg = ClusterConfig {
        service: svc,
        ..ClusterConfig::with_seed(seed)
    };
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    let ranks = GPUS
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = rank_program("ctrl", rank, size, iters);
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app("ctrl", ranks);
    cluster
}

fn cluster_with(seed: u64, size: Bytes, iters: usize) -> Cluster {
    cluster_with_svc(seed, size, iters, eager_checkpoint_svc())
}

/// Every link touching the lowest-id spine switch (both directions) —
/// the outage domain the fault suite uses to force a detour.
fn spine0_links(cluster: &Cluster) -> Vec<LinkId> {
    let topo = &cluster.world.topo;
    let spine = topo
        .switches()
        .iter()
        .find(|s| s.role == SwitchRole::Spine)
        .expect("testbed has spines")
        .id;
    topo.links()
        .iter()
        .filter(|l| {
            matches!(l.from, Endpoint::Switch(s) if s == spine)
                || matches!(l.to, Endpoint::Switch(s) if s == spine)
        })
        .map(|l| l.id)
        .collect()
}

/// Whether every rank of `COMM` is back in `Normal` at or past `epoch`.
fn drained_to(cluster: &Cluster, epoch: u64) -> bool {
    let ranks: Vec<_> = cluster
        .world
        .comms
        .values()
        .filter(|r| r.comm == COMM)
        .collect();
    ranks.len() == GPUS.len()
        && ranks
            .iter()
            .all(|r| matches!(r.reconfig, ReconfigState::Normal) && r.config.epoch >= epoch)
}

/// Assert the convergence oracle: `COMM`'s pins are exactly what the
/// detour policy proposes on the current (healthy) fabric.
fn assert_pins_converged(cluster: &Cluster) {
    let rank = cluster
        .world
        .comms
        .values()
        .find(|r| r.comm == COMM)
        .expect("comm persists");
    let (rings, routes) = DetourPolicy
        .plan(&cluster.world, COMM, &rank.config, &rank.world_gpus)
        .expect("healthy fabric must yield a plan");
    assert_eq!(rank.config.channel_rings, rings, "rings did not converge");
    assert_eq!(
        rank.config.routes, routes,
        "post-restart pins are not the healthy-fabric choice"
    );
}

/// Assert completed-xor-failed: every collective left a record on every
/// rank, with all ranks agreeing on the outcome.
fn assert_completed_xor_failed(cluster: &Cluster, collectives: usize) {
    assert_eq!(cluster.world.tenant_log.unfinished(), 0);
    let mut groups: BTreeMap<u64, Vec<bool>> = BTreeMap::new();
    for r in cluster.world.tenant_log.records() {
        groups.entry(r.seq).or_default().push(r.failed);
    }
    assert_eq!(groups.len(), collectives, "missing collective records");
    for (seq, flags) in &groups {
        assert_eq!(flags.len(), GPUS.len(), "seq {seq} missing ranks");
        assert!(
            flags.iter().all(|&f| f == flags[0]),
            "seq {seq} split-brained: {flags:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Tentpole: crash mid-drain, restart, reconcile, converge
// ---------------------------------------------------------------------------

/// The pinned acceptance scenario (mirrored by the `fault_digest`
/// determinism gate): the hottest outage domain dies at 10ms, the
/// controller crashes at the instant its corrective drain is issued, the
/// drain completes while the controller is dead, and the restart must
/// reconcile — re-drive nothing (the drain visibly completed), survive
/// the stall-report replay, and still fail back to the healthy plan
/// after the 120ms repair.
#[test]
fn crash_mid_drain_restart_reconverges() {
    let mut cluster = cluster_with(95, Bytes::mib(32), 4);
    let domain = spine0_links(&cluster);
    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(Nanos::from_millis(10));
    for &l in &domain {
        driver.link_down(l);
    }
    // Run to the instant the corrective drain goes out, then kill the
    // controller right there — the barrier is still propagating.
    driver
        .run_until_event(
            Nanos::from_secs(5),
            |e| matches!(e, FailureEvent::RecoveryIssued { comm, .. } if *comm == COMM),
        )
        .expect("spine-0 outage must force a corrective drain");
    driver.crash_controller();
    assert!(driver.is_controller_down());
    driver.run_for(Nanos::from_millis(20));
    assert!(
        drained_to(driver.cluster(), 1),
        "the issued drain must complete on its own while the controller is dead"
    );
    driver.restart_controller();
    driver.run_until(Nanos::from_millis(120));
    for &l in &domain {
        driver.link_up(l);
    }
    driver
        .run_to_quiescence(Nanos::from_secs(30))
        .expect("crash + restart + repair must still quiesce");

    let stats = cluster.mgmt().controller_stats();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.reconciliations, 1, "restart must reconcile once");
    assert!(stats.downtime_ns > 0, "downtime must be accounted");
    assert!(stats.checkpoints >= 1, "eager cadence must checkpoint");
    assert!(!cluster.mgmt().controller_down());
    assert_eq!(cluster.mgmt().controller_incarnation(), 1);

    let counters = cluster.mgmt().health_counters();
    assert!(counters.recoveries > 0, "outage must force a detour");
    assert!(counters.failbacks > 0, "repair must trigger fail-back");
    assert_eq!(counters.collectives_failed, 0);
    assert_pins_converged(&cluster);
    assert_completed_xor_failed(&cluster, 4);
}

/// A repair edge that lands while the corrective drain is still in
/// flight must not strand the detour: the ranks cannot enter a new
/// barrier mid-drain, so the fail-back evaluation is deferred until the
/// drain retires — and must then actually run. (Found by the pinned
/// `crash_during_outage` chaos episode: the retirement sweep used to run
/// the check only for restorative drains, so a repair consumed mid-drain
/// left the pins on the detour forever.)
#[test]
fn repair_racing_drain_defers_failback() {
    let mut cluster = cluster_with(95, Bytes::mib(32), 4);
    let domain = spine0_links(&cluster);
    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(Nanos::from_millis(10));
    for &l in &domain {
        driver.link_down(l);
    }
    driver
        .run_until_event(
            Nanos::from_secs(5),
            |e| matches!(e, FailureEvent::RecoveryIssued { comm, .. } if *comm == COMM),
        )
        .expect("spine-0 outage must force a corrective drain");
    // Step until the barrier visibly holds a rank out of `Normal`, then
    // repair the whole domain with the drain still in flight.
    while !driver
        .cluster()
        .world
        .comms
        .values()
        .any(|r| r.comm == COMM && !matches!(r.reconfig, ReconfigState::Normal))
    {
        driver.step().expect("the issued drain must start");
    }
    for &l in &domain {
        driver.link_up(l);
    }
    driver
        .run_to_quiescence(Nanos::from_secs(30))
        .expect("repair racing the drain must still quiesce");

    let counters = cluster.mgmt().health_counters();
    assert!(counters.recoveries > 0, "outage must force a detour");
    assert!(
        counters.failbacks > 0,
        "the deferred fail-back must run once the drain retires"
    );
    assert_eq!(counters.collectives_failed, 0);
    let live = &cluster.world.controller.live;
    assert!(live.issued.is_empty(), "all obligations must retire");
    assert!(live.detoured.is_empty(), "detour must retire after repair");
    assert!(live.baselines.is_empty(), "baselines must clear on retire");
    assert_pins_converged(&cluster);
    assert_completed_xor_failed(&cluster, 4);
}

// ---------------------------------------------------------------------------
// Tentpole: re-driving a converged drain is observably a no-op
// ---------------------------------------------------------------------------

/// Digest-equality acceptance: a crash taken after the drain converged,
/// restarted from a checkpoint that still carries the drain obligation,
/// must retire it without sending a byte — the full run hashes
/// identically to the crash-free run.
#[test]
fn redrive_of_converged_drain_is_digest_noop() {
    let seed = 95;
    let fault_at = Nanos::from_millis(10);
    let repair_at = Nanos::from_millis(120);

    // Arm A: no crash.
    let mut baseline = cluster_with(seed, Bytes::mib(32), 4);
    let domain = spine0_links(&baseline);
    {
        let mut driver = ChaosDriver::new(&mut baseline);
        driver.run_until(fault_at);
        for &l in &domain {
            driver.link_down(l);
        }
        driver.run_until(repair_at);
        for &l in &domain {
            driver.link_up(l);
        }
        driver
            .run_to_quiescence(Nanos::from_secs(30))
            .expect("baseline arm must quiesce");
    }

    // Arm B: same timeline, plus a crash at the instant the corrective
    // drain goes out. The drain converges while the controller is dead,
    // so the restart's re-drive must observe completion and retire the
    // checkpointed obligation without sending a byte.
    let mut crashed = cluster_with(seed, Bytes::mib(32), 4);
    {
        let mut driver = ChaosDriver::new(&mut crashed);
        driver.run_until(fault_at);
        for &l in &domain {
            driver.link_down(l);
        }
        driver
            .run_until_event(
                Nanos::from_secs(5),
                |e| matches!(e, FailureEvent::RecoveryIssued { comm, .. } if *comm == COMM),
            )
            .expect("outage must force a corrective drain");
        driver.crash_controller();
        // The eager checkpoint taken at the drain-issuing poll carries
        // the obligation whose completion the dead incarnation will
        // never observe.
        let ckpt = driver
            .cluster()
            .world
            .controller
            .checkpoint
            .as_ref()
            .expect("eager cadence leaves a checkpoint");
        assert!(
            ckpt.issued.contains_key(&COMM),
            "checkpoint must carry the unobserved drain obligation"
        );
        driver.run_for(Nanos::from_millis(20));
        assert!(
            drained_to(driver.cluster(), 1),
            "drain must converge while the controller is dead"
        );
        driver.restart_controller();
        driver.run_until(repair_at);
        assert!(
            driver.cluster().world.controller.live.issued.is_empty(),
            "reconciliation must retire the completed obligation"
        );
        for &l in &domain {
            driver.link_up(l);
        }
        driver
            .run_to_quiescence(Nanos::from_secs(30))
            .expect("crash arm must quiesce");
    }

    let stats = crashed.mgmt().controller_stats();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.reconciliations, 1);
    assert_eq!(stats.stale_fenced, 0, "nothing stale was ever delivered");
    assert_eq!(
        baseline.observable_digest(),
        crashed.observable_digest(),
        "a reconciled crash+restart must be observably a no-op"
    );
}

// ---------------------------------------------------------------------------
// Tentpole: epoch/incarnation fencing of stale commands
// ---------------------------------------------------------------------------

/// A command issued by a dead incarnation and delivered after the
/// restart is dropped by every rank: counted as fenced, no barrier
/// entered, epoch untouched. A current-incarnation command still works.
#[test]
fn stale_incarnation_command_is_fenced() {
    let mut cluster = cluster_with(33, Bytes::mib(8), 3);
    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(Nanos::from_millis(5));
    assert!(drained_to(driver.cluster(), 0), "comm must be registered");
    driver.crash_controller();
    driver.restart_controller();
    driver.run_for(Nanos::from_millis(1));
    assert_eq!(driver.cluster().world.controller.incarnation, 1);

    // The new incarnation contacts the ranks first — this is what
    // raises their fences (incarnation is learned per message, so a
    // restarted controller that has sent nothing yet cannot be
    // protected against its predecessor).
    let rings = driver
        .cluster_mut()
        .mgmt()
        .communicator(COMM)
        .expect("registered")
        .rings;
    driver
        .cluster_mut()
        .mgmt()
        .reconfigure(COMM, rings, RouteMap::ecmp());
    driver.run_until_event(
        Nanos::from_secs(5),
        |e| matches!(e, FailureEvent::ReconfigApplied { comm, .. } if *comm == COMM),
    );
    while !drained_to(driver.cluster(), 1) {
        driver.step().expect("reconfiguration must converge");
    }

    // Forge the dead incarnation's in-flight reconfigure: a valid
    // next-epoch config stamped with incarnation 0.
    let stale = {
        let rank = driver
            .cluster()
            .world
            .comms
            .values()
            .find(|r| r.comm == COMM)
            .expect("comm persists");
        CollectiveConfig {
            epoch: rank.config.epoch + 1,
            channel_rings: rank.config.channel_rings.clone(),
            routes: RouteMap::ecmp(),
        }
    };
    let epoch_before = stale.epoch - 1;
    for &gpu in &GPUS {
        driver.cluster_mut().world.send_control(
            gpu,
            ProxyMsg::Reconfigure {
                comm: COMM,
                incarnation: 0,
                config: stale.clone(),
            },
        );
    }
    driver.run_for(Nanos::from_millis(2));
    let w = &driver.cluster().world;
    assert_eq!(
        w.controller.stats.stale_fenced,
        GPUS.len() as u64,
        "every rank must fence the stale command"
    );
    let ranks: Vec<_> = w.comms.values().filter(|r| r.comm == COMM).collect();
    assert!(
        ranks
            .iter()
            .all(|r| matches!(r.reconfig, ReconfigState::Normal) && r.config.epoch == epoch_before),
        "a fenced command must not perturb protocol state"
    );
    drop(ranks);

    // The new incarnation's commands still go through.
    let rings = driver
        .cluster_mut()
        .mgmt()
        .communicator(COMM)
        .expect("registered")
        .rings;
    driver
        .cluster_mut()
        .mgmt()
        .reconfigure(COMM, rings, RouteMap::ecmp());
    driver
        .run_to_quiescence(Nanos::from_secs(30))
        .expect("must quiesce");
    assert!(drained_to(&cluster, epoch_before + 1));
    assert_eq!(cluster.mgmt().controller_stats().stale_fenced, 4);
}

// ---------------------------------------------------------------------------
// Satellite 1: baseline memory is bounded
// ---------------------------------------------------------------------------

/// Fail-back retirement clears the detour baseline: the map grows while
/// the detour is live and shrinks back to empty once the repaired fabric
/// converges.
#[test]
fn failback_retire_clears_baselines() {
    let mut cluster = cluster_with(95, Bytes::mib(32), 4);
    let domain = spine0_links(&cluster);
    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(Nanos::from_millis(10));
    for &l in &domain {
        driver.link_down(l);
    }
    driver.run_until(Nanos::from_millis(50));
    {
        let live = &driver.cluster().world.controller.live;
        assert!(
            live.baselines.contains_key(&COMM),
            "an active detour must remember its baseline"
        );
        assert!(live.detoured.contains(&COMM));
    }
    driver.run_until(Nanos::from_millis(120));
    for &l in &domain {
        driver.link_up(l);
    }
    driver
        .run_to_quiescence(Nanos::from_secs(30))
        .expect("must quiesce");
    let live = &cluster.world.controller.live;
    assert!(
        live.baselines.is_empty(),
        "retired fail-back must clear its baseline: {:?}",
        live.baselines.keys().collect::<Vec<_>>()
    );
    assert!(live.detoured.is_empty(), "detour set must retire");
    assert!(live.issued.is_empty(), "completed drains must be swept");
}

/// Destroying a communicator while it is detoured (the fabric never
/// heals) clears every per-communicator controller entry on the next
/// sweep — the unbounded-growth fix.
#[test]
fn destroyed_comm_clears_controller_state() {
    let size = Bytes::mib(32);
    let cfg = ClusterConfig {
        service: eager_checkpoint_svc(),
        ..ClusterConfig::with_seed(95)
    };
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    let ranks = GPUS
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let mut steps = vec![
                ScriptStep::Alloc { size, slot: 0 },
                ScriptStep::Alloc { size, slot: 1 },
                ScriptStep::CommInit {
                    comm: COMM,
                    world: GPUS.to_vec(),
                    rank,
                },
            ];
            for _ in 0..4 {
                steps.push(ScriptStep::Collective {
                    comm: COMM,
                    op: all_reduce_sum(),
                    size,
                    send_slot: 0,
                    recv_slot: 1,
                });
            }
            steps.push(ScriptStep::CommDestroy { comm: COMM });
            let prog = ScriptedProgram::new(format!("destroy/r{rank}"), steps);
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app("destroy", ranks);

    let domain = spine0_links(&cluster);
    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(Nanos::from_millis(10));
    for &l in &domain {
        driver.link_down(l);
    }
    // Let the detoured collectives finish and the script destroy the
    // communicator — the fabric stays broken the whole time.
    driver.run_until(Nanos::from_millis(400));
    assert!(
        !driver.cluster().world.comms.keys().any(|(c, _)| *c == COMM),
        "script must have destroyed the communicator by now"
    );
    assert!(
        !driver.cluster().world.controller.live.baselines.is_empty(),
        "pre-sweep: the dead communicator's baseline still lingers"
    );
    // Any topology edge triggers a batch, whose sweep drops state for
    // communicators that no longer exist.
    for &l in &domain {
        driver.link_up(l);
    }
    driver
        .run_to_quiescence(Nanos::from_secs(30))
        .expect("must quiesce");
    let live = &cluster.world.controller.live;
    assert!(live.baselines.is_empty(), "destroy must clear baselines");
    assert!(live.detoured.is_empty(), "destroy must clear detours");
    assert!(live.issued.is_empty(), "destroy must clear obligations");
    assert_eq!(cluster.mgmt().health_counters().collectives_failed, 0);
}

// ---------------------------------------------------------------------------
// Satellite 2: long outage overflows the channel; restart resyncs
// ---------------------------------------------------------------------------

/// With a tiny channel, a long controller outage accumulates more events
/// than the ring holds. A subscriber frozen across the outage gets a
/// snapshot resync whose view matches ground truth exactly, and the
/// restarted engine reconciles through the same path without issue.
#[test]
fn long_outage_overflows_channel_and_resyncs() {
    let svc = ServiceConfig {
        health_channel_capacity: 8,
        ..eager_checkpoint_svc()
    };
    let cfg = ClusterConfig {
        service: svc,
        ..ClusterConfig::with_seed(7)
    };
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(Nanos::from_millis(1));
    // This subscriber stands in for any controller-side consumer whose
    // cursor froze at the crash.
    let mut sub = driver.cluster_mut().mgmt().subscribe_health();
    driver.crash_controller();

    // 16 events against capacity 8: degrade/repair pairs on the spine
    // uplinks, spread over the outage.
    let domain = spine0_links(driver.cluster());
    let mut injected = 0u64;
    for round in 0..2 {
        for (i, &l) in domain.iter().take(4).enumerate() {
            let t = Nanos::from_millis(2 + round * 8 + i as u64 * 2);
            driver.run_until(t);
            if round == 0 {
                driver.degrade(l, 300 + i as u32 * 100);
            } else {
                driver.degrade(l, 1000);
            }
            injected += 1;
        }
    }
    // Leave one uplink browned out so the snapshot has content.
    driver.run_until(Nanos::from_millis(20));
    driver.degrade(domain[0], 500);
    injected += 1;
    assert!(injected > 8, "must outrun the ring");

    let delivery = driver.cluster().world.health.poll(&mut sub);
    let snap = match delivery {
        HealthDelivery::Resync(snap) => snap,
        HealthDelivery::Events(e) => panic!("expected overflow resync, got {} events", e.len()),
    };
    assert!(snap.lost > 0, "overflow must report lost events");
    let w = &driver.cluster().world;
    assert_eq!(
        snap.links_down,
        w.health.links_down().collect::<Vec<_>>(),
        "snapshot links_down diverged from ground truth"
    );
    assert_eq!(
        snap.hosts_down,
        w.health.hosts_down().collect::<Vec<_>>(),
        "snapshot hosts_down diverged from ground truth"
    );
    assert_eq!(
        snap.links_degraded,
        w.health.links_degraded().collect::<Vec<_>>(),
        "snapshot links_degraded diverged from ground truth"
    );
    assert_eq!(snap.links_degraded, vec![(domain[0], 500)]);

    // The restarted engine's frozen cursor takes the same resync path.
    driver.restart_controller();
    driver
        .run_to_quiescence(Nanos::from_secs(10))
        .expect("must quiesce");
    let stats = cluster.mgmt().controller_stats();
    assert_eq!(stats.reconciliations, 1);
    assert_eq!(stats.crashes, 1);
}

// ---------------------------------------------------------------------------
// Acceptance proptest: random crash points over random fault timelines
// ---------------------------------------------------------------------------

fn crashy_explorer_config(master: u64) -> ExplorerConfig {
    ExplorerConfig {
        seed: master,
        episodes: 3,
        inject_prob: 0.3,
        max_actions: 4,
        horizon: Nanos::from_millis(40),
        deadline: Nanos::from_secs(60),
    }
}

fn explorer_build() -> Cluster {
    cluster_with(7, Bytes::mib(8), 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Controller crashes at random decision points (each carrying a
    /// paired restart obligation) over random fault timelines: every
    /// episode must satisfy completed-xor-failed, quiesce, pass the
    /// post-restart pin-convergence oracle, and replay byte-identically
    /// from its decision trace.
    #[test]
    fn random_crash_points_stay_sound(master in 1_u64..10_000) {
        let mut explorer = Explorer::new(crashy_explorer_config(master), explorer_build);
        for r in explorer.run() {
            prop_assert!(
                r.verdict.is_ok(),
                "episode seed {:#x} violated an oracle: {:?} (trace {:?})",
                r.seed, r.verdict, r.trace
            );
            let replay = explorer.replay(r.seed, &r.trace);
            prop_assert_eq!(
                replay.digest, r.digest,
                "replay of seed {:#x} diverged from its recording", r.seed
            );
        }
    }
}

/// The crash action is actually reachable: across a fixed deterministic
/// seed range the explorer chooses `CrashController` (with its paired
/// restart obligation) at least once, and those episodes pass.
#[test]
fn explorer_reaches_controller_crashes() {
    let mut crashes = 0usize;
    for master in 1..=6 {
        let mut explorer = Explorer::new(crashy_explorer_config(master), explorer_build);
        for r in explorer.run() {
            assert!(
                r.verdict.is_ok(),
                "episode seed {:#x}: {:?} (trace {:?})",
                r.seed,
                r.verdict,
                r.trace
            );
            crashes += r
                .trace
                .iter()
                .filter(|d| d.action == ChaosAction::CrashController)
                .count();
        }
    }
    assert!(
        crashes > 0,
        "no episode ever crashed the controller — the menu arm is dead"
    );
}
