//! Interactive chaos driving and seeded interleaving exploration.
//!
//! The central property under test is the driver/script equivalence
//! gate: a `ChaosDriver` issuing fault events at the same virtual
//! instants as a pre-scripted `FaultPlan` must produce a byte-identical
//! observable digest. On top of that: `Explorer` episodes must be
//! seed-deterministic and replayable from their decision traces, and the
//! recovery-loop bugfixes (repair fail-back, self-wake filtering,
//! mid-run install clamping) each get a regression.

use mccs_collectives::op::all_reduce_sum;
use mccs_core::proxy::ReconfigState;
use mccs_core::recovery::RecoveryPolicy;
use mccs_core::{
    ChaosDriver, Cluster, ClusterConfig, DetourPolicy, Explorer, ExplorerConfig, FailureEvent,
};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_netsim::{FaultEvent, FaultPlan};
use mccs_shim::{ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId, RouteId, SwitchRole};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const COMM: CommunicatorId = CommunicatorId(1);
const GPUS: [GpuId; 4] = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];

fn rank_program(name: &str, rank: usize, size: Bytes, iters: usize) -> ScriptedProgram {
    ScriptedProgram::new(
        format!("{name}/r{rank}"),
        vec![
            ScriptStep::Alloc { size, slot: 0 },
            ScriptStep::Alloc { size, slot: 1 },
            ScriptStep::CommInit {
                comm: COMM,
                world: GPUS.to_vec(),
                rank,
            },
            ScriptStep::Collective {
                comm: COMM,
                op: all_reduce_sum(),
                size,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 3,
                times: iters - 1,
            },
        ],
    )
}

/// A four-host AllReduce tenant over the testbed (mirrors the fault
/// suite's scenario builder).
fn cluster_with(seed: u64, size: Bytes, iters: usize) -> Cluster {
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(seed));
    let ranks = GPUS
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = rank_program("chaos", rank, size, iters);
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app("chaos", ranks);
    cluster
}

fn spine_links(cluster: &Cluster) -> Vec<LinkId> {
    cluster
        .world
        .topo
        .links()
        .iter()
        .filter(|l| matches!(l.from, Endpoint::Switch(_)) && matches!(l.to, Endpoint::Switch(_)))
        .map(|l| l.id)
        .collect()
}

/// The spine link carrying the most traffic at `probe_at` in a
/// fault-free run (same probe the fault suite uses).
fn hottest_spine_at(seed: u64, size: Bytes, iters: usize, probe_at: Nanos) -> LinkId {
    let mut probe = cluster_with(seed, size, iters);
    probe.run_until(probe_at);
    let spines = spine_links(&probe);
    probe
        .mgmt()
        .link_utilization()
        .into_iter()
        .find(|(l, _)| spines.contains(l))
        .map(|(l, _)| l)
        .expect("cross-rack traffic crosses a spine at the probe instant")
}

/// Every link touching the lowest-id spine switch (both directions).
fn spine0_links(cluster: &Cluster) -> Vec<LinkId> {
    let topo = &cluster.world.topo;
    let spine = topo
        .switches()
        .iter()
        .find(|s| s.role == SwitchRole::Spine)
        .expect("testbed has spines")
        .id;
    topo.links()
        .iter()
        .filter(|l| {
            matches!(l.from, Endpoint::Switch(s) if s == spine)
                || matches!(l.to, Endpoint::Switch(s) if s == spine)
        })
        .map(|l| l.id)
        .collect()
}

/// The fault suite's acceptance scenario, pre-scripted: hottest spine
/// dies at 10ms, run to quiescence.
fn scripted_link_failure(seed: u64) -> Cluster {
    let size = Bytes::mib(32);
    let iters = 4;
    let fault_at = Nanos::from_millis(10);
    let spine = hottest_spine_at(seed, size, iters, fault_at);
    let mut cluster = cluster_with(seed, size, iters);
    cluster.install_fault_plan(FaultPlan::new().at(fault_at, FaultEvent::LinkDown(spine)));
    cluster.run_until_quiescent(Nanos::from_secs(20));
    cluster
}

// ---------------------------------------------------------------------------
// Tentpole: driver/script equivalence
// ---------------------------------------------------------------------------

/// The equivalence gate on the acceptance scenario: the same link, down
/// at the same instant, issued live from the test body instead of from a
/// pre-authored script — byte-identical digest.
#[test]
fn driver_matches_scripted_plan_digest() {
    let seed = 21;
    let size = Bytes::mib(32);
    let iters = 4;
    let fault_at = Nanos::from_millis(10);
    let spine = hottest_spine_at(seed, size, iters, fault_at);

    let scripted = scripted_link_failure(seed);

    let mut cluster = cluster_with(seed, size, iters);
    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(fault_at);
    driver.link_down(spine);
    driver
        .run_to_quiescence(Nanos::from_secs(20))
        .expect("driver run must quiesce like the scripted one");

    assert_eq!(
        scripted.observable_digest(),
        cluster.observable_digest(),
        "live injection diverged from the equivalent pre-scripted plan"
    );
}

/// One randomized fault event: (microseconds, raw selector, kind) — the
/// same shape the fault suite's random-plan property uses.
type RawEvent = (u64, usize, u8);

fn event_of(cluster: &Cluster, raw: &RawEvent) -> (Nanos, FaultEvent) {
    let nlinks = cluster.world.topo.links().len();
    let &(us, raw_sel, kind) = raw;
    let at = Nanos::from_micros(us);
    let link = LinkId((raw_sel % nlinks) as u32);
    let ev = match kind % 5 {
        0 => FaultEvent::LinkDown(link),
        1 => FaultEvent::LinkUp(link),
        2 => FaultEvent::LinkDegrade {
            link,
            milli: 100 + ((raw_sel as u32 * 7) % 900),
        },
        3 => FaultEvent::AbortFlowsOn(link),
        _ => {
            let partner = LinkId(((raw_sel / 3 + 1) % nlinks) as u32);
            FaultEvent::CorrelatedDegrade {
                links: Arc::from(&[link, partner][..]),
                milli: 100 + ((raw_sel as u32 * 7) % 900),
            }
        }
    };
    (at, ev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any random timeline of fault events produces the same digest
    /// whether pre-scripted into a plan or issued live by a driver
    /// stepping to each instant.
    #[test]
    fn driver_and_script_are_digest_equivalent(
        seed in 1_u64..500,
        events in proptest::collection::vec(
            (2_000_u64..25_000, 0_usize..1_000, 0_u8..5), 0..5),
    ) {
        // Scripted arm.
        let mut scripted = cluster_with(seed, Bytes::mib(8), 3);
        let mut plan = FaultPlan::new();
        for raw in &events {
            let (at, ev) = event_of(&scripted, raw);
            plan = plan.at(at, ev);
        }
        scripted.install_fault_plan(plan);
        scripted.run_until_quiescent(Nanos::from_secs(30));

        // Driver arm: same events, same instants, issued live. Stable
        // sort by time keeps same-instant events in authoring order,
        // matching the plan's insertion order.
        let mut cluster = cluster_with(seed, Bytes::mib(8), 3);
        let mut timeline: Vec<(Nanos, FaultEvent)> =
            events.iter().map(|r| event_of(&cluster, r)).collect();
        timeline.sort_by_key(|&(t, _)| t);
        let mut driver = ChaosDriver::new(&mut cluster);
        for (at, ev) in timeline {
            driver.run_until(at);
            driver.inject(ev);
        }
        driver
            .run_to_quiescence(Nanos::from_secs(30))
            .expect("driver arm must quiesce");

        prop_assert_eq!(
            scripted.observable_digest(),
            cluster.observable_digest(),
            "driver-issued sequence diverged from the pre-scripted plan"
        );
    }
}

/// Holding the control ring and releasing it later is observably
/// identical to a scripted `delay_control` of the hold duration on every
/// affected message.
#[test]
fn hold_release_equals_scripted_delay() {
    let seed = 81;
    let hold_at = Nanos::from_millis(5);
    let release_at = Nanos::from_millis(7);
    let run = |held: bool| -> (u64, u64) {
        let mut cluster = cluster_with(seed, Bytes::mib(8), 3);
        let mut driver = ChaosDriver::new(&mut cluster);
        driver.run_until(hold_at);
        let first_req = driver.cluster().world.control_ordinal();
        if held {
            driver.hold_control();
        } else {
            // The reconfigure below sends one Req per rank; delay each
            // by the hold span.
            let mut plan = FaultPlan::new();
            for i in 0..GPUS.len() as u64 {
                plan = plan.delay_control(first_req + i, release_at - hold_at);
            }
            driver.cluster_mut().install_fault_plan(plan);
        }
        let rings = driver
            .cluster_mut()
            .mgmt()
            .communicator(COMM)
            .expect("registered")
            .rings
            .clone();
        driver
            .cluster_mut()
            .mgmt()
            .reconfigure(COMM, rings, mccs_core::RouteMap::ecmp());
        if held {
            assert_eq!(driver.held_control(), GPUS.len(), "Reqs must be parked");
        }
        driver.run_until(release_at);
        if held {
            driver.release_control();
        }
        driver
            .run_to_quiescence(Nanos::from_secs(20))
            .expect("must quiesce");
        let epoch = cluster
            .mgmt()
            .communicator(COMM)
            .expect("comm persists")
            .epoch;
        (cluster.observable_digest(), epoch)
    };
    let (held_digest, held_epoch) = run(true);
    let (delayed_digest, delayed_epoch) = run(false);
    assert_eq!(held_epoch, 1, "reconfiguration must converge after release");
    assert_eq!(held_epoch, delayed_epoch);
    assert_eq!(
        held_digest, delayed_digest,
        "hold/release diverged from the equivalent scripted delay"
    );
}

// ---------------------------------------------------------------------------
// Tentpole: seeded interleaving exploration
// ---------------------------------------------------------------------------

fn explorer_config() -> ExplorerConfig {
    ExplorerConfig {
        seed: 0xC0FFEE,
        episodes: 4,
        inject_prob: 0.02,
        max_actions: 3,
        horizon: Nanos::from_millis(60),
        deadline: Nanos::from_secs(60),
    }
}

fn explorer_build() -> Cluster {
    cluster_with(7, Bytes::mib(8), 3)
}

/// Episodes are seed-deterministic, pass both oracles, and at least one
/// finds a non-trivial interleaving; replaying any recorded decision
/// trace reproduces its digest byte-for-byte.
#[test]
fn explorer_episodes_are_deterministic_and_replayable() {
    let mut explorer = Explorer::new(explorer_config(), explorer_build);
    let reports = explorer.run();
    assert!(
        reports.iter().any(|r| !r.trace.is_empty()),
        "exploration never injected a fault — decision points starved"
    );
    for r in &reports {
        assert!(
            r.verdict.is_ok(),
            "episode seed {:#x} violated an oracle: {:?} (trace {:?})",
            r.seed,
            r.verdict,
            r.trace
        );
        // Seed determinism: re-running the episode reproduces it.
        let again = explorer.run_episode(r.seed);
        assert_eq!(again.trace, r.trace, "seed {:#x} trace", r.seed);
        assert_eq!(again.digest, r.digest, "seed {:#x} digest", r.seed);
        // Replay from the decision trace alone (no RNG) — twice, to
        // prove the replay itself is byte-stable.
        let replay1 = explorer.replay(r.seed, &r.trace);
        let replay2 = explorer.replay(r.seed, &r.trace);
        assert_eq!(
            replay1.digest, r.digest,
            "replay of seed {:#x} diverged from its recording",
            r.seed
        );
        assert_eq!(replay1.digest, replay2.digest);
        assert_eq!(replay1.verdict, r.verdict);
    }
}

// ---------------------------------------------------------------------------
// Interactive scenario: partition mid-drain
// ---------------------------------------------------------------------------

/// Steer the cluster into the middle of a Figure-4 drain, then cut a
/// rack off — an interleaving a pre-authored script can only hit by
/// luck. After repair, every collective must resolve the same way on
/// every rank.
#[test]
fn partition_mid_drain_resolves_cleanly() {
    let mut cluster = cluster_with(91, Bytes::mib(32), 4);
    let mut driver = ChaosDriver::new(&mut cluster);
    driver.run_until(Nanos::from_millis(5));
    let rings = driver
        .cluster_mut()
        .mgmt()
        .communicator(COMM)
        .expect("registered")
        .rings
        .clone();
    driver
        .cluster_mut()
        .mgmt()
        .reconfigure(COMM, rings, mccs_core::RouteMap::ecmp());
    // Step until some rank is draining under the new epoch.
    let mut draining = false;
    while let Some(t) = driver.step() {
        if driver
            .cluster()
            .world
            .comms
            .values()
            .any(|r| matches!(r.reconfig, ReconfigState::Draining { .. }))
        {
            draining = true;
            break;
        }
        assert!(
            t < Nanos::from_millis(100),
            "reconfiguration never reached the drain phase"
        );
    }
    assert!(draining, "cluster quiesced before draining");

    // Cut the rack of the last two ranks off mid-drain.
    let host = driver.cluster().world.topo.host_of_gpu(GpuId(6));
    let rack = driver.cluster().world.topo.rack_of(host);
    let cut = driver.partition_rack(rack);
    assert!(!cut.is_empty(), "partition cut no links");
    driver.run_for(Nanos::from_millis(20));
    let fixed = driver.repair_rack(rack);
    assert_eq!(fixed.len(), cut.len(), "repair must restore the partition");
    driver
        .run_to_quiescence(Nanos::from_secs(60))
        .expect("partition + repair must still quiesce");

    // Completed-xor-failed across ranks, and nothing left in flight.
    assert_eq!(cluster.world.tenant_log.unfinished(), 0);
    let mut groups: BTreeMap<u64, Vec<bool>> = BTreeMap::new();
    for r in cluster.world.tenant_log.records() {
        groups.entry(r.seq).or_default().push(r.failed);
    }
    assert_eq!(groups.len(), 4, "every collective leaves a record");
    for (seq, flags) in &groups {
        assert_eq!(flags.len(), GPUS.len(), "seq {seq} missing ranks");
        assert!(
            flags.iter().all(|&f| f == flags[0]),
            "seq {seq} split-brained: {flags:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Satellite 1: repair fail-back
// ---------------------------------------------------------------------------

/// After the failed spine is repaired, the recovery engine must issue a
/// restorative reconfiguration: the post-repair pins return to the
/// healthy-fabric choice instead of staying on the detour forever.
#[test]
fn repair_fails_back_to_healthy_routes() {
    let mut cluster = cluster_with(95, Bytes::mib(32), 4);
    let domain = spine0_links(&cluster);
    let mut plan = FaultPlan::new();
    for &l in &domain {
        plan = plan.at(Nanos::from_millis(10), FaultEvent::LinkDown(l));
    }
    for &l in &domain {
        plan = plan.at(Nanos::from_millis(120), FaultEvent::LinkUp(l));
    }
    cluster.install_fault_plan(plan);
    cluster.run_until_quiescent(Nanos::from_secs(30));

    let counters = cluster.mgmt().health_counters();
    assert!(
        counters.recoveries > 0,
        "spine-0 outage must force a detour"
    );
    assert!(
        counters.failbacks > 0,
        "repair must trigger a restorative reconfiguration: {counters:?}"
    );
    assert!(
        cluster
            .world
            .health
            .events()
            .iter()
            .any(|e| matches!(e, FailureEvent::FailbackIssued { comm, .. } if *comm == COMM)),
        "no FailbackIssued event recorded"
    );

    // The final pins must be the healthy-fabric choice: exactly what the
    // detour policy proposes on the repaired world.
    let rank = cluster
        .world
        .comms
        .values()
        .find(|r| r.comm == COMM)
        .expect("comm persists");
    let (rings, routes) = DetourPolicy
        .plan(&cluster.world, COMM, &rank.config, &rank.world_gpus)
        .expect("healthy fabric must yield a plan");
    assert_eq!(rank.config.channel_rings, rings);
    assert_eq!(
        rank.config.routes, routes,
        "post-repair pins are not the healthy-fabric choice"
    );
    // And every pinned route is fully healthy — lowest-id full-weight
    // route per pair, the pre-failure convention.
    for (&(_, src, dst), &r) in rank.config.routes.iter() {
        assert!(cluster.world.net.route_healthy(src, dst, r));
        assert_eq!(
            r,
            RouteId(0),
            "healthy testbed fabric pins the first route on ties"
        );
    }
    assert_eq!(cluster.mgmt().health_counters().collectives_failed, 0);
}

// ---------------------------------------------------------------------------
// Satellite 2: no self-wake on informational events
// ---------------------------------------------------------------------------

/// Publishing an informational event (like the recovery engine's own
/// `RecoveryIssued`) must not re-ready any subscriber: zero additional
/// polls, zero additional wasted polls. An actionable event still wakes.
#[test]
fn informational_events_do_not_wake_subscribers() {
    let mut cluster = cluster_with(71, Bytes::mib(8), 2);
    cluster.install_fault_plan(FaultPlan::new());
    cluster.run_until_quiescent(Nanos::from_secs(20));
    if cluster.naive_scheduler() {
        // The naive oracle polls everything every round by design; the
        // wake-edge property only exists on the wake-driven scheduler.
        return;
    }
    let spine = spine_links(&cluster)[0];
    let before = cluster.scheduler_stats();
    let now = cluster.now();
    cluster.world.health.record(FailureEvent::RecoveryIssued {
        comm: COMM,
        epoch: 99,
        at: now,
    });
    cluster.run_until(now + Nanos::from_millis(1));
    let mid = cluster.scheduler_stats();
    assert_eq!(
        mid.polls, before.polls,
        "informational event woke a subscriber"
    );
    assert_eq!(
        mid.wasted_polls, before.wasted_polls,
        "informational event caused a wasted poll"
    );

    // Control: an actionable topology event still raises the wake edge.
    let now = cluster.now();
    cluster.world.health.record(FailureEvent::LinkDegraded {
        link: spine,
        milli: 900,
        at: now,
    });
    cluster.run_until(now + Nanos::from_millis(1));
    assert!(
        cluster.scheduler_stats().polls > mid.polls,
        "actionable event failed to wake subscribers"
    );
}

// ---------------------------------------------------------------------------
// Satellite 3: mid-run install semantics
// ---------------------------------------------------------------------------

/// A plan installed mid-run with past-dated events fires them once, at
/// the install instant, and counts the clamp — no fictitious history
/// burst, no silent drop.
#[test]
fn mid_run_install_clamps_past_events_to_now() {
    let mut cluster = cluster_with(73, Bytes::mib(8), 3);
    let install_at = Nanos::from_millis(5);
    cluster.run_until(install_at);
    let spine = spine_links(&cluster)[0];
    // Scripted for 1ms — already in the past at install time.
    cluster.install_fault_plan(FaultPlan::new().at(
        Nanos::from_millis(1),
        FaultEvent::LinkDegrade {
            link: spine,
            milli: 500,
        },
    ));
    assert_eq!(cluster.world.clamped_fault_events, 1);
    // The event fired immediately at the install instant, not at 1ms.
    assert!(
        cluster.world.health.events().iter().any(|e| matches!(
            e,
            FailureEvent::LinkDegraded { link, milli: 500, at }
                if *link == spine && *at == install_at
        )),
        "clamped event did not fire at the install instant: {:?}",
        cluster.world.health.events()
    );
    assert!(cluster
        .world
        .fault_plan
        .as_ref()
        .expect("plan installed")
        .is_empty());
    cluster.run_until_quiescent(Nanos::from_secs(30));
    assert_eq!(cluster.mgmt().timeline(AppId(0)).len(), 3);
}
