//! Fault-injection tests: deterministic failure schedules against the
//! full service stack, plus the zero-overhead regression that fault-free
//! runs are byte-identical to a build without fault support.

use mccs_collectives::op::all_reduce_sum;
use mccs_collectives::CollectiveOp;
use mccs_core::{Cluster, ClusterConfig, DegradationPolicy, FailureEvent, HealthDelivery};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_netsim::{FaultEvent, FaultPlan};
use mccs_shim::{ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId, SwitchRole};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const COMM: CommunicatorId = CommunicatorId(1);
const GPUS: [GpuId; 4] = [GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
/// A second tenant interleaved on the other GPU of every host.
const COMM_B: CommunicatorId = CommunicatorId(2);
const GPUS_B: [GpuId; 4] = [GpuId(1), GpuId(3), GpuId(5), GpuId(7)];

#[allow(clippy::too_many_arguments)]
fn rank_program(
    name: &str,
    comm: CommunicatorId,
    rank: usize,
    world: &[GpuId],
    op: CollectiveOp,
    size: Bytes,
    iters: usize,
) -> ScriptedProgram {
    ScriptedProgram::new(
        format!("{name}/r{rank}"),
        vec![
            ScriptStep::Alloc { size, slot: 0 },
            ScriptStep::Alloc { size, slot: 1 },
            ScriptStep::CommInit {
                comm,
                world: world.to_vec(),
                rank,
            },
            ScriptStep::Collective {
                comm,
                op,
                size,
                send_slot: 0,
                recv_slot: 1,
            },
            ScriptStep::Repeat {
                from_step: 3,
                times: iters - 1,
            },
        ],
    )
}

/// A four-host AllReduce tenant over the testbed.
fn cluster_with(seed: u64, size: Bytes, iters: usize) -> Cluster {
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(seed));
    let ranks = GPUS
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = rank_program("faulty", COMM, rank, &GPUS, all_reduce_sum(), size, iters);
            (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
        })
        .collect();
    cluster.add_app("faulty", ranks);
    cluster
}

/// A stable digest of everything a run observably did: the full service
/// trace (per rank: issue/launch/complete/fail instants and epochs), the
/// failure-event log, and the health counters. Delegates to the digest
/// the determinism CI gate diffs across processes.
fn run_digest(cluster: &Cluster) -> u64 {
    cluster.observable_digest()
}

fn spine_links(cluster: &Cluster) -> Vec<LinkId> {
    cluster
        .world
        .topo
        .links()
        .iter()
        .filter(|l| matches!(l.from, Endpoint::Switch(_)) && matches!(l.to, Endpoint::Switch(_)))
        .map(|l| l.id)
        .collect()
}

/// The spine link carrying the most traffic at `probe_at` in a fault-free
/// run — by determinism, the same link the faulted run's flows will cross.
fn hottest_spine_at(seed: u64, size: Bytes, iters: usize, probe_at: Nanos) -> LinkId {
    let mut probe = cluster_with(seed, size, iters);
    probe.run_until(probe_at);
    let spines = spine_links(&probe);
    probe
        .mgmt()
        .link_utilization()
        .into_iter()
        .find(|(l, _)| spines.contains(l))
        .map(|(l, _)| l)
        .expect("cross-rack traffic crosses a spine at the probe instant")
}

// ---------------------------------------------------------------------------
// Zero-overhead regression
// ---------------------------------------------------------------------------

/// Without a fault plan, no fault machinery runs: the health registry
/// stays untouched and two identical runs produce identical digests.
#[test]
fn fault_free_runs_are_quiet_and_deterministic() {
    let mut a = cluster_with(11, Bytes::mib(16), 3);
    a.run_until_quiescent(Nanos::from_secs(5));
    assert!(
        a.world.health.is_quiet(),
        "fault-free run touched the health registry: {:?}",
        a.world.health.counters
    );
    let mut b = cluster_with(11, Bytes::mib(16), 3);
    b.run_until_quiescent(Nanos::from_secs(5));
    assert_eq!(run_digest(&a), run_digest(&b));
}

/// Installing an *empty* plan arms the detection machinery (liveness
/// timers, stall sweeps) but must not change a single observable byte of
/// a healthy run — the "no plan installed ⇒ byte-identical traces"
/// guarantee, tested from the stronger side.
#[test]
fn empty_plan_does_not_perturb_a_healthy_run() {
    let mut bare = cluster_with(12, Bytes::mib(16), 3);
    bare.run_until_quiescent(Nanos::from_secs(5));

    let mut armed = cluster_with(12, Bytes::mib(16), 3);
    armed.install_fault_plan(FaultPlan::new());
    armed.run_until_quiescent(Nanos::from_secs(5));

    assert!(armed.world.health.is_quiet(), "healthy run recorded events");
    assert_eq!(
        run_digest(&bare),
        run_digest(&armed),
        "an inert fault plan changed an observable outcome"
    );
}

// ---------------------------------------------------------------------------
// Scripted failures
// ---------------------------------------------------------------------------

fn link_failure_run(seed: u64) -> Cluster {
    let size = Bytes::mib(32);
    let iters = 4;
    let fault_at = Nanos::from_millis(10);
    let spine = hottest_spine_at(seed, size, iters, fault_at);
    let mut cluster = cluster_with(seed, size, iters);
    cluster.install_fault_plan(FaultPlan::new().at(fault_at, FaultEvent::LinkDown(spine)));
    cluster.run_until_quiescent(Nanos::from_secs(20));
    cluster
}

/// The acceptance scenario: one spine dies mid-AllReduce. Flows re-pin to
/// the surviving spine, the recovery engine re-enters the Figure 4 barrier
/// with a corrective config, and every queued collective still completes.
#[test]
fn single_link_failure_recovers_and_completes_everything() {
    let mut cluster = link_failure_run(21);
    let tl = cluster.mgmt().timeline(AppId(0));
    assert_eq!(tl.len(), 4, "every collective must complete");
    for r in &cluster.world.trace.records().to_vec() {
        assert!(r.failed_at.is_none(), "cleanly-failed collective: {r:?}");
    }
    let c = cluster.mgmt().communicator(COMM).expect("comm persists");
    assert!(
        c.epoch >= 1,
        "failure must have driven a reconfiguration (epoch {})",
        c.epoch
    );
    let counters = cluster.mgmt().health_counters();
    assert!(counters.flow_retries > 0, "no transport retry recorded");
    assert!(counters.recoveries > 0, "no corrective config issued");
    assert_eq!(counters.collectives_failed, 0);
    assert_eq!(cluster.mgmt().links_down(), vec![spine_of(&cluster)]);
}

/// The dead link at quiescence (there is exactly one in the scenario).
fn spine_of(cluster: &Cluster) -> LinkId {
    let mut down = cluster.world.health.links_down();
    let l = down.next().expect("the failed spine stays down");
    assert!(down.next().is_none());
    l
}

/// Same seed, same plan — same digest, run to run.
#[test]
fn link_failure_recovery_is_deterministic() {
    let a = link_failure_run(22);
    let b = link_failure_run(22);
    assert_eq!(run_digest(&a), run_digest(&b));
}

/// A lost corrective Req must not wedge the barrier: the rank that never
/// got it learns the new config from its neighbors' gossip (implicit Req)
/// and the reconfiguration still converges.
#[test]
fn dropped_reconfigure_req_converges_via_gossip() {
    let mut cluster = cluster_with(31, Bytes::mib(32), 3);
    cluster.run_until(Nanos::from_millis(5));
    // The next 4 control messages are the reconfigure's Reqs; lose one.
    let first_req = cluster.world.control_ordinal();
    cluster.install_fault_plan(FaultPlan::new().drop_control(first_req + 2));
    let info = cluster.mgmt().communicator(COMM).expect("registered");
    let rings = info.rings.clone();
    cluster
        .mgmt()
        .reconfigure(COMM, rings, mccs_core::RouteMap::ecmp());
    cluster.run_until_quiescent(Nanos::from_secs(20));
    let c = cluster.mgmt().communicator(COMM).expect("comm persists");
    assert_eq!(c.epoch, 1, "barrier did not converge after a lost Req");
    assert_eq!(cluster.mgmt().timeline(AppId(0)).len(), 3);
    assert_eq!(cluster.mgmt().health_counters().collectives_failed, 0);
}

/// Crash one participant host mid-run and warm-restart it: the frozen
/// proxies resume with state intact and every collective still completes.
#[test]
fn host_crash_and_restart_completes_all_collectives() {
    let mut cluster = cluster_with(41, Bytes::mib(16), 3);
    let host = cluster.world.topo.host_of_gpu(GpuId(6));
    cluster.install_fault_plan(
        FaultPlan::new()
            .at(Nanos::from_millis(6), FaultEvent::CrashHost(host))
            .at(Nanos::from_millis(9), FaultEvent::RestartHost(host)),
    );
    cluster.run_until_quiescent(Nanos::from_secs(20));
    assert!(cluster.mgmt().hosts_down().is_empty());
    assert_eq!(cluster.mgmt().timeline(AppId(0)).len(), 3);
    assert_eq!(cluster.mgmt().health_counters().collectives_failed, 0);
    // The kill-flows-on-crash path must have forced at least one retry.
    assert!(cluster.mgmt().health_counters().flow_retries > 0);
}

// ---------------------------------------------------------------------------
// Brownouts: degradation-aware routing vs binary route-around
// ---------------------------------------------------------------------------

/// Every link touching the lowest-id spine switch (both directions) —
/// one correlated brownout domain, as when a spine linecard overheats.
fn spine0_links(cluster: &Cluster) -> Vec<LinkId> {
    let topo = &cluster.world.topo;
    let spine = topo
        .switches()
        .iter()
        .find(|s| s.role == SwitchRole::Spine)
        .expect("testbed has spines")
        .id;
    topo.links()
        .iter()
        .filter(|l| {
            matches!(l.from, Endpoint::Switch(s) if s == spine)
                || matches!(l.to, Endpoint::Switch(s) if s == spine)
        })
        .map(|l| l.id)
        .collect()
}

/// Two interleaved four-host tenants; spine 0 browns out to 50% early in
/// the run. Returns the makespan (last completion across both tenants).
fn brownout_run(policy: DegradationPolicy) -> (Nanos, Cluster) {
    // Sized so even the route-around pileup finishes each collective well
    // under the liveness timeout: the comparison measures routing quality,
    // not stall-recovery churn.
    let size = Bytes::mib(8);
    let iters = 4;
    let mut cfg = ClusterConfig::with_seed(61);
    cfg.service.degradation = policy;
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    for (name, comm, gpus) in [("brown-a", COMM, GPUS), ("brown-b", COMM_B, GPUS_B)] {
        let ranks = gpus
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let prog = rank_program(name, comm, rank, &gpus, all_reduce_sum(), size, iters);
                (gpu, Box::new(prog) as Box<dyn mccs_shim::AppProgram>)
            })
            .collect();
        cluster.add_app(name, ranks);
    }
    let domain = spine0_links(&cluster);
    cluster.install_fault_plan(FaultPlan::new().degrade_group(Nanos::from_millis(4), &domain, 500));
    cluster.run_until_quiescent(Nanos::from_secs(60));
    let mut makespan = Nanos::ZERO;
    for app in [AppId(0), AppId(1)] {
        let tl = cluster.mgmt().timeline(app);
        assert_eq!(
            tl.len(),
            iters,
            "brownout lost collectives (policy {policy:?}, counters {:?}, events {:?})",
            cluster.mgmt().health_counters(),
            cluster.world.health.events(),
        );
        makespan = makespan.max(tl.last().expect("ran").completed_at.expect("complete"));
    }
    assert_eq!(cluster.mgmt().health_counters().collectives_failed, 0);
    (makespan, cluster)
}

/// The acceptance scenario for partial degradation: with one spine at
/// half rate, weighted selection keeps carrying a proportional share over
/// the brownout instead of piling both tenants onto the survivor (where
/// cross-tenant sharing costs extra), so the weighted makespan beats
/// binary route-around measurably.
#[test]
fn brownout_weighted_beats_route_around() {
    let (weighted, mut wc) = brownout_run(DegradationPolicy::default());
    let (binary, _) = brownout_run(DegradationPolicy::route_around());
    assert!(
        wc.mgmt().health_counters().flow_rebalances > 0,
        "weighted policy never rebalanced a flow"
    );
    assert!(
        weighted.as_secs_f64() < binary.as_secs_f64() * 0.95,
        "weighted routing should beat route-around under a 50% brownout: \
         weighted {weighted}, route-around {binary}"
    );
}

// ---------------------------------------------------------------------------
// The health push channel (service side)
// ---------------------------------------------------------------------------

/// Degrades and host events reach a subscriber through the bounded push
/// channel, in order and consecutively seq-numbered — and the degraded-
/// link gauge tracks what is still below line rate at quiescence.
#[test]
fn push_channel_delivers_degrade_and_host_events_in_order() {
    let mut cluster = cluster_with(51, Bytes::mib(16), 3);
    let mut sub = cluster.mgmt().subscribe_health();
    let spine = spine0_links(&cluster)[0];
    let host = cluster.world.topo.host_of_gpu(GpuId(6));
    cluster.install_fault_plan(
        FaultPlan::new()
            .at(
                Nanos::from_millis(2),
                FaultEvent::LinkDegrade {
                    link: spine,
                    milli: 500,
                },
            )
            .at(Nanos::from_millis(6), FaultEvent::CrashHost(host))
            .at(Nanos::from_millis(9), FaultEvent::RestartHost(host)),
    );
    cluster.run_until_quiescent(Nanos::from_secs(30));

    let HealthDelivery::Events(events) = cluster.mgmt().poll_health(&mut sub) else {
        panic!("a short run must not overflow the channel");
    };
    assert!(!events.is_empty());
    for (i, &(seq, _)) in events.iter().enumerate() {
        assert_eq!(seq, events[0].0 + i as u64, "seq numbers must be gapless");
    }
    assert!(
        events.iter().any(|&(_, e)| matches!(
            e,
            FailureEvent::LinkDegraded { link, milli: 500, .. } if link == spine
        )),
        "degrade never pushed: {events:?}"
    );
    assert!(events
        .iter()
        .any(|&(_, e)| matches!(e, FailureEvent::HostDown { host: h, .. } if h == host)));
    assert!(events
        .iter()
        .any(|&(_, e)| matches!(e, FailureEvent::HostUp { host: h, .. } if h == host)));

    // Fully drained: the next poll is empty, not a resync.
    let HealthDelivery::Events(rest) = cluster.mgmt().poll_health(&mut sub) else {
        panic!("resync after a full drain");
    };
    assert!(rest.is_empty());

    // The gauge reflects the one still-degraded link.
    assert_eq!(cluster.mgmt().links_degraded(), vec![(spine, 0.5)]);
    assert_eq!(cluster.mgmt().health_counters().links_degraded, 1);
}

// ---------------------------------------------------------------------------
// Property: weighted route selection
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted selection never lands on a hard-down route, under any
    /// threshold; `None` only when every route is dead.
    #[test]
    fn weighted_selection_never_picks_a_dead_route(
        weights in proptest::collection::vec(
            prop_oneof![Just(0.0_f64), 0.0_f64..1.0], 1..6),
        key in any::<u64>(),
        threshold in 0.0_f64..1.0,
    ) {
        let policy = DegradationPolicy {
            route_around_below: threshold,
            rebalance_hysteresis: 0.1,
        };
        match policy.select(&weights, key) {
            Some(i) => prop_assert!(
                weights[i] > 0.0,
                "picked dead route {} of {:?}", i, weights
            ),
            None => prop_assert!(weights.iter().all(|&w| w <= 0.0)),
        }
    }

    /// `route_around_below = 1.0` degenerates to the binary behavior:
    /// while any full-rate route exists only full-rate routes are picked,
    /// and with none left the least-degraded survivor is.
    #[test]
    fn threshold_one_degenerates_to_route_around(
        weights in proptest::collection::vec(
            prop_oneof![Just(0.0_f64), Just(1.0_f64), 0.1_f64..0.95], 1..6),
        key in any::<u64>(),
    ) {
        let policy = DegradationPolicy::route_around();
        match policy.select(&weights, key) {
            None => prop_assert!(weights.iter().all(|&w| w <= 0.0)),
            Some(i) if weights.iter().any(|&w| w >= 1.0) => {
                prop_assert_eq!(weights[i], 1.0);
            }
            Some(i) => {
                let best = weights.iter().copied().fold(0.0_f64, f64::max);
                prop_assert_eq!(weights[i], best);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property: random fault plans
// ---------------------------------------------------------------------------

/// One randomized fault event: (microseconds, raw selector, kind).
type RawEvent = (u64, usize, u8);

fn build_plan(cluster: &Cluster, events: &[RawEvent], drops: &[u64]) -> FaultPlan {
    let nlinks = cluster.world.topo.links().len();
    let mut plan = FaultPlan::new();
    for &(us, raw, kind) in events {
        let at = Nanos::from_micros(us);
        let link = LinkId((raw % nlinks) as u32);
        plan = match kind % 5 {
            0 => plan.at(at, FaultEvent::LinkDown(link)),
            1 => plan.at(at, FaultEvent::LinkUp(link)),
            2 => plan.at(
                at,
                FaultEvent::LinkDegrade {
                    link,
                    milli: 100 + ((raw as u32 * 7) % 900),
                },
            ),
            3 => plan.at(at, FaultEvent::AbortFlowsOn(link)),
            // Correlated brownout: two links sag in the same instant,
            // exercising coalesced multi-failure recovery.
            _ => {
                let partner = LinkId(((raw / 3 + 1) % nlinks) as u32);
                plan.degrade_group(at, &[link, partner], 100 + ((raw as u32 * 7) % 900))
            }
        };
    }
    for &d in drops {
        plan = plan.drop_control(d);
    }
    plan
}

fn run_random(seed: u64, events: &[RawEvent], drops: &[u64]) -> Cluster {
    let mut cluster = cluster_with(seed, Bytes::mib(8), 3);
    let plan = build_plan(&cluster, events, drops);
    cluster.install_fault_plan(plan);
    cluster.run_until_quiescent(Nanos::from_secs(30));
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The recovery oracle: under any schedule of link faults and control-
    /// message loss, every launched collective either completes on all
    /// ranks under one agreed epoch, or is cleanly failed to the tenant on
    /// all ranks — and the whole run is deterministic per seed (identical
    /// digests on a replay). `run_until_quiescent` doubles as the deadlock
    /// detector.
    #[test]
    fn random_fault_plans_resolve_every_collective(
        seed in 1_u64..1_000,
        events in proptest::collection::vec((2_000_u64..25_000, 0_usize..1_000, 0_u8..5), 0..6),
        drops in proptest::collection::vec(0_u64..50, 0..3),
    ) {
        let cluster = run_random(seed, &events, &drops);
        // Group every rank's verdict per collective.
        let mut verdicts: BTreeMap<u64, Vec<(usize, Option<u64>, bool)>> = BTreeMap::new();
        for r in cluster.world.trace.records() {
            prop_assert_eq!(r.comm, COMM);
            let completed = r.completed_at.is_some();
            let failed = r.failed_at.is_some();
            prop_assert!(
                completed ^ failed,
                "rank {} seq {} neither completed nor cleanly failed (or both): {:?}",
                r.rank, r.seq, r
            );
            verdicts.entry(r.seq).or_default().push((
                r.rank,
                completed.then_some(r.epoch),
                completed,
            ));
        }
        prop_assert_eq!(verdicts.len(), 3, "every collective leaves a trace");
        for (seq, ranks) in &verdicts {
            prop_assert_eq!(ranks.len(), GPUS.len(), "seq {} missing ranks", seq);
            let all_same_outcome = ranks.iter().all(|&(_, _, c)| c == ranks[0].2);
            prop_assert!(all_same_outcome, "seq {} split-brained: {:?}", seq, ranks);
            if ranks[0].2 {
                let epoch = ranks[0].1;
                prop_assert!(
                    ranks.iter().all(|&(_, e, _)| e == epoch),
                    "seq {} completed under disagreeing epochs: {:?}",
                    seq, ranks
                );
            }
        }
        // Determinism: the same seed and plan replays byte-identically.
        let replay = run_random(seed, &events, &drops);
        prop_assert_eq!(run_digest(&cluster), run_digest(&replay));
    }
}
