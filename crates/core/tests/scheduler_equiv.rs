//! Scheduler-equivalence gate: the wake-driven ready-set scheduler must be
//! observably indistinguishable from the naive poll-everyone-until-
//! quiescent oracle ([`Cluster::set_naive_scheduler`]). Every scenario
//! runs twice — once per scheduler — and compares
//! [`Cluster::observable_digest`] byte-for-byte: the full per-rank trace,
//! the failure-event log, and the health counters. Scheduler efficiency
//! counters are deliberately outside the digest (they differ by design —
//! that difference is the whole point of the wake scheduler).
//!
//! CI additionally re-runs the entire core fault battery under
//! `MCCS_SIM_NAIVE_POOL=1` in the oracle-equivalence job, so the naive
//! path keeps exercising every assertion the wake path does.

use mccs_collectives::op::all_reduce_sum;
use mccs_core::{Cluster, ClusterConfig, DegradationPolicy};
use mccs_ipc::CommunicatorId;
use mccs_netsim::{FaultEvent, FaultPlan};
use mccs_shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::graph::Endpoint;
use mccs_topology::{presets, GpuId, LinkId, SwitchRole};
use proptest::prelude::*;
use std::sync::Arc;

/// One rank of an iterated all-reduce job, optionally with an idle phase
/// before the loop (idle ranks are where the two schedulers diverge most:
/// the oracle keeps polling them, the wake scheduler parks them).
fn rank_program(
    name: &str,
    comm: CommunicatorId,
    rank: usize,
    world: &[GpuId],
    size: Bytes,
    iters: usize,
    sleep_until: Option<Nanos>,
) -> ScriptedProgram {
    let mut steps = vec![
        ScriptStep::Alloc { size, slot: 0 },
        ScriptStep::Alloc { size, slot: 1 },
        ScriptStep::CommInit {
            comm,
            world: world.to_vec(),
            rank,
        },
    ];
    if let Some(t) = sleep_until {
        steps.push(ScriptStep::SleepUntil(t));
    }
    let loop_head = steps.len();
    steps.push(ScriptStep::Collective {
        comm,
        op: all_reduce_sum(),
        size,
        send_slot: 0,
        recv_slot: 1,
    });
    if iters > 1 {
        steps.push(ScriptStep::Repeat {
            from_step: loop_head,
            times: iters - 1,
        });
    }
    ScriptedProgram::new(format!("{name}/r{rank}"), steps)
}

struct Tenant {
    name: &'static str,
    comm: CommunicatorId,
    gpus: Vec<GpuId>,
    size: Bytes,
    iters: usize,
    sleep_until: Option<Nanos>,
}

fn build_cluster(seed: u64, policy: DegradationPolicy, tenants: &[Tenant]) -> Cluster {
    let mut cfg = ClusterConfig::with_seed(seed);
    cfg.service.degradation = policy;
    let mut cluster = Cluster::new(Arc::new(presets::testbed()), cfg);
    for t in tenants {
        let ranks = t
            .gpus
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let prog = rank_program(
                    t.name,
                    t.comm,
                    rank,
                    &t.gpus,
                    t.size,
                    t.iters,
                    t.sleep_until,
                );
                (gpu, Box::new(prog) as Box<dyn AppProgram>)
            })
            .collect();
        cluster.add_app(t.name, ranks);
    }
    cluster
}

fn two_tenants(size: Bytes, iters: usize) -> Vec<Tenant> {
    vec![
        Tenant {
            name: "ta",
            comm: CommunicatorId(1),
            gpus: vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)],
            size,
            iters,
            sleep_until: None,
        },
        Tenant {
            name: "tb",
            comm: CommunicatorId(2),
            gpus: vec![GpuId(1), GpuId(3), GpuId(5), GpuId(7)],
            size,
            iters,
            sleep_until: None,
        },
    ]
}

/// Every link touching the first spine switch.
fn spine0_links(cluster: &Cluster) -> Vec<LinkId> {
    let topo = &cluster.world.topo;
    let spine = topo
        .switches()
        .iter()
        .find(|s| s.role == SwitchRole::Spine)
        .expect("testbed has spines")
        .id;
    topo.links()
        .iter()
        .filter(|l| {
            matches!(l.from, Endpoint::Switch(s) if s == spine)
                || matches!(l.to, Endpoint::Switch(s) if s == spine)
        })
        .map(|l| l.id)
        .collect()
}

/// Run one configuration under one scheduler to quiescence and return the
/// observable digest plus the wasted-poll count (for efficiency sanity).
fn run_one(
    naive: bool,
    seed: u64,
    policy: DegradationPolicy,
    tenants: &[Tenant],
    plan: Option<&dyn Fn(&Cluster) -> FaultPlan>,
) -> (u64, u64) {
    let mut cluster = build_cluster(seed, policy, tenants);
    cluster.set_naive_scheduler(naive);
    if let Some(make) = plan {
        let plan = make(&cluster);
        cluster.install_fault_plan(plan);
    }
    cluster.run_until_quiescent(Nanos::from_secs(120));
    (
        cluster.observable_digest(),
        cluster.scheduler_stats().wasted_polls,
    )
}

/// Assert wake and naive schedulers agree on a scenario's digest.
fn assert_equivalent(
    what: &str,
    seed: u64,
    policy: DegradationPolicy,
    tenants: &[Tenant],
    plan: Option<&dyn Fn(&Cluster) -> FaultPlan>,
) {
    let (wake, _) = run_one(false, seed, policy, tenants, plan);
    let (naive, _) = run_one(true, seed, policy, tenants, plan);
    assert_eq!(
        wake, naive,
        "{what}: wake scheduler diverged from naive oracle (seed {seed})"
    );
}

#[test]
fn healthy_workload_digests_match() {
    for seed in [7, 21, 1234] {
        assert_equivalent(
            "healthy",
            seed,
            DegradationPolicy::default(),
            &two_tenants(Bytes::mib(16), 4),
            None,
        );
    }
}

#[test]
fn idle_heavy_workload_digests_match() {
    // One tenant sleeps most of the run: the wake scheduler parks its
    // engines while the oracle keeps polling. Digest must not notice.
    let mut tenants = two_tenants(Bytes::mib(8), 3);
    tenants[1].sleep_until = Some(Nanos::from_millis(40));
    assert_equivalent(
        "idle_heavy",
        42,
        DegradationPolicy::default(),
        &tenants,
        None,
    );
}

#[test]
fn fault_battery_digests_match() {
    // Mirrors the fault_digest determinism battery, scenario for scenario.
    assert_equivalent(
        "spine_down",
        21,
        DegradationPolicy::default(),
        &two_tenants(Bytes::mib(16), 4),
        Some(&|c: &Cluster| {
            FaultPlan::new().at(
                Nanos::from_millis(6),
                FaultEvent::LinkDown(spine0_links(c)[0]),
            )
        }),
    );
    assert_equivalent(
        "brownout_weighted",
        61,
        DegradationPolicy::default(),
        &two_tenants(Bytes::mib(8), 4),
        Some(&|c: &Cluster| {
            FaultPlan::new().degrade_group(Nanos::from_millis(4), &spine0_links(c), 500)
        }),
    );
    assert_equivalent(
        "brownout_route_around",
        61,
        DegradationPolicy::route_around(),
        &two_tenants(Bytes::mib(8), 4),
        Some(&|c: &Cluster| {
            FaultPlan::new().degrade_group(Nanos::from_millis(4), &spine0_links(c), 500)
        }),
    );
    assert_equivalent(
        "host_blip_lossy_control",
        51,
        DegradationPolicy::default(),
        &two_tenants(Bytes::mib(16), 4),
        Some(&|c: &Cluster| {
            let host = c.world.topo.host_of_gpu(GpuId(6));
            FaultPlan::new()
                .at(Nanos::from_millis(5), FaultEvent::CrashHost(host))
                .at(Nanos::from_millis(9), FaultEvent::RestartHost(host))
                .drop_control(19)
                .drop_control(37)
        }),
    );
}

/// Run one scenario with the netsim either on its fast paths (arena
/// storage, rack-hierarchical solve, incremental recompute — the default)
/// or in full-oracle mode, and return the observable digest.
fn run_netsim_mode(
    oracle: bool,
    seed: u64,
    tenants: &[Tenant],
    plan: Option<&dyn Fn(&Cluster) -> FaultPlan>,
) -> u64 {
    let mut cluster = build_cluster(seed, DegradationPolicy::default(), tenants);
    cluster.set_netsim_oracle(oracle);
    if let Some(make) = plan {
        let plan = make(&cluster);
        cluster.install_fault_plan(plan);
    }
    cluster.run_until_quiescent(Nanos::from_secs(120));
    cluster.observable_digest()
}

#[test]
fn netsim_fast_paths_digest_match_oracle() {
    // Arena-indexed storage + hierarchical max-min vs map-backed storage
    // + from-scratch global solve: byte-identical digests on a healthy
    // workload, an idle-heavy one, and a crash/restart plan that recycles
    // arena slots mid-run.
    let healthy = two_tenants(Bytes::mib(16), 4);
    assert_eq!(
        run_netsim_mode(false, 7, &healthy, None),
        run_netsim_mode(true, 7, &healthy, None),
        "healthy: netsim fast paths diverged from the full oracle"
    );
    let mut idle = two_tenants(Bytes::mib(8), 3);
    idle[1].sleep_until = Some(Nanos::from_millis(40));
    assert_eq!(
        run_netsim_mode(false, 42, &idle, None),
        run_netsim_mode(true, 42, &idle, None),
        "idle_heavy: netsim fast paths diverged from the full oracle"
    );
    let churn = two_tenants(Bytes::mib(16), 4);
    let crash_plan = |c: &Cluster| {
        let host = c.world.topo.host_of_gpu(GpuId(6));
        FaultPlan::new()
            .at(Nanos::from_millis(5), FaultEvent::CrashHost(host))
            .at(Nanos::from_millis(9), FaultEvent::RestartHost(host))
            .at(
                Nanos::from_millis(12),
                FaultEvent::LinkDown(spine0_links(c)[0]),
            )
    };
    assert_eq!(
        run_netsim_mode(false, 51, &churn, Some(&crash_plan)),
        run_netsim_mode(true, 51, &churn, Some(&crash_plan)),
        "crash_churn: netsim fast paths diverged from the full oracle"
    );
}

#[test]
fn doubled_run_digest_is_stable() {
    // Two runs in the same process: every `HashMap` in the stack gets a
    // fresh `RandomState` seed on construction, so any digest-visible
    // dependence on hash-iteration order diverges between the two runs.
    // (Cross-process determinism is checked by CI's fault_digest job; this
    // is the in-process analogue that needs no harness support.)
    let tenants = two_tenants(Bytes::mib(16), 4);
    let plan = |c: &Cluster| {
        let host = c.world.topo.host_of_gpu(GpuId(6));
        FaultPlan::new()
            .degrade_group(Nanos::from_millis(4), &spine0_links(c), 500)
            .at(Nanos::from_millis(6), FaultEvent::CrashHost(host))
            .at(Nanos::from_millis(9), FaultEvent::RestartHost(host))
            .drop_control(19)
    };
    let first = run_one(
        false,
        21,
        DegradationPolicy::default(),
        &tenants,
        Some(&plan),
    );
    let second = run_one(
        false,
        21,
        DegradationPolicy::default(),
        &tenants,
        Some(&plan),
    );
    assert_eq!(
        first.0, second.0,
        "doubled run diverged: something digest-visible iterates a HashMap"
    );
}

/// Run one scenario on the parallel wave scheduler with a given worker
/// count; returns the digest and the synced scheduler stats.
fn run_workers(
    workers: usize,
    seed: u64,
    policy: DegradationPolicy,
    tenants: &[Tenant],
    plan: Option<&dyn Fn(&Cluster) -> FaultPlan>,
) -> (u64, mccs_core::health::SchedulerStats) {
    let mut cluster = build_cluster(seed, policy, tenants);
    cluster.set_sim_workers(workers);
    assert_eq!(cluster.sim_workers(), workers.max(1));
    if let Some(make) = plan {
        let plan = make(&cluster);
        cluster.install_fault_plan(plan);
    }
    cluster.run_until_quiescent(Nanos::from_secs(120));
    (cluster.observable_digest(), cluster.scheduler_stats())
}

#[test]
fn worker_counts_digest_equal() {
    // The ISSUE's core gate: the worker pool is observably invisible.
    // Digests AND the poll/wasted/wake efficiency counters must be
    // byte-identical at 1, 2 and 8 workers, on a healthy run, an
    // idle-heavy run, and a fault scenario exercising recovery.
    let mut idle = two_tenants(Bytes::mib(8), 3);
    idle[1].sleep_until = Some(Nanos::from_millis(40));
    let crash_plan = |c: &Cluster| {
        let host = c.world.topo.host_of_gpu(GpuId(6));
        FaultPlan::new()
            .degrade_group(Nanos::from_millis(4), &spine0_links(c), 500)
            .at(Nanos::from_millis(6), FaultEvent::CrashHost(host))
            .at(Nanos::from_millis(9), FaultEvent::RestartHost(host))
            .drop_control(19)
    };
    type Scenario<'a> = (
        &'a str,
        u64,
        Vec<Tenant>,
        Option<&'a dyn Fn(&Cluster) -> FaultPlan>,
    );
    let scenarios: Vec<Scenario> = vec![
        ("healthy", 7, two_tenants(Bytes::mib(16), 4), None),
        ("idle_heavy", 42, idle, None),
        (
            "crash_churn",
            21,
            two_tenants(Bytes::mib(16), 4),
            Some(&crash_plan),
        ),
    ];
    for (what, seed, tenants, plan) in scenarios {
        let (base, stats1) = run_workers(1, seed, DegradationPolicy::default(), &tenants, plan);
        assert_eq!(
            stats1.waves, 0,
            "{what}: sequential path must skip wave partitioning"
        );
        for workers in [2, 8] {
            let (digest, stats) =
                run_workers(workers, seed, DegradationPolicy::default(), &tenants, plan);
            assert_eq!(
                base, digest,
                "{what}: digest moved at sim_workers={workers} (seed {seed})"
            );
            assert_eq!(
                (stats1.polls, stats1.wasted_polls, stats1.wakes),
                (stats.polls, stats.wasted_polls, stats.wakes),
                "{what}: efficiency counters moved at sim_workers={workers}"
            );
            assert!(
                stats.waves > 0 && stats.max_group > 0,
                "{what}: parallel pool must report wave gauges"
            );
        }
    }
}

#[test]
fn doubled_run_digest_stable_under_parallel_pool() {
    // The in-process analogue of CI's parallel-equivalence doubled-run
    // diff: two identical runs on the 8-worker pool, byte-for-byte.
    let tenants = two_tenants(Bytes::mib(16), 4);
    let plan = |c: &Cluster| {
        let host = c.world.topo.host_of_gpu(GpuId(6));
        FaultPlan::new()
            .at(Nanos::from_millis(5), FaultEvent::CrashHost(host))
            .at(Nanos::from_millis(9), FaultEvent::RestartHost(host))
            .at(
                Nanos::from_millis(12),
                FaultEvent::LinkDown(spine0_links(c)[0]),
            )
    };
    let (first, _) = run_workers(8, 51, DegradationPolicy::default(), &tenants, Some(&plan));
    let (second, _) = run_workers(8, 51, DegradationPolicy::default(), &tenants, Some(&plan));
    assert_eq!(
        first, second,
        "doubled 8-worker run diverged: the parallel pool leaks nondeterminism"
    );
}

/// Run one scenario at an explicit `(shards, workers)` point; returns the
/// digest and the synced scheduler stats. `shards == 1` is the global
/// single-queue oracle; the default (env unset) resolves to racks + 1.
fn run_sharded(
    shards: usize,
    workers: usize,
    seed: u64,
    tenants: &[Tenant],
    plan: Option<&dyn Fn(&Cluster) -> FaultPlan>,
) -> (u64, mccs_core::health::SchedulerStats) {
    let mut cluster = build_cluster(seed, DegradationPolicy::default(), tenants);
    cluster.set_sim_shards(shards);
    cluster.set_sim_workers(workers);
    assert_eq!(cluster.sim_shards(), shards.max(1));
    if let Some(make) = plan {
        let plan = make(&cluster);
        cluster.install_fault_plan(plan);
    }
    cluster.run_until_quiescent(Nanos::from_secs(120));
    (cluster.observable_digest(), cluster.scheduler_stats())
}

#[test]
fn sharded_vs_global_digests_match() {
    // The ISSUE 10 gate: the per-rack sharded event loop is observably
    // invisible. {global (1 shard), auto (racks+1), oversharded (16)} ×
    // workers {1, 2, 8} must agree on digests AND efficiency counters, on
    // a healthy run, an idle-heavy run, and a crash/recovery scenario.
    let mut idle = two_tenants(Bytes::mib(8), 3);
    idle[1].sleep_until = Some(Nanos::from_millis(40));
    let crash_plan = |c: &Cluster| {
        let host = c.world.topo.host_of_gpu(GpuId(6));
        FaultPlan::new()
            .degrade_group(Nanos::from_millis(4), &spine0_links(c), 500)
            .at(Nanos::from_millis(6), FaultEvent::CrashHost(host))
            .at(Nanos::from_millis(9), FaultEvent::RestartHost(host))
            .drop_control(19)
    };
    type Scenario<'a> = (
        &'a str,
        u64,
        Vec<Tenant>,
        Option<&'a dyn Fn(&Cluster) -> FaultPlan>,
    );
    let scenarios: Vec<Scenario> = vec![
        ("healthy", 7, two_tenants(Bytes::mib(16), 4), None),
        ("idle_heavy", 42, idle, None),
        (
            "crash_churn",
            21,
            two_tenants(Bytes::mib(16), 4),
            Some(&crash_plan),
        ),
    ];
    for (what, seed, tenants, plan) in scenarios {
        let (global, gstats) = run_sharded(1, 1, seed, &tenants, plan);
        for shards in [3, 16] {
            for workers in [1, 2, 8] {
                let (digest, stats) = run_sharded(shards, workers, seed, &tenants, plan);
                assert_eq!(
                    global, digest,
                    "{what}: digest moved at shards={shards} workers={workers} (seed {seed})"
                );
                assert_eq!(
                    (gstats.polls, gstats.wasted_polls, gstats.wakes),
                    (stats.polls, stats.wasted_polls, stats.wakes),
                    "{what}: efficiency counters moved at shards={shards} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn per_shard_tallies_sum_to_the_totals() {
    // The satellite counter contract: per-shard poll tallies, merged in
    // ascending shard order, reproduce the scheduler totals exactly —
    // and with the auto shard count, rack-resident engines actually land
    // on rack shards (shard 0 is not the whole story).
    let tenants = two_tenants(Bytes::mib(8), 2);
    let mut cluster = build_cluster(7, DegradationPolicy::default(), &tenants);
    cluster.set_sim_shards(0); // auto: racks + 1 = 3 on the testbed
    assert_eq!(cluster.sim_shards(), 3);
    cluster.run_until_quiescent(Nanos::from_secs(120));
    let stats = cluster.scheduler_stats();
    let shards = cluster.per_shard_polls();
    assert_eq!(shards.len(), 3);
    let polls: u64 = shards.iter().map(|(p, _)| p).sum();
    let wasted: u64 = shards.iter().map(|(_, w)| w).sum();
    assert_eq!((polls, wasted), (stats.polls, stats.wasted_polls));
    assert!(
        shards[1].0 > 0 && shards[2].0 > 0,
        "rack shards must carry polls, not just the shared shard: {shards:?}"
    );
}

#[test]
fn cross_shard_wake_deadline_is_not_masked_at_cluster_level() {
    // Regression: a wake scheduled on one rack's event shard must be seen
    // by `World::next_time`'s k-way min even when every other shard is
    // quiet — a shard-local next_time would mask it and the cluster would
    // report quiescence with a live deadline pending.
    let tenants = two_tenants(Bytes::mib(4), 1);
    let mut cluster = build_cluster(11, DegradationPolicy::default(), &tenants);
    cluster.run_until_quiescent(Nanos::from_secs(120));
    assert_eq!(cluster.world.next_time(), None, "quiesced");
    let shards = cluster.world.event_shards();
    assert!(shards >= 3, "testbed resolves to racks + 1 shards");
    let t = cluster.now() + Nanos::from_micros(10);
    cluster.world.schedule_wake_on(shards - 1, t);
    assert_eq!(
        cluster.world.next_time(),
        Some(t),
        "a lone wake on the last shard must surface through next_time"
    );
    cluster.run_until_quiescent(Nanos::from_secs(120));
    assert!(
        cluster.now() >= t,
        "the clock must advance through the wake"
    );
}

#[test]
fn wake_scheduler_wastes_fewer_polls() {
    // Not a digest property, but the reason the scheduler exists: on an
    // idle-heavy run the oracle burns polls on parked engines.
    let mut tenants = two_tenants(Bytes::mib(8), 3);
    tenants[0].sleep_until = Some(Nanos::from_millis(30));
    tenants[1].sleep_until = Some(Nanos::from_millis(60));
    let (_, wake_wasted) = run_one(false, 5, DegradationPolicy::default(), &tenants, None);
    let (_, naive_wasted) = run_one(true, 5, DegradationPolicy::default(), &tenants, None);
    assert!(
        wake_wasted * 2 < naive_wasted,
        "wake scheduler should waste well under half the oracle's polls \
         (wake {wake_wasted} vs naive {naive_wasted})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random two-tenant workloads — sizes, iteration counts, idle phases
    /// and an optional link failure all randomized — always produce the
    /// same observable digest under both schedulers.
    #[test]
    fn random_workloads_digest_equal(
        seed in 0u64..1_000_000,
        ta in (1u64..24, 1usize..5),
        tb in (1u64..24, 1usize..5),
        sleep_ms in proptest::option::of(1u64..80),
        fault_ms in proptest::option::of(2u64..40),
    ) {
        let (mib_a, iters_a) = ta;
        let (mib_b, iters_b) = tb;
        let mut tenants = two_tenants(Bytes::mib(mib_a), iters_a);
        tenants[1].size = Bytes::mib(mib_b);
        tenants[1].iters = iters_b;
        tenants[1].sleep_until = sleep_ms.map(Nanos::from_millis);
        let plan = fault_ms.map(|ms| {
            move |c: &Cluster| {
                FaultPlan::new().at(Nanos::from_millis(ms), FaultEvent::LinkDown(spine0_links(c)[0]))
            }
        });
        let plan_ref: Option<&dyn Fn(&Cluster) -> FaultPlan> =
            plan.as_ref().map(|p| p as &dyn Fn(&Cluster) -> FaultPlan);
        let (wake, _) = run_one(false, seed, DegradationPolicy::default(), &tenants, plan_ref);
        let (naive, _) = run_one(true, seed, DegradationPolicy::default(), &tenants, plan_ref);
        prop_assert_eq!(wake, naive, "random workload diverged (seed {})", seed);
    }

    /// Random workloads produce byte-identical digests across shard
    /// counts {1, 4, 16} × worker counts {1, 8} — the full sharded ×
    /// concurrent grid against the single-queue sequential baseline.
    #[test]
    fn random_workloads_digest_equal_across_shard_grid(
        seed in 0u64..1_000_000,
        ta in (1u64..16, 1usize..4),
        tb in (1u64..16, 1usize..4),
        sleep_ms in proptest::option::of(1u64..60),
        fault_ms in proptest::option::of(2u64..30),
    ) {
        let (mib_a, iters_a) = ta;
        let (mib_b, iters_b) = tb;
        let mut tenants = two_tenants(Bytes::mib(mib_a), iters_a);
        tenants[1].size = Bytes::mib(mib_b);
        tenants[1].iters = iters_b;
        tenants[1].sleep_until = sleep_ms.map(Nanos::from_millis);
        let plan = fault_ms.map(|ms| {
            move |c: &Cluster| {
                FaultPlan::new().at(Nanos::from_millis(ms), FaultEvent::LinkDown(spine0_links(c)[0]))
            }
        });
        let plan_ref: Option<&dyn Fn(&Cluster) -> FaultPlan> =
            plan.as_ref().map(|p| p as &dyn Fn(&Cluster) -> FaultPlan);
        let (base, _) = run_sharded(1, 1, seed, &tenants, plan_ref);
        for shards in [4usize, 16] {
            for workers in [1usize, 8] {
                let (digest, _) = run_sharded(shards, workers, seed, &tenants, plan_ref);
                prop_assert_eq!(
                    base, digest,
                    "random workload diverged at shards={} workers={} (seed {})",
                    shards, workers, seed
                );
            }
        }
    }
}
