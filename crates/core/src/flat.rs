//! A sorted-vector map for small, hot, ordered tables.
//!
//! The per-NIC transport tables hold a handful to a few dozen live flows
//! each, but a 10k-GPU world carries ten thousand of these tables and the
//! engine loop sweeps them every poll. A `BTreeMap` pays pointer-chasing
//! and node overhead per probe; [`FlatMap`] stores `(key, value)` pairs in
//! one sorted `Vec` — binary-search lookups, cache-line-friendly ordered
//! sweeps, and `O(n)` shifts on insert/remove that are cheap at these
//! sizes. Iteration order is ascending key order, exactly like the
//! `BTreeMap` it replaces, so digest-visible event ordering is unchanged.

/// A map backed by a single sorted vector. API mirrors the subset of
/// `BTreeMap` the engines use, so it is a drop-in replacement at the type
/// level.
#[derive(Debug, Clone)]
pub struct FlatMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord, V> Default for FlatMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> FlatMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        FlatMap {
            entries: Vec::new(),
        }
    }

    fn pos(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.pos(key).is_ok()
    }

    /// Insert, returning the previous value for `key` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.pos(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Remove and return `key`'s value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.pos(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Shared access.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.pos(key).ok().map(|i| &self.entries[i].1)
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.pos(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.entries.iter().map(|(_, v)| v)
    }

    /// `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Mutable `(key, value)` pairs in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> + '_ {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Exclusive access to `key`'s value, inserting `default` first if
    /// absent (`BTreeMap::entry(..).or_insert(..)` for the common case).
    pub fn get_or_insert(&mut self, key: K, default: V) -> &mut V {
        let i = match self.pos(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, default));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Keep only entries for which `pred` returns true, in ascending
    /// key order.
    pub fn retain(&mut self, mut pred: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| pred(k, v));
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn mirrors_btreemap_under_churn() {
        let mut flat: FlatMap<u64, u64> = FlatMap::new();
        let mut map: BTreeMap<u64, u64> = BTreeMap::new();
        // Deterministic keyed churn; xorshift-style mixing for spread.
        let mut x = 0x9e3779b97f4a7c15u64;
        for step in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 64;
            if step % 3 == 0 {
                assert_eq!(flat.remove(&k), map.remove(&k));
            } else {
                assert_eq!(flat.insert(k, step), map.insert(k, step));
            }
            assert_eq!(flat.len(), map.len());
            assert_eq!(flat.get(&k), map.get(&k));
        }
        assert!(flat.keys().eq(map.keys()), "identical ascending order");
        assert!(flat.iter().eq(map.iter()));
    }

    #[test]
    fn get_or_insert_retain_clear() {
        let mut m: FlatMap<u32, u32> = FlatMap::new();
        *m.get_or_insert(5, 0) += 1;
        *m.get_or_insert(5, 0) += 1;
        *m.get_or_insert(2, 10) += 1;
        assert_eq!(m.get(&5), Some(&2));
        assert_eq!(m.get(&2), Some(&11));
        m.retain(|k, _| *k > 2);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&5));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut m = FlatMap::new();
        m.insert(3u32, "c");
        m.insert(1, "a");
        assert!(!m.is_empty());
        *m.get_mut(&1).unwrap() = "z";
        assert_eq!(m.get(&1), Some(&"z"));
        assert!(m.contains_key(&3));
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec!["z", "c"]);
    }
}
