//! Failure-driven reconfiguration: the service-side recovery loop.
//!
//! The [`RecoveryEngine`] consumes [`FailureEvent`]s from the world's
//! [`HealthRegistry`](crate::health::HealthRegistry) and turns them into
//! corrective [`CollectiveConfig`]s, re-entering the Figure 4
//! reconfiguration protocol with a strategy rebuilt around the failure.
//! The config itself comes from a pluggable [`RecoveryPolicy`]; the
//! built-in [`DetourPolicy`] re-pins inter-host connections onto healthy
//! routes and drops whole channels only when a connection has no healthy
//! route left, degrading bandwidth gracefully instead of deadlocking.
//!
//! The engine is inert without a fault plan installed: it polls `Idle`
//! immediately, adding zero overhead to fault-free runs.

use crate::config::{CollectiveConfig, RouteMap};
use crate::health::FailureEvent;
use crate::world::World;
use mccs_collectives::{op::all_reduce_sum, CollectiveSchedule, EdgeTask, RingOrder};
use mccs_ipc::CommunicatorId;
use mccs_sim::{Bytes, Engine, Nanos, Poll};
use mccs_topology::{GpuId, NicId, RouteId};
use std::collections::HashMap;

/// A controller policy that proposes a corrective strategy for a
/// communicator after a failure. Returning `None` means no healthy
/// strategy exists (the recovery engine then lets the per-collective
/// attempt cap fail the stalled work to the tenants).
pub trait RecoveryPolicy: Send {
    /// Propose `(channel_rings, routes)` for `comm` given the current
    /// (failed-under) configuration. Implementations read link health from
    /// `w.net` / `w.health`.
    fn plan(
        &self,
        w: &World,
        comm: CommunicatorId,
        current: &CollectiveConfig,
        world_gpus: &[GpuId],
    ) -> Option<(Vec<RingOrder>, RouteMap)>;
}

/// The built-in policy: keep the current rings, pin every inter-host
/// connection to its first healthy route, and drop a channel's ring
/// entirely when one of its connections has no healthy route at all.
/// Dropping a ring shifts the channel-to-NIC assignment of the remaining
/// channels, so the schedule is recomputed after every removal.
#[derive(Debug, Default, Clone, Copy)]
pub struct DetourPolicy;

impl DetourPolicy {
    /// First healthy route id for a NIC pair, if any.
    fn healthy_route(w: &World, src: NicId, dst: NicId) -> Option<RouteId> {
        (0..w.topo.path_diversity(src, dst))
            .map(|i| RouteId(i as u32))
            .find(|&r| w.net.route_healthy(src, dst, r))
    }
}

impl RecoveryPolicy for DetourPolicy {
    fn plan(
        &self,
        w: &World,
        _comm: CommunicatorId,
        current: &CollectiveConfig,
        _world_gpus: &[GpuId],
    ) -> Option<(Vec<RingOrder>, RouteMap)> {
        let mut rings = current.channel_rings.clone();
        'rebuild: loop {
            if rings.is_empty() {
                return None;
            }
            // The inter-host NIC pairs depend only on the rings and the
            // topology, not on the op or size, so any probe schedule works.
            let sched = CollectiveSchedule::ring(&w.topo, all_reduce_sum(), Bytes::mib(1), &rings);
            let mut routes = RouteMap::ecmp();
            for ch in &sched.channels {
                for task in &ch.tasks {
                    let EdgeTask::InterHost {
                        src_nic, dst_nic, ..
                    } = *task
                    else {
                        continue;
                    };
                    match Self::healthy_route(w, src_nic, dst_nic) {
                        Some(r) => routes.pin(ch.channel, src_nic, dst_nic, r),
                        None => {
                            // No path at all between this pair: the channel
                            // cannot run. Drop its ring and rebuild — the
                            // channel-to-NIC mapping of the survivors shifts.
                            rings.remove(ch.channel);
                            continue 'rebuild;
                        }
                    }
                }
            }
            return Some((rings, routes));
        }
    }
}

/// Per-communicator reconfiguration the engine most recently issued:
/// `(target epoch, when)` — used to rate-limit duplicate corrective Reqs
/// while one is still propagating.
type Issued = HashMap<CommunicatorId, (u64, Nanos)>;

/// The failure-monitoring engine (one per cluster). Consumes health
/// events, issues corrective reconfigurations, and aborts collectives
/// whose recovery attempts are exhausted.
pub struct RecoveryEngine {
    /// Read position into `World::health::events`.
    cursor: usize,
    issued: Issued,
    /// Recovery attempts per stalled collective.
    attempts: HashMap<(CommunicatorId, u64), u32>,
}

impl RecoveryEngine {
    /// A fresh engine.
    pub fn new() -> Self {
        RecoveryEngine {
            cursor: 0,
            issued: HashMap::new(),
            attempts: HashMap::new(),
        }
    }

    /// Whether any of `comm`'s current inter-host connections traverses a
    /// dead link (so a link event warrants a corrective config).
    fn comm_crosses_dead_link(w: &World, comm: CommunicatorId) -> bool {
        let Some(rank) = w
            .comms
            .iter()
            .find(|((c, _), _)| *c == comm)
            .map(|(_, r)| r)
        else {
            return false;
        };
        let cfg = &rank.config;
        if cfg.channel_rings.is_empty() {
            return false;
        }
        let sched =
            CollectiveSchedule::ring(&w.topo, all_reduce_sum(), Bytes::mib(1), &cfg.channel_rings);
        for ch in &sched.channels {
            for task in &ch.tasks {
                let EdgeTask::InterHost {
                    src_nic, dst_nic, ..
                } = *task
                else {
                    continue;
                };
                let route = match cfg.routes.get(ch.channel, src_nic, dst_nic) {
                    Some(r) => w.topo.pinned_route(src_nic, dst_nic, r),
                    None => {
                        let h = cfg.ecmp_hash(comm, ch.channel, src_nic, dst_nic);
                        w.topo.ecmp_route(src_nic, dst_nic, h)
                    }
                };
                if route.links.iter().any(|&l| !w.net.link_up(l)) {
                    return true;
                }
            }
        }
        false
    }

    /// Issue a corrective reconfiguration for `comm` if its ranks are in a
    /// state that can accept one and the policy finds a healthy strategy.
    fn try_recover(&mut self, w: &mut World, comm: CommunicatorId) {
        let ranks: Vec<_> = w
            .comms
            .iter()
            .filter(|((c, _), _)| *c == comm)
            .map(|(_, r)| r)
            .collect();
        let Some(first) = ranks.first() else {
            return;
        };
        let world_gpus = first.world_gpus.clone();
        // Only a fully registered, quiescent-protocol communicator can
        // enter a new barrier; otherwise wait for the next stall report.
        if ranks.len() != world_gpus.len() {
            return;
        }
        let epoch = first.config.epoch;
        let uniform = ranks.iter().all(|r| {
            matches!(r.reconfig, crate::proxy::ReconfigState::Normal) && r.config.epoch == epoch
        });
        let current = first.config.clone();
        drop(ranks);
        if !uniform {
            return;
        }
        let target = epoch + 1;
        // Rate-limit: a corrective Req for this epoch may still be in
        // flight (control latency); duplicates are idempotent at the
        // proxies but cost messages.
        if let Some(&(t, at)) = self.issued.get(&comm) {
            if t >= target && w.clock < at + w.svc.liveness_timeout {
                return;
            }
        }
        let policy = w.recovery_policy.take();
        let proposal = match &policy {
            Some(p) => p.plan(w, comm, &current, &world_gpus),
            None => DetourPolicy.plan(w, comm, &current, &world_gpus),
        };
        w.recovery_policy = policy;
        let Some((rings, routes)) = proposal else {
            // Nothing healthy to switch to; the attempt cap will fail the
            // stalled collectives to their tenants.
            return;
        };
        let config = CollectiveConfig {
            epoch: target,
            channel_rings: rings,
            routes,
        };
        for &gpu in &world_gpus {
            w.send_control(
                gpu,
                crate::messages::ProxyMsg::Reconfigure {
                    comm,
                    config: config.clone(),
                },
            );
        }
        self.issued.insert(comm, (target, w.clock));
        w.health.counters.recoveries += 1;
        w.health.record(FailureEvent::RecoveryIssued {
            comm,
            epoch: target,
            at: w.clock,
        });
    }

    fn handle_event(&mut self, w: &mut World, ev: FailureEvent) {
        match ev {
            FailureEvent::LinkDown { .. } => {
                let comms: Vec<CommunicatorId> = {
                    let mut v: Vec<CommunicatorId> = w.comms.keys().map(|(c, _)| *c).collect();
                    v.dedup();
                    v
                };
                for comm in comms {
                    if Self::comm_crosses_dead_link(w, comm) {
                        self.try_recover(w, comm);
                    }
                }
            }
            FailureEvent::CollectiveStalled { comm, seq, .. } => {
                let a = self.attempts.entry((comm, seq)).or_insert(0);
                if *a >= w.svc.recovery_max_attempts {
                    w.abort_collective(comm, seq);
                } else {
                    *a += 1;
                    self.try_recover(w, comm);
                }
            }
            // Informational events need no corrective action here.
            FailureEvent::LinkUp { .. }
            | FailureEvent::HostDown { .. }
            | FailureEvent::HostUp { .. }
            | FailureEvent::FlowRetried { .. }
            | FailureEvent::FlowExhausted { .. }
            | FailureEvent::RecoveryIssued { .. }
            | FailureEvent::ReconfigRejected { .. } => {}
        }
    }
}

impl Default for RecoveryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine<World> for RecoveryEngine {
    fn progress(&mut self, w: &mut World) -> Poll {
        // Inert without a fault plan: zero work on production runs.
        if w.fault_plan.is_none() {
            return Poll::Idle;
        }
        if self.cursor >= w.health.events().len() {
            return Poll::Idle;
        }
        let events: Vec<FailureEvent> = w.health.events()[self.cursor..].to_vec();
        self.cursor = w.health.events().len();
        for ev in events {
            self.handle_event(w, ev);
        }
        Poll::Progressed
    }

    fn name(&self) -> String {
        "recovery".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use mccs_device::DeviceConfig;
    use mccs_ipc::IpcConfig;
    use mccs_topology::presets;
    use std::sync::Arc;

    fn world() -> World {
        World::new(
            Arc::new(presets::testbed()),
            DeviceConfig::default(),
            IpcConfig::default(),
            ServiceConfig::default(),
            7,
        )
    }

    #[test]
    fn detour_pins_healthy_routes() {
        let w = world();
        let world_gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
        let current = CollectiveConfig::default_for(&w.topo, &world_gpus);
        let (rings, routes) = DetourPolicy
            .plan(&w, CommunicatorId(0), &current, &world_gpus)
            .expect("healthy fabric must yield a plan");
        assert_eq!(rings.len(), current.channel_rings.len());
        // Every pinned route must be healthy (trivially, with no faults).
        for (&(_, src, dst), &r) in routes.iter() {
            assert!(w.net.route_healthy(src, dst, r));
        }
    }

    #[test]
    fn detour_avoids_dead_links() {
        let mut w = world();
        let world_gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
        let current = CollectiveConfig::default_for(&w.topo, &world_gpus);
        // Kill one inter-switch link; with two spines an alternate exists.
        let spine = w
            .topo
            .links()
            .iter()
            .find(|l| {
                use mccs_topology::graph::Endpoint;
                matches!(l.from, Endpoint::Switch(_)) && matches!(l.to, Endpoint::Switch(_))
            })
            .map(|l| l.id)
            .expect("testbed has switch-to-switch links");
        w.net.set_link_up(mccs_sim::Nanos::ZERO, spine, false);
        let (_, routes) = DetourPolicy
            .plan(&w, CommunicatorId(0), &current, &world_gpus)
            .expect("an alternate spine remains");
        for (&(_, src, dst), &r) in routes.iter() {
            let route = w.topo.pinned_route(src, dst, r);
            assert!(
                !route.links.contains(&spine),
                "detour pinned a route over the dead link"
            );
            assert!(w.net.route_healthy(src, dst, r));
        }
    }
}
