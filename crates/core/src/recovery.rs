//! Failure-driven reconfiguration: the service-side recovery loop.
//!
//! The [`RecoveryEngine`] subscribes to the world's bounded
//! [`HealthChannel`](crate::health::HealthChannel) (it is the first
//! consumer of the push path — no polling of the event log) and turns
//! deliveries into corrective [`CollectiveConfig`]s, re-entering the
//! Figure 4 reconfiguration protocol with a strategy rebuilt around the
//! failure. Concurrent failures are **coalesced**: every event in one
//! delivery batch is folded into a single set of affected communicators,
//! and each gets at most one corrective drain per batch — two links
//! dying in the same instant cost one reconfiguration, not serial
//! re-drains. The config itself comes from a pluggable
//! [`RecoveryPolicy`]; the built-in [`DetourPolicy`] re-pins inter-host
//! connections onto the best-weighted surviving routes and drops whole
//! channels only when a connection has no route left, degrading
//! bandwidth gracefully instead of deadlocking.
//!
//! The engine is inert without a fault plan installed: it polls `Idle`
//! immediately, adding zero overhead to fault-free runs.
//!
//! ## Crash tolerance
//!
//! The engine is the compute half of a crashable controller whose durable
//! state lives in the world ([`crate::world::ControllerState`]): in-flight drain
//! obligations, the detoured set, fail-back baselines, and the health
//! cursor. That state is checkpointed opportunistically (at most every
//! [`controller_checkpoint_interval`](crate::config::ServiceConfig)).
//! While the controller is down the engine freezes — the cursor stops,
//! events pile into the bounded channel, and a long outage exercises the
//! overflow→snapshot resync for real. The first poll after a restart runs
//! a reconciliation pass: re-drive unobserved drains (deduped by
//! `(comm, epoch)` so a completed drain is retired without sending a
//! byte), re-mark pinned communicators as fail-back candidates, and
//! resume (or resync) the health cursor from the checkpoint.

use crate::config::{CollectiveConfig, RouteMap};
use crate::flat::FlatMap;
use crate::health::{FailureEvent, HealthDelivery, HealthSubscription};
use crate::world::{resources, DrainObligation, World};
use mccs_collectives::{op::all_reduce_sum, CollectiveSchedule, EdgeTask, RingOrder};
use mccs_ipc::CommunicatorId;
use mccs_sim::{Bytes, Engine, Poll, Wake};
use mccs_topology::{GpuId, NicId, RouteId};
use std::collections::BTreeSet;

/// A controller policy that proposes a corrective strategy for a
/// communicator after a failure. Returning `None` means no healthy
/// strategy exists (the recovery engine then lets the per-collective
/// attempt cap fail the stalled work to the tenants).
pub trait RecoveryPolicy: Send + Sync {
    /// Propose `(channel_rings, routes)` for `comm` given the current
    /// (failed-under) configuration. Implementations read link health from
    /// `w.net` / `w.health`.
    fn plan(
        &self,
        w: &World,
        comm: CommunicatorId,
        current: &CollectiveConfig,
        world_gpus: &[GpuId],
    ) -> Option<(Vec<RingOrder>, RouteMap)>;
}

/// The built-in policy: keep the current rings, pin every inter-host
/// connection to its best-weighted usable route (under the service's
/// [`DegradationPolicy`](crate::config::DegradationPolicy); a degraded
/// route is kept only when nothing better survives), and drop a
/// channel's ring entirely when one of its connections has no route with
/// capacity at all. Dropping a ring shifts the channel-to-NIC assignment
/// of the remaining channels, so the schedule is recomputed after every
/// removal.
#[derive(Debug, Default, Clone, Copy)]
pub struct DetourPolicy;

impl DetourPolicy {
    /// Best surviving route id for a NIC pair, if any: highest usable
    /// weight, lowest id on ties (so a fully healthy fabric pins the
    /// first route, as before degradation awareness); falls back to the
    /// least-degraded route when everything usable is gone.
    fn best_route(w: &World, src: NicId, dst: NicId) -> Option<RouteId> {
        let policy = w.svc.degradation;
        let mut best: Option<(RouteId, f64)> = None;
        let mut fallback: Option<(RouteId, f64)> = None;
        for i in 0..w.topo.path_diversity(src, dst) {
            let r = RouteId(i as u32);
            let weight = w.net.route_weight(src, dst, r);
            let usable = policy.usable_weight(weight);
            if usable > 0.0 && best.as_ref().is_none_or(|&(_, bw)| usable > bw) {
                best = Some((r, usable));
            }
            if weight > 0.0 && fallback.as_ref().is_none_or(|&(_, fw)| weight > fw) {
                fallback = Some((r, weight));
            }
        }
        best.or(fallback).map(|(r, _)| r)
    }
}

impl RecoveryPolicy for DetourPolicy {
    fn plan(
        &self,
        w: &World,
        _comm: CommunicatorId,
        current: &CollectiveConfig,
        _world_gpus: &[GpuId],
    ) -> Option<(Vec<RingOrder>, RouteMap)> {
        let mut rings = current.channel_rings.clone();
        'rebuild: loop {
            if rings.is_empty() {
                return None;
            }
            // The inter-host NIC pairs depend only on the rings and the
            // topology, not on the op or size, so any probe schedule works.
            let sched = CollectiveSchedule::ring(&w.topo, all_reduce_sum(), Bytes::mib(1), &rings);
            let mut routes = RouteMap::ecmp();
            for ch in &sched.channels {
                for task in &ch.tasks {
                    let EdgeTask::InterHost {
                        src_nic, dst_nic, ..
                    } = *task
                    else {
                        continue;
                    };
                    match Self::best_route(w, src_nic, dst_nic) {
                        Some(r) => routes.pin(ch.channel, src_nic, dst_nic, r),
                        None => {
                            // No path at all between this pair: the channel
                            // cannot run. Drop its ring and rebuild — the
                            // channel-to-NIC mapping of the survivors shifts.
                            rings.remove(ch.channel);
                            continue 'rebuild;
                        }
                    }
                }
            }
            return Some((rings, routes));
        }
    }
}

/// The failure-monitoring engine (one per cluster). Subscribes to the
/// health push channel, issues corrective reconfigurations (coalescing a
/// batch of concurrent failures into one drain per communicator), and
/// aborts collectives whose recovery attempts are exhausted.
///
/// Durable working state (issued obligations, detours, baselines) lives
/// in [`World::controller`], not here: the engine is the crashable
/// process, the world-resident [`crate::world::ControllerState`] is what checkpoints
/// preserve across its death. Only the stall-attempt counters stay
/// engine-local — losing them on a crash merely lets a stuck collective
/// earn a fresh round of attempts from the recurring liveness timers.
pub struct RecoveryEngine {
    /// Cursor into the world's health push channel.
    sub: HealthSubscription,
    /// Recovery attempts per stalled collective, in a dense sorted-vec
    /// table (the live set is tiny; see [`crate::flat`]). Deliberately
    /// volatile: wiped by a controller restart.
    attempts: FlatMap<(CommunicatorId, u64), u32>,
    /// Communicators whose fail-back evaluation was deferred because a
    /// repair edge arrived while their drain was still in flight (ranks
    /// non-uniform, no new barrier possible). The retirement sweep runs
    /// the check when the drain completes. Volatile like `attempts`: a
    /// restarted controller's first poll re-observes the repair (replay
    /// or resync) and re-defers.
    deferred_failback: BTreeSet<CommunicatorId>,
}

/// Minimum bottleneck route weight across `comm`'s current inter-host
/// connections (pinned or ECMP-resolved): 1.0 for a healthy or
/// fully-intra-host communicator, 0.0 when some connection crosses a
/// dead link. Shared with the controller's health monitor.
pub fn comm_min_route_weight(w: &World, comm: CommunicatorId) -> f64 {
    let Some(rank) = w
        .comms
        .iter()
        .find(|((c, _), _)| *c == comm)
        .map(|(_, r)| r)
    else {
        return 1.0;
    };
    let cfg = &rank.config;
    if cfg.channel_rings.is_empty() {
        return 1.0;
    }
    let sched =
        CollectiveSchedule::ring(&w.topo, all_reduce_sum(), Bytes::mib(1), &cfg.channel_rings);
    let mut min = 1.0f64;
    for ch in &sched.channels {
        for task in &ch.tasks {
            let EdgeTask::InterHost {
                src_nic, dst_nic, ..
            } = *task
            else {
                continue;
            };
            let route = match cfg.routes.get(ch.channel, src_nic, dst_nic) {
                Some(r) => w.topo.pinned_route(src_nic, dst_nic, r),
                None => {
                    let h = cfg.ecmp_hash(comm, ch.channel, src_nic, dst_nic);
                    w.topo.ecmp_route(src_nic, dst_nic, h)
                }
            };
            for &l in route.links.iter() {
                min = min.min(w.net.link_weight(l));
            }
        }
    }
    min
}

impl RecoveryEngine {
    /// A fresh engine, subscribed from the start of the health stream.
    pub fn new() -> Self {
        RecoveryEngine {
            sub: HealthSubscription::from_start(),
            attempts: FlatMap::new(),
            deferred_failback: BTreeSet::new(),
        }
    }

    /// Whether every rank of `comm` sits in `Normal` at or past `target`
    /// — the observable definition of "this drain completed". False for
    /// an unknown or partially-registered communicator.
    fn drain_complete(w: &World, comm: CommunicatorId, target: u64) -> bool {
        let mut world_size = None;
        let mut seen = 0usize;
        for ((c, _), r) in w.comms.iter() {
            if *c != comm {
                continue;
            }
            seen += 1;
            world_size = Some(r.world_gpus.len());
            if !(matches!(r.reconfig, crate::proxy::ReconfigState::Normal)
                && r.config.epoch >= target)
            {
                return false;
            }
        }
        world_size.is_some_and(|n| seen == n)
    }

    /// Whether `comm`'s current configuration routes over a link the
    /// degradation policy deems unusable (dead, or browned out below the
    /// route-around threshold).
    fn comm_needs_reroute(w: &World, comm: CommunicatorId) -> bool {
        w.svc
            .degradation
            .usable_weight(comm_min_route_weight(w, comm))
            <= 0.0
    }

    /// Issue a corrective reconfiguration for `comm` if its ranks are in a
    /// state that can accept one and the policy finds a healthy strategy.
    fn try_recover(&mut self, w: &mut World, comm: CommunicatorId) {
        let ranks: Vec<_> = w
            .comms
            .iter()
            .filter(|((c, _), _)| *c == comm)
            .map(|(_, r)| r)
            .collect();
        let Some(first) = ranks.first() else {
            return;
        };
        let world_gpus = first.world_gpus.clone();
        // Only a fully registered, quiescent-protocol communicator can
        // enter a new barrier; otherwise wait for the next stall report.
        if ranks.len() != world_gpus.len() {
            return;
        }
        let epoch = first.config.epoch;
        let uniform = ranks.iter().all(|r| {
            matches!(r.reconfig, crate::proxy::ReconfigState::Normal) && r.config.epoch == epoch
        });
        let current = first.config.clone();
        drop(ranks);
        if !uniform {
            return;
        }
        let target = epoch + 1;
        // Rate-limit: a corrective Req for this epoch may still be in
        // flight (control latency); duplicates are idempotent at the
        // proxies but cost messages.
        if let Some(ob) = w.controller.live.issued.get(&comm) {
            if ob.config.epoch >= target && w.clock < ob.issued_at + w.svc.liveness_timeout {
                return;
            }
        }
        let policy = w.recovery_policy.take();
        let proposal = match &policy {
            Some(p) => p.plan(w, comm, &current, &world_gpus),
            None => DetourPolicy.plan(w, comm, &current, &world_gpus),
        };
        w.recovery_policy = policy;
        let Some((rings, routes)) = proposal else {
            // Nothing healthy to switch to; the attempt cap will fail the
            // stalled collectives to their tenants.
            return;
        };
        let config = CollectiveConfig {
            epoch: target,
            channel_rings: rings,
            routes,
        };
        let incarnation = w.controller.incarnation;
        for &gpu in &world_gpus {
            w.send_control(
                gpu,
                crate::messages::ProxyMsg::Reconfigure {
                    comm,
                    incarnation,
                    config: config.clone(),
                },
            );
        }
        w.controller.live.issued.insert(
            comm,
            DrainObligation {
                config,
                issued_at: w.clock,
                restorative: false,
            },
        );
        // Remember what "healthy" looked like so a later repair can
        // restore it; only the first detour snapshots the baseline.
        w.controller
            .live
            .baselines
            .entry(comm)
            .or_insert_with(|| current.channel_rings.clone());
        w.controller.live.detoured.insert(comm);
        w.health.counters.recoveries += 1;
        w.health.record(FailureEvent::RecoveryIssued {
            comm,
            epoch: target,
            at: w.clock,
        });
    }

    /// After a repair, roll a previously-detoured communicator back
    /// toward the policy's healthy-fabric choice. The proposal is
    /// recomputed from the baseline rings captured before the first
    /// detour (so channels dropped during the outage return), and is
    /// issued only when it differs from the current configuration — a
    /// detour that already matches the healthy plan retires for free.
    fn try_failback(&mut self, w: &mut World, comm: CommunicatorId) {
        let ranks: Vec<_> = w
            .comms
            .iter()
            .filter(|((c, _), _)| *c == comm)
            .map(|(_, r)| r)
            .collect();
        let Some(first) = ranks.first() else {
            // The communicator is gone; forget its detour state.
            drop(ranks);
            w.controller.live.detoured.remove(&comm);
            w.controller.live.baselines.remove(&comm);
            w.controller.live.issued.remove(&comm);
            return;
        };
        let world_gpus = first.world_gpus.clone();
        if ranks.len() != world_gpus.len() {
            return;
        }
        let epoch = first.config.epoch;
        let uniform = ranks.iter().all(|r| {
            matches!(r.reconfig, crate::proxy::ReconfigState::Normal) && r.config.epoch == epoch
        });
        let current = first.config.clone();
        drop(ranks);
        if !uniform {
            return;
        }
        let baseline_rings = w
            .controller
            .live
            .baselines
            .get(&comm)
            .cloned()
            .unwrap_or_else(|| current.channel_rings.clone());
        let from = CollectiveConfig {
            epoch,
            channel_rings: baseline_rings,
            routes: current.routes.clone(),
        };
        let policy = w.recovery_policy.take();
        let proposal = match &policy {
            Some(p) => p.plan(w, comm, &from, &world_gpus),
            None => DetourPolicy.plan(w, comm, &from, &world_gpus),
        };
        w.recovery_policy = policy;
        let Some((rings, routes)) = proposal else {
            return;
        };
        if rings == current.channel_rings && routes == current.routes {
            // Already on the healthy-fabric choice — detour retired.
            w.controller.live.detoured.remove(&comm);
            w.controller.live.baselines.remove(&comm);
            return;
        }
        let target = epoch + 1;
        if let Some(ob) = w.controller.live.issued.get(&comm) {
            if ob.config.epoch >= target && w.clock < ob.issued_at + w.svc.liveness_timeout {
                return;
            }
        }
        let config = CollectiveConfig {
            epoch: target,
            channel_rings: rings,
            routes,
        };
        let incarnation = w.controller.incarnation;
        for &gpu in &world_gpus {
            w.send_control(
                gpu,
                crate::messages::ProxyMsg::Reconfigure {
                    comm,
                    incarnation,
                    config: config.clone(),
                },
            );
        }
        w.controller.live.issued.insert(
            comm,
            DrainObligation {
                config,
                issued_at: w.clock,
                restorative: true,
            },
        );
        // Stays in `detoured`: the next repair-quiet pass retires it once
        // the applied config matches the healthy plan (partial repairs
        // may take several steps back to baseline).
        w.health.counters.failbacks += 1;
        w.health.record(FailureEvent::FailbackIssued {
            comm,
            epoch: target,
            at: w.clock,
        });
    }

    /// Fold one delivery batch into the set of communicators needing a
    /// corrective drain. Topology events (link down/degrade) are
    /// evaluated once against every communicator after the whole batch
    /// is applied — N simultaneous failures on one communicator coalesce
    /// into a single recovery — and stall reports are folded into the
    /// same set after their attempt accounting.
    fn handle_batch(&mut self, w: &mut World, events: &[(u64, FailureEvent)], resync: bool) {
        let retired = self.sweep_controller_state(w);
        let mut topo_changed = resync;
        // A repair is a topology change too: it makes *better* routes
        // exist, so previously-detoured communicators get a fail-back
        // pass. On resync we cannot tell what was missed, so assume one.
        let mut repaired = resync;
        let mut to_recover: BTreeSet<CommunicatorId> = BTreeSet::new();
        for &(_, ev) in events {
            match ev {
                FailureEvent::LinkDown { .. } => {
                    topo_changed = true;
                }
                FailureEvent::LinkDegraded { milli, .. } => {
                    topo_changed = true;
                    // milli == 1000 is a brownout clearing — a repair.
                    repaired |= milli == 1000;
                }
                FailureEvent::LinkUp { .. } | FailureEvent::HostUp { .. } => {
                    repaired = true;
                }
                FailureEvent::CollectiveStalled { comm, seq, .. } => {
                    // A stall report can outlive its collective — channel
                    // latency, or a restarted controller replaying the
                    // stream from its checkpointed cursor. Acting on one
                    // would issue a spurious corrective drain, so consult
                    // current progress first.
                    let finished = w
                        .progress
                        .get(&(comm, seq))
                        .is_some_and(|p| p.completed_at.is_some() || p.failed);
                    if finished {
                        continue;
                    }
                    let a = self.attempts.get_or_insert((comm, seq), 0);
                    if *a >= w.svc.recovery_max_attempts {
                        w.abort_collective(comm, seq);
                    } else {
                        *a += 1;
                        to_recover.insert(comm);
                    }
                }
                // Drain completions were already consumed by the sweep
                // above; informational events need no corrective action.
                FailureEvent::ReconfigApplied { .. }
                | FailureEvent::HostDown { .. }
                | FailureEvent::FlowRetried { .. }
                | FailureEvent::FlowRebalanced { .. }
                | FailureEvent::FlowExhausted { .. }
                | FailureEvent::RecoveryIssued { .. }
                | FailureEvent::ReconfigRejected { .. }
                | FailureEvent::FailbackIssued { .. } => {}
            }
        }
        if topo_changed {
            let comms: Vec<CommunicatorId> = {
                let mut v: Vec<CommunicatorId> = w.comms.keys().map(|(c, _)| *c).collect();
                v.dedup();
                v
            };
            for comm in comms {
                if Self::comm_needs_reroute(w, comm) {
                    to_recover.insert(comm);
                }
            }
        }
        for comm in to_recover {
            self.try_recover(w, comm);
        }
        // Corrective work first, restorative second: a communicator that
        // is still broken was just re-issued above and the rate limiter
        // keeps fail-back from double-sending. A repair edge re-evaluates
        // every detour; a completed drain owed a check gets its
        // retirement pass (silent when the config already matches the
        // healthy plan, another step toward baseline after a partial
        // repair).
        let mut failback_pass: BTreeSet<CommunicatorId> = retired.into_iter().collect();
        if repaired {
            failback_pass.extend(w.controller.live.detoured.iter().copied());
            // A detoured communicator mid-drain cannot enter a new
            // barrier now; its fail-back evaluation runs when the drain
            // retires (the repair edge itself is consumed this batch).
            self.deferred_failback
                .extend(w.controller.live.issued.keys().copied());
        }
        for comm in failback_pass {
            self.try_failback(w, comm);
        }
    }

    /// Drop controller state for communicators that no longer exist and
    /// retire drain obligations whose completion has been observed (the
    /// ranks' `ReconfigApplied` reports wake this pass). This is the fix
    /// for unbounded detour-baseline growth: a destroyed communicator
    /// used to pin its remembered pre-failure rings (and attempt
    /// counters) forever. Returns the communicators owing a fail-back
    /// check: every completed *restorative* drain, plus any completed
    /// drain whose fail-back evaluation a repair edge deferred while it
    /// was in flight.
    fn sweep_controller_state(&mut self, w: &mut World) -> Vec<CommunicatorId> {
        let completed: Vec<(CommunicatorId, bool)> = w
            .controller
            .live
            .issued
            .iter()
            .filter(|&(&c, ob)| Self::drain_complete(w, c, ob.config.epoch))
            .map(|(&c, ob)| (c, ob.restorative))
            .collect();
        let mut needs_check = Vec::new();
        for (c, restorative) in completed {
            w.controller.live.issued.remove(&c);
            let deferred = self.deferred_failback.remove(&c);
            if restorative || deferred {
                needs_check.push(c);
            }
        }
        let existing: BTreeSet<CommunicatorId> = w.comms.keys().map(|(c, _)| *c).collect();
        let live = &mut w.controller.live;
        live.issued.retain(|c, _| existing.contains(c));
        live.detoured.retain(|c| existing.contains(c));
        live.baselines.retain(|c, _| existing.contains(c));
        self.attempts.retain(|(c, _), _| existing.contains(c));
        self.deferred_failback.retain(|c| existing.contains(c));
        needs_check.retain(|c| existing.contains(c));
        needs_check
    }

    /// Take a checkpoint of the controller's working state if the
    /// configured interval has elapsed. Opportunistic — called from polls
    /// the engine receives anyway, never waking for it: the state only
    /// changes when the engine runs, so an idle gap has nothing new to
    /// save, and quiescence detection stays untouched.
    fn maybe_checkpoint(&mut self, w: &mut World) {
        let due = match w.controller.last_checkpoint_at {
            None => true,
            Some(t) => w.clock >= t + w.svc.controller_checkpoint_interval,
        };
        if !due {
            return;
        }
        let mut snap = w.controller.live.clone();
        snap.channel_seq = self.sub.next_seq();
        w.controller.checkpoint = Some(snap);
        w.controller.last_checkpoint_at = Some(w.clock);
        w.controller.stats.checkpoints += 1;
    }

    /// Post-restart reconciliation: rebuild a coherent controller from
    /// the checkpoint the restart restored, in a fixed order — (1) wipe
    /// the volatile stall-attempt memory, (2) resume the health cursor at
    /// the checkpointed sequence (a long outage overflowed the ring and
    /// the next poll resyncs instead), (3) re-drive every drain whose
    /// completion was never observed, (4) conservatively re-mark
    /// route-pinned communicators as fail-back candidates so detours the
    /// dead incarnation issued after the checkpoint still retire once the
    /// fabric heals.
    fn reconcile(&mut self, w: &mut World) {
        w.controller.pending_restart = false;
        self.attempts.clear();
        self.sub = HealthSubscription::at(w.controller.live.channel_seq);
        let issued: Vec<(CommunicatorId, DrainObligation)> = w
            .controller
            .live
            .issued
            .iter()
            .map(|(&c, ob)| (c, ob.clone()))
            .collect();
        for (comm, ob) in issued {
            self.redrive(w, comm, &ob);
        }
        // Pinned routes are the recovery path's signature (default
        // configurations are ECMP): treat every pinned communicator as
        // possibly-detoured. A repair edge replans it from its baseline
        // and the mark retires for free when it already matches the
        // healthy plan — the false positives cost nothing observable.
        let pinned: Vec<(CommunicatorId, Vec<RingOrder>)> = {
            let mut seen = BTreeSet::new();
            w.comms
                .iter()
                .filter(|((c, _), r)| !r.config.routes.is_empty() && seen.insert(*c))
                .map(|((c, _), r)| (*c, r.config.channel_rings.clone()))
                .collect()
        };
        for (comm, rings) in pinned {
            w.controller.live.detoured.insert(comm);
            w.controller.live.baselines.entry(comm).or_insert(rings);
        }
        w.controller.stats.reconciliations += 1;
    }

    /// Re-drive one checkpointed drain obligation after a restart,
    /// deduped by `(comm, epoch)`: when the drain visibly completed
    /// before the crash the obligation is retired **without sending
    /// anything** — control sends draw RNG jitter, so even a duplicate
    /// the ranks would drop must not leave the controller. This is what
    /// makes re-driving an already-converged drain observably a no-op.
    /// Otherwise the *same* checkpointed config is resent under the new
    /// incarnation: ranks that applied it drop the duplicate epoch, ranks
    /// that missed it enter the barrier.
    fn redrive(&mut self, w: &mut World, comm: CommunicatorId, ob: &DrainObligation) {
        let ranks: Vec<_> = w
            .comms
            .iter()
            .filter(|((c, _), _)| *c == comm)
            .map(|(_, r)| r)
            .collect();
        let Some(first) = ranks.first() else {
            // Destroyed while we were dead; nothing left to drain.
            w.controller.live.issued.remove(&comm);
            return;
        };
        let world_gpus = first.world_gpus.clone();
        if ranks.len() != world_gpus.len() {
            // Mid-teardown; the sweep retires the obligation when the
            // last rank goes.
            return;
        }
        drop(ranks);
        if Self::drain_complete(w, comm, ob.config.epoch) {
            w.controller.live.issued.remove(&comm);
            if ob.restorative {
                // The fail-back finished while we were dead; run the
                // retirement check its completion report would have
                // triggered (silent when already on the healthy plan).
                self.try_failback(w, comm);
            }
            return;
        }
        let incarnation = w.controller.incarnation;
        for &gpu in &world_gpus {
            w.send_control(
                gpu,
                crate::messages::ProxyMsg::Reconfigure {
                    comm,
                    incarnation,
                    config: ob.config.clone(),
                },
            );
        }
        w.controller.live.issued.insert(
            comm,
            DrainObligation {
                config: ob.config.clone(),
                issued_at: w.clock,
                restorative: ob.restorative,
            },
        );
        w.controller.live.detoured.insert(comm);
    }
}

impl Default for RecoveryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine<World> for RecoveryEngine {
    fn progress(&mut self, w: &mut World) -> Poll {
        // Inert without a fault plan: zero work on production runs.
        if w.fault_plan.is_none() {
            return Poll::Idle;
        }
        if w.controller.down {
            // The controller process is dead: the cursor freezes (events
            // pile into the bounded channel for the restart to drain or
            // resync over) and no recovery runs.
            return Poll::Idle;
        }
        let reconciled = if w.controller.pending_restart {
            self.reconcile(w);
            true
        } else {
            false
        };
        let outcome = match w.health.poll(&mut self.sub) {
            HealthDelivery::Events(events) if events.is_empty() => {
                if reconciled {
                    Poll::Progressed
                } else {
                    Poll::Idle
                }
            }
            HealthDelivery::Events(events) => {
                self.handle_batch(w, &events, false);
                if !reconciled && !events.iter().any(|(_, e)| e.wakes_subscribers()) {
                    // Purely-informational batch (e.g. our own
                    // `RecoveryIssued` read back under a polling
                    // scheduler): `handle_batch` was a no-op by
                    // construction, so report it honestly as idle.
                    Poll::Idle
                } else {
                    Poll::Progressed
                }
            }
            HealthDelivery::Resync(_) => {
                // Events were lost to channel overflow: conservatively
                // re-check every communicator against current link state.
                // Missed stall reports re-arrive from the proxies'
                // recurring liveness timers.
                self.handle_batch(w, &[], true);
                Poll::Progressed
            }
        };
        // Checkpoint *after* the batch so obligations issued this poll
        // are already durable — the freshest state a restart can restore.
        self.maybe_checkpoint(w);
        outcome
    }

    fn wake_when(&self, w: &World) -> Wake {
        if w.fault_plan.is_none() {
            // Inert until a plan arrives; `install_fault_plan` signals.
            Wake::on(vec![resources::fault_plan_installed()])
        } else if w.controller.down {
            // Parked until the restart signal.
            Wake::on(vec![resources::controller_status()])
        } else {
            // Driven by health-channel pushes; controller status is
            // watched too so a same-instant crash+restart pair still
            // triggers the reconciliation poll.
            Wake::on(vec![
                resources::health_channel(),
                resources::controller_status(),
            ])
        }
    }

    fn name(&self) -> String {
        "recovery".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use mccs_device::DeviceConfig;
    use mccs_ipc::IpcConfig;
    use mccs_topology::presets;
    use std::sync::Arc;

    fn world() -> World {
        World::new(
            Arc::new(presets::testbed()),
            DeviceConfig::default(),
            IpcConfig::default(),
            ServiceConfig::default(),
            7,
        )
    }

    #[test]
    fn detour_pins_healthy_routes() {
        let w = world();
        let world_gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
        let current = CollectiveConfig::default_for(&w.topo, &world_gpus);
        let (rings, routes) = DetourPolicy
            .plan(&w, CommunicatorId(0), &current, &world_gpus)
            .expect("healthy fabric must yield a plan");
        assert_eq!(rings.len(), current.channel_rings.len());
        // Every pinned route must be healthy (trivially, with no faults).
        for (&(_, src, dst), &r) in routes.iter() {
            assert!(w.net.route_healthy(src, dst, r));
        }
    }

    #[test]
    fn detour_avoids_dead_links() {
        let mut w = world();
        let world_gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
        let current = CollectiveConfig::default_for(&w.topo, &world_gpus);
        // Kill one inter-switch link; with two spines an alternate exists.
        let spine = w
            .topo
            .links()
            .iter()
            .find(|l| {
                use mccs_topology::graph::Endpoint;
                matches!(l.from, Endpoint::Switch(_)) && matches!(l.to, Endpoint::Switch(_))
            })
            .map(|l| l.id)
            .expect("testbed has switch-to-switch links");
        w.net.set_link_up(mccs_sim::Nanos::ZERO, spine, false);
        let (_, routes) = DetourPolicy
            .plan(&w, CommunicatorId(0), &current, &world_gpus)
            .expect("an alternate spine remains");
        for (&(_, src, dst), &r) in routes.iter() {
            let route = w.topo.pinned_route(src, dst, r);
            assert!(
                !route.links.contains(&spine),
                "detour pinned a route over the dead link"
            );
            assert!(w.net.route_healthy(src, dst, r));
        }
    }
}
