//! Time-window traffic schedules (the paper's TS policy, §4.3 Example #4).
//!
//! The controller profiles a prioritized application's idle cycles and
//! pushes a periodic window schedule to the transport engines; transports
//! then admit a gated application's traffic only while a window is open
//! (and pause its in-flight flows outside them).

use crate::error::ServiceError;
use mccs_sim::Nanos;

/// A periodic open/closed schedule. Offsets are relative to the period
/// start (`now % period`); `open` intervals must be sorted, non-empty and
/// non-overlapping within the period.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficWindows {
    /// Schedule period.
    pub period: Nanos,
    /// Open intervals as `(offset, length)` within the period.
    pub open: Vec<(Nanos, Nanos)>,
}

impl TrafficWindows {
    /// A schedule open during `[offset, offset+len)` of every `period`.
    pub fn single(period: Nanos, offset: Nanos, len: Nanos) -> Result<Self, ServiceError> {
        Self::new(period, vec![(offset, len)])
    }

    /// Construct from explicit intervals. Windows come from tenant /
    /// controller requests, so a malformed schedule is an
    /// `InvalidArgument` error rather than a service panic.
    pub fn new(period: Nanos, open: Vec<(Nanos, Nanos)>) -> Result<Self, ServiceError> {
        let w = TrafficWindows { period, open };
        w.validate()?;
        Ok(w)
    }

    /// Re-check the schedule invariants (fields are public, so an
    /// installed schedule is validated again at the management API).
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.period == Nanos::ZERO {
            return Err(ServiceError::invalid_argument(
                "traffic window period is zero",
            ));
        }
        if self.open.is_empty() {
            return Err(ServiceError::invalid_argument(
                "traffic window schedule never opens",
            ));
        }
        let mut prev_end = Nanos::ZERO;
        for &(off, len) in &self.open {
            if len == Nanos::ZERO {
                return Err(ServiceError::invalid_argument("empty traffic window"));
            }
            if off < prev_end {
                return Err(ServiceError::invalid_argument(
                    "traffic windows overlap or are unsorted",
                ));
            }
            prev_end = off + len;
        }
        if prev_end > self.period {
            return Err(ServiceError::invalid_argument(
                "traffic windows exceed period",
            ));
        }
        Ok(())
    }

    /// Whether traffic may flow at `now`.
    pub fn is_open(&self, now: Nanos) -> bool {
        let phase = Nanos::from_nanos(now.as_nanos() % self.period.as_nanos());
        self.open
            .iter()
            .any(|&(off, len)| phase >= off && phase < off + len)
    }

    /// The next instant at which the open/closed state actually changes
    /// (strictly after `now`) — transports schedule wake-ups at these
    /// boundaries. For a degenerate always-open schedule, returns
    /// `now + period` as a harmless heartbeat.
    pub fn next_boundary(&self, now: Nanos) -> Nanos {
        let state = self.is_open(now);
        let period = self.period.as_nanos();
        let phase = now.as_nanos() % period;
        let base = now.as_nanos() - phase;
        let mut boundaries: Vec<u64> = self
            .open
            .iter()
            .flat_map(|&(off, len)| [off.as_nanos(), off.as_nanos() + len.as_nanos()])
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        // A non-constant schedule flips within one period; scan two to be
        // safe around the seam.
        for k in 0..2u64 {
            for &b in &boundaries {
                let t = base + k * period + b;
                if t > now.as_nanos() && self.is_open(Nanos::from_nanos(t)) != state {
                    return Nanos::from_nanos(t);
                }
            }
        }
        now + self.period
    }

    /// Fraction of time the schedule is open.
    pub fn duty_cycle(&self) -> f64 {
        let open: u64 = self.open.iter().map(|&(_, l)| l.as_nanos()).sum();
        open as f64 / self.period.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn open_closed_phases() {
        let w = TrafficWindows::single(ms(10), ms(2), ms(3)).expect("valid");
        assert!(!w.is_open(ms(0)));
        assert!(w.is_open(ms(2)));
        assert!(w.is_open(ms(4)));
        assert!(!w.is_open(ms(5)));
        // periodic
        assert!(w.is_open(ms(12)));
        assert!(!w.is_open(ms(16)));
    }

    #[test]
    fn boundaries_advance_strictly() {
        let w = TrafficWindows::single(ms(10), ms(2), ms(3)).expect("valid");
        assert_eq!(w.next_boundary(ms(0)), ms(2));
        assert_eq!(w.next_boundary(ms(2)), ms(5));
        assert_eq!(w.next_boundary(ms(5)), ms(12));
        assert_eq!(w.next_boundary(ms(9)), ms(12));
        // always strictly in the future
        for t in 0..50 {
            let now = Nanos::from_millis(t);
            assert!(w.next_boundary(now) > now);
        }
    }

    #[test]
    fn multiple_windows() {
        let w = TrafficWindows::new(ms(10), vec![(ms(0), ms(2)), (ms(5), ms(1))]).expect("valid");
        assert!(w.is_open(ms(0)));
        assert!(!w.is_open(ms(3)));
        assert!(w.is_open(ms(5)));
        assert!(!w.is_open(ms(6)));
        assert!((w.duty_cycle() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_overlong_window() {
        let e = TrafficWindows::single(ms(10), ms(8), ms(5)).expect_err("overlong");
        assert_eq!(e.code, mccs_ipc::ErrorCode::InvalidArgument);
        assert!(e.message.contains("exceed period"), "{}", e.message);
    }

    #[test]
    fn rejects_overlapping_windows() {
        let e = TrafficWindows::new(ms(10), vec![(ms(0), ms(5)), (ms(3), ms(2))])
            .expect_err("overlapping");
        assert_eq!(e.code, mccs_ipc::ErrorCode::InvalidArgument);
        assert!(e.message.contains("overlap"), "{}", e.message);
    }

    #[test]
    fn rejects_degenerate_schedules() {
        assert!(TrafficWindows::new(Nanos::ZERO, vec![(ms(0), ms(1))]).is_err());
        assert!(TrafficWindows::new(ms(10), vec![]).is_err());
        assert!(TrafficWindows::new(ms(10), vec![(ms(2), Nanos::ZERO)]).is_err());
    }

    #[test]
    fn state_changes_match_is_open_transitions() {
        let w = TrafficWindows::new(ms(20), vec![(ms(1), ms(4)), (ms(10), ms(2))]).expect("valid");
        // walk boundaries for 3 periods; state must flip at each boundary
        let mut t = Nanos::ZERO;
        for _ in 0..12 {
            let state = w.is_open(t);
            let b = w.next_boundary(t);
            // state holds in (t, b)
            let mid = Nanos::from_nanos((t.as_nanos() + b.as_nanos()) / 2);
            assert_eq!(w.is_open(mid), state, "state changed before boundary");
            assert_ne!(w.is_open(b), state, "no flip at boundary {b}");
            t = b;
        }
    }
}
