//! The transport engine — one per NIC.
//!
//! Turns inter-host edge tasks into network flows, applying the
//! provider's route choice (the explicit pinning behind FFA/PFA) and the
//! time-window traffic schedules behind TS: a gated application's sends
//! are admitted only while its window is open, and its in-flight flows are
//! paused outside windows.

use crate::messages::TransportMsg;
use crate::qos::TrafficWindows;
use crate::world::World;
use mccs_ipc::AppId;
use mccs_netsim::{FlowId, FlowSpec};
use mccs_sim::{Engine, Poll};
use mccs_topology::NicId;
use std::collections::{BTreeMap, HashMap, VecDeque};

#[derive(Debug)]
struct ActiveFlow {
    app: AppId,
    token: u64,
    paused: bool,
}

#[derive(Debug)]
struct PendingSend {
    msg: TransportMsg,
}

/// The per-NIC transport engine.
pub struct TransportEngine {
    nic: NicId,
    active: HashMap<FlowId, ActiveFlow>,
    windows: BTreeMap<AppId, TrafficWindows>,
    pending: VecDeque<PendingSend>,
    /// Last wake-up boundary scheduled, to avoid duplicate events.
    scheduled_wake: Option<mccs_sim::Nanos>,
}

impl TransportEngine {
    /// The transport for `nic`.
    pub fn new(nic: NicId) -> Self {
        TransportEngine {
            nic,
            active: HashMap::new(),
            windows: BTreeMap::new(),
            pending: VecDeque::new(),
            scheduled_wake: None,
        }
    }

    /// Flows currently owned by this transport.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    fn app_open(&self, app: AppId, now: mccs_sim::Nanos) -> bool {
        self.windows.get(&app).is_none_or(|w| w.is_open(now))
    }

    fn schedule_boundary_wake(&mut self, w: &mut World, app: AppId) {
        if let Some(win) = self.windows.get(&app) {
            let b = win.next_boundary(w.clock);
            if self.scheduled_wake != Some(b) {
                w.schedule_wake(b);
                self.scheduled_wake = Some(b);
            }
        }
    }

    fn start_send(&mut self, w: &mut World, msg: &TransportMsg) {
        let TransportMsg::Send {
            app,
            token,
            src_nic,
            dst_nic,
            bytes,
            route,
            ..
        } = *msg
        else {
            unreachable!("start_send called with a non-send message");
        };
        debug_assert_eq!(src_nic, self.nic, "send routed to the wrong transport");
        let spec = FlowSpec {
            src: src_nic,
            dst: dst_nic,
            bytes: Some(bytes),
            routing: route,
            rate_cap: None,
            tag: token,
            guaranteed: false,
            tenant: app.0,
        };
        let now = w.clock;
        let id = w.net.start_flow(now, spec);
        w.flow_owner_nic
            .insert(id, crate::world::FlowOwner::Transport(self.nic.index()));
        self.active.insert(
            id,
            ActiveFlow {
                app,
                token,
                paused: false,
            },
        );
    }

    fn handle_msg(&mut self, w: &mut World, msg: TransportMsg) {
        match &msg {
            TransportMsg::Send { app, .. } => {
                if self.app_open(*app, w.clock) {
                    self.start_send(w, &msg);
                } else {
                    let app = *app;
                    self.pending.push_back(PendingSend { msg });
                    self.schedule_boundary_wake(w, app);
                }
            }
            TransportMsg::SetWindows { app, windows } => {
                let app = *app;
                match windows {
                    Some(win) => {
                        self.windows.insert(app, win.clone());
                    }
                    None => {
                        self.windows.remove(&app);
                    }
                }
                self.scheduled_wake = None;
                self.schedule_boundary_wake(w, app);
            }
        }
    }

    /// Apply window state to in-flight flows and pending sends.
    fn enforce_windows(&mut self, w: &mut World) -> bool {
        let now = w.clock;
        let mut progressed = false;
        // Pause / resume active flows of gated apps.
        let ids: Vec<FlowId> = self.active.keys().copied().collect();
        for id in ids {
            let f = self.active.get_mut(&id).expect("listed");
            let open = self.windows.get(&f.app).is_none_or(|win| win.is_open(now));
            if f.paused == open {
                // state mismatch: paused && open -> resume; !paused && !open -> pause
                w.net.set_paused(now, id, !open);
                f.paused = !open;
                progressed = true;
            }
        }
        // Admit pending sends whose window opened.
        let mut still_pending = VecDeque::new();
        while let Some(p) = self.pending.pop_front() {
            let TransportMsg::Send { app, .. } = &p.msg else {
                unreachable!("only sends are pended")
            };
            if self.app_open(*app, now) {
                self.start_send(w, &p.msg);
                progressed = true;
            } else {
                let app = *app;
                still_pending.push_back(p);
                self.schedule_boundary_wake(w, app);
            }
        }
        self.pending = still_pending;
        // Keep a wake-up armed while anything is gated.
        if !self.windows.is_empty() && (!self.active.is_empty() || !self.pending.is_empty()) {
            let apps: Vec<AppId> = self.windows.keys().copied().collect();
            for app in apps {
                self.schedule_boundary_wake(w, app);
            }
        }
        progressed
    }
}

impl Engine<World> for TransportEngine {
    fn progress(&mut self, w: &mut World) -> Poll {
        let mut progressed = false;
        // Flow completions routed to us by the world.
        let completions = std::mem::take(&mut w.transport_flow_events[self.nic.index()]);
        for c in completions {
            let f = self
                .active
                .remove(&c.id)
                .expect("completion for a flow this transport never started");
            w.complete_token(f.token, c.finished_at);
            progressed = true;
        }
        // New commands.
        loop {
            let now = w.clock;
            let Some(msg) = w.transport_inbox[self.nic.index()].pop(now) else {
                break;
            };
            self.handle_msg(w, msg);
            progressed = true;
        }
        // QoS window enforcement.
        progressed |= self.enforce_windows(w);
        if progressed {
            Poll::Progressed
        } else {
            Poll::Idle
        }
    }

    fn name(&self) -> String {
        format!("transport({})", self.nic)
    }
}
