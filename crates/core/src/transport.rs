//! The transport engine — one per NIC.
//!
//! Turns inter-host edge tasks into network flows, applying the
//! provider's route choice (the explicit pinning behind FFA/PFA) and the
//! time-window traffic schedules behind TS: a gated application's sends
//! are admitted only while its window is open, and its in-flight flows are
//! paused outside windows.
//!
//! With a fault plan installed the transport also watches its flows for
//! stalls (rate pinned at zero past
//! [`ServiceConfig::flow_timeout`](crate::config::ServiceConfig)) and for
//! fault-injected kills, retrying each with exponential backoff on an
//! alternate route, and cleanly failing the owning collective once
//! [`ServiceConfig::flow_max_retries`](crate::config::ServiceConfig) is
//! exhausted. Route selection is degradation-aware: each equal-cost route
//! is weighted by its bottleneck effective capacity and picked
//! proportionally under the configured
//! [`DegradationPolicy`](crate::config::DegradationPolicy), so a
//! half-capacity link keeps half its share instead of being abandoned,
//! and the same sweep that detects stalls rebalances in-flight flows off
//! browned-out routes (with hysteresis, keeping their progress). Without
//! a plan none of this machinery runs: no timers, no per-flow checks,
//! byte-identical traces.

use crate::flat::FlatMap;
use crate::health::FailureEvent;
use crate::messages::TransportMsg;
use crate::qos::TrafficWindows;
use crate::world::{resources, World};
use mccs_ipc::{AppId, CommunicatorId};
use mccs_netsim::{FlowId, FlowSpec, RouteChoice};
use mccs_sim::{Bandwidth, Bytes, Engine, EnginePlan, Footprint, Nanos, Poll, Wake, WakeSet};
use mccs_topology::{NicId, RouteId};
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug)]
struct ActiveFlow {
    app: AppId,
    token: u64,
    paused: bool,
    comm: CommunicatorId,
    seq: u64,
    dst_nic: NicId,
    bytes: Bytes,
    /// Completed start attempts (0 = original send, never retried).
    attempts: u32,
    /// When this flow was first observed making no progress (plan-gated).
    stalled_since: Option<Nanos>,
}

#[derive(Debug)]
struct PendingSend {
    msg: TransportMsg,
}

/// A flow awaiting its backoff-delayed restart.
#[derive(Debug)]
struct RetryEntry {
    app: AppId,
    token: u64,
    comm: CommunicatorId,
    seq: u64,
    dst_nic: NicId,
    bytes: Bytes,
    /// The attempt number this restart will be (1-based).
    attempts: u32,
    /// The route the previous attempt died on. Route weights only
    /// reflect observed link state, so a nominally-fine route that just
    /// timed out would otherwise be eligible again; its weight is zeroed
    /// in the selection whenever an alternative has capacity left.
    exclude: Option<RouteId>,
}

/// The transport's plan-phase output: flow specs pre-assembled from the
/// visible inbox prefix. Spec assembly is a pure function of the message
/// fields and this NIC's identity — independent of window state, the
/// active table, and everything else that can move between plan and
/// commit — so a planned spec is usable whenever its send actually
/// starts, and harmlessly dropped otherwise.
struct TransportPlan {
    /// `(token, spec)` per visible `Send`, in inbox order.
    specs: Vec<(u64, FlowSpec)>,
}

/// The per-NIC transport engine.
pub struct TransportEngine {
    nic: NicId,
    /// Ordered so sweeps visit flows in `FlowId` order — iteration order
    /// is observable through retry/rebalance event ordering, and digests
    /// must match across processes. Flat-sorted: per-NIC tables are small
    /// but there are O(NICs) of them, swept every poll.
    active: FlatMap<FlowId, ActiveFlow>,
    windows: BTreeMap<AppId, TrafficWindows>,
    pending: VecDeque<PendingSend>,
    /// Last wake-up boundary scheduled, to avoid duplicate events.
    scheduled_wake: Option<mccs_sim::Nanos>,
    /// Backoff-delayed restarts, as `(due, entry)`.
    retries: Vec<(Nanos, RetryEntry)>,
    /// Next stall-sweep instant already armed (plan-gated machinery).
    next_stall_check: Option<Nanos>,
    /// Flow specs pre-assembled by the current commit's plan, consumed by
    /// `start_flow` by token match (cleared after each `progress_planned`).
    planned_specs: Vec<(u64, FlowSpec)>,
}

impl TransportEngine {
    /// The transport for `nic`.
    pub fn new(nic: NicId) -> Self {
        TransportEngine {
            nic,
            active: FlatMap::new(),
            windows: BTreeMap::new(),
            pending: VecDeque::new(),
            scheduled_wake: None,
            retries: Vec::new(),
            next_stall_check: None,
            planned_specs: Vec::new(),
        }
    }

    /// Flows currently owned by this transport.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    fn app_open(&self, app: AppId, now: mccs_sim::Nanos) -> bool {
        self.windows.get(&app).is_none_or(|w| w.is_open(now))
    }

    fn schedule_boundary_wake(&mut self, w: &mut World, app: AppId) {
        if let Some(win) = self.windows.get(&app) {
            let b = win.next_boundary(w.clock);
            if self.scheduled_wake != Some(b) {
                w.schedule_wake(b);
                self.scheduled_wake = Some(b);
            }
        }
    }

    fn start_send(&mut self, w: &mut World, msg: &TransportMsg) {
        let TransportMsg::Send {
            app,
            comm,
            seq,
            token,
            src_nic,
            dst_nic,
            bytes,
            route,
        } = *msg
        else {
            unreachable!("start_send called with a non-send message");
        };
        debug_assert_eq!(src_nic, self.nic, "send routed to the wrong transport");
        self.start_flow(
            w,
            ActiveFlow {
                app,
                token,
                paused: false,
                comm,
                seq,
                dst_nic,
                bytes,
                attempts: 0,
                stalled_since: None,
            },
            route,
        );
    }

    fn start_flow(&mut self, w: &mut World, flow: ActiveFlow, route: RouteChoice) {
        // Consume a plan-phase spec when one was assembled for this token;
        // the routing is overwritten with the caller's choice so retries
        // (which re-pin) can never start on a stale planned route.
        let spec = match self
            .planned_specs
            .iter()
            .position(|(t, _)| *t == flow.token)
        {
            Some(i) => {
                let mut spec = self.planned_specs.swap_remove(i).1;
                spec.routing = route;
                spec
            }
            None => FlowSpec {
                src: self.nic,
                dst: flow.dst_nic,
                bytes: Some(flow.bytes),
                routing: route,
                rate_cap: None,
                tag: flow.token,
                guaranteed: false,
                tenant: flow.app.0,
            },
        };
        let now = w.clock;
        let id = w.net.start_flow(now, spec);
        w.flow_owner_nic
            .insert(id, crate::world::FlowOwner::Transport(self.nic.index()));
        self.active.insert(id, flow);
    }

    /// Queue a restart for a dead flow, or fail its collective when the
    /// retry budget is spent. `attempts` is the count of starts already
    /// consumed.
    fn schedule_retry(&mut self, w: &mut World, entry: RetryEntry) {
        if entry.attempts > w.svc.flow_max_retries {
            let (comm, seq) = w.fail_token(entry.token);
            w.health.counters.flow_failures += 1;
            w.health.record(FailureEvent::FlowExhausted {
                comm,
                seq,
                at: w.clock,
            });
            return;
        }
        // First retry is immediate (the kill/stall already cost a
        // detection delay); later ones back off exponentially.
        let due = if entry.attempts <= 1 {
            w.clock
        } else {
            let backoff = w
                .svc
                .flow_timeout
                .mul_f64(f64::from(1u32 << (entry.attempts - 2).min(16)));
            w.clock + backoff
        };
        if due > w.clock {
            w.schedule_wake(due);
        }
        // A retry due *now* needs no wake: this poll round keeps polling
        // until every engine idles, and `run_due_retries` picks it up on
        // the next pass. A same-instant Wake would linger in the event
        // queue (everything due has already been drained) as a stale head.
        self.retries.push((due, entry));
    }

    /// Restart retries whose backoff elapsed, re-pinning each by weighted
    /// selection over the surviving routes' bottleneck capacities.
    fn run_due_retries(&mut self, w: &mut World) -> bool {
        let now = w.clock;
        let mut progressed = false;
        let due: Vec<RetryEntry> = {
            let mut rest = Vec::new();
            let mut due = Vec::new();
            for (t, e) in self.retries.drain(..) {
                if t <= now {
                    due.push(e);
                } else {
                    rest.push((t, e));
                }
            }
            self.retries = rest;
            due
        };
        for entry in due {
            let policy = w.svc.degradation;
            let mut weights = route_weights(w, self.nic, entry.dst_nic);
            // Never re-pin straight back onto the route that just failed
            // this flow — unless it is the only one left with capacity.
            if let Some(bad) = entry.exclude {
                let others = weights
                    .iter()
                    .enumerate()
                    .any(|(i, &x)| i != bad.0 as usize && x > 0.0);
                if others {
                    weights[bad.0 as usize] = 0.0;
                }
            }
            let key = selection_key(entry.token, entry.attempts);
            let Some(idx) = policy.select(&weights, key) else {
                // Nowhere to go right now: burn an attempt and try again
                // later (the cap guarantees termination).
                self.schedule_retry(
                    w,
                    RetryEntry {
                        attempts: entry.attempts + 1,
                        ..entry
                    },
                );
                continue;
            };
            let route = RouteId(idx as u32);
            w.health.counters.flow_retries += 1;
            if weights.iter().any(|&x| policy.usable_weight(x) <= 0.0) {
                // We actively detoured around a dead, excluded, or
                // below-threshold route.
                w.health.counters.flow_repins += 1;
            }
            w.health.record(FailureEvent::FlowRetried {
                comm: entry.comm,
                seq: entry.seq,
                attempt: entry.attempts,
                at: now,
            });
            self.start_flow(
                w,
                ActiveFlow {
                    app: entry.app,
                    token: entry.token,
                    paused: false,
                    comm: entry.comm,
                    seq: entry.seq,
                    dst_nic: entry.dst_nic,
                    bytes: entry.bytes,
                    attempts: entry.attempts,
                    stalled_since: None,
                },
                RouteChoice::Pinned(route),
            );
            progressed = true;
        }
        progressed
    }

    /// Detect flows pinned at zero rate (a dead link on their path) and
    /// cancel-and-retry those stalled past the timeout; rebalance moving
    /// flows off browned-out routes per the degradation policy.
    /// Plan-gated.
    fn sweep_stalls(&mut self, w: &mut World) -> bool {
        let now = w.clock;
        if self.next_stall_check.is_some_and(|t| now < t) {
            // Keep the armed wake; nothing to do yet.
            return false;
        }
        let mut progressed = false;
        let ids: Vec<FlowId> = self.active.keys().copied().collect();
        for id in ids {
            let f = self.active.get_mut(&id).expect("listed");
            if f.paused {
                f.stalled_since = None;
                continue;
            }
            if w.net.flow_rate(id) > Bandwidth::ZERO {
                f.stalled_since = None;
                let (app, comm, seq) = (f.app, f.comm, f.seq);
                progressed |= maybe_rebalance(w, self.nic, id, app, comm, seq);
                continue;
            }
            match f.stalled_since {
                None => f.stalled_since = Some(now),
                Some(since) if now - since >= w.svc.flow_timeout => {
                    let f = self.active.remove(&id).expect("listed");
                    // Remember which route starved the flow before we
                    // tear it down, so the retry avoids it.
                    let failing_route = w.net.flow_route(id).map(|r| r.id);
                    w.net.cancel_flow(now, id);
                    w.flow_owner_nic.remove(id);
                    self.schedule_retry(
                        w,
                        RetryEntry {
                            app: f.app,
                            token: f.token,
                            comm: f.comm,
                            seq: f.seq,
                            dst_nic: f.dst_nic,
                            bytes: f.bytes,
                            attempts: f.attempts + 1,
                            exclude: failing_route,
                        },
                    );
                    progressed = true;
                }
                Some(_) => {}
            }
        }
        if !self.active.is_empty() || !self.retries.is_empty() {
            let next = now + w.svc.flow_timeout;
            w.schedule_wake(next);
            self.next_stall_check = Some(next);
        } else {
            self.next_stall_check = None;
        }
        progressed
    }

    fn handle_msg(&mut self, w: &mut World, msg: TransportMsg) {
        match &msg {
            TransportMsg::Send { app, .. } => {
                if self.app_open(*app, w.clock) {
                    self.start_send(w, &msg);
                } else {
                    let app = *app;
                    self.pending.push_back(PendingSend { msg });
                    self.schedule_boundary_wake(w, app);
                }
            }
            TransportMsg::SetWindows { app, windows } => {
                let app = *app;
                match windows {
                    Some(win) => {
                        self.windows.insert(app, win.clone());
                    }
                    None => {
                        self.windows.remove(&app);
                    }
                }
                self.scheduled_wake = None;
                self.schedule_boundary_wake(w, app);
            }
        }
    }

    /// Apply window state to in-flight flows and pending sends.
    fn enforce_windows(&mut self, w: &mut World) -> bool {
        let now = w.clock;
        let mut progressed = false;
        // Pause / resume active flows of gated apps.
        let ids: Vec<FlowId> = self.active.keys().copied().collect();
        for id in ids {
            let f = self.active.get_mut(&id).expect("listed");
            let open = self.windows.get(&f.app).is_none_or(|win| win.is_open(now));
            if f.paused == open {
                // state mismatch: paused && open -> resume; !paused && !open -> pause
                w.net.set_paused(now, id, !open);
                f.paused = !open;
                progressed = true;
            }
        }
        // Admit pending sends whose window opened.
        let mut still_pending = VecDeque::new();
        while let Some(p) = self.pending.pop_front() {
            let TransportMsg::Send { app, .. } = &p.msg else {
                unreachable!("only sends are pended")
            };
            if self.app_open(*app, now) {
                self.start_send(w, &p.msg);
                progressed = true;
            } else {
                let app = *app;
                still_pending.push_back(p);
                self.schedule_boundary_wake(w, app);
            }
        }
        self.pending = still_pending;
        // Keep a wake-up armed while anything is gated.
        if !self.windows.is_empty() && (!self.active.is_empty() || !self.pending.is_empty()) {
            let apps: Vec<AppId> = self.windows.keys().copied().collect();
            for app in apps {
                self.schedule_boundary_wake(w, app);
            }
        }
        progressed
    }
}

/// Bottleneck weight of every equal-cost route from `src` to `dst`,
/// indexed by `RouteId`.
fn route_weights(w: &World, src: NicId, dst: NicId) -> Vec<f64> {
    let diversity = w.topo.path_diversity(src, dst);
    (0..diversity)
        .map(|i| w.net.route_weight(src, dst, RouteId(i as u32)))
        .collect()
}

/// Stable per-flow selection key: FNV-1a over the flow token and attempt
/// number, so repeated sweeps agree on where a flow belongs while
/// distinct flows spread proportionally across the weight line.
fn selection_key(token: u64, attempt: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in token
        .to_le_bytes()
        .into_iter()
        .chain(u64::from(attempt).to_le_bytes())
    {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Move one in-flight flow toward the route with the best estimated
/// max-min share when the degradation policy says so, keeping its
/// progress (a repin, not a retry). Estimated shares fold together the
/// bottleneck effective capacity, the flows already on each path, and
/// the cross-tenant sharing penalty — so under a brownout, flows split
/// between the degraded and healthy spines proportionally to what each
/// can actually deliver instead of piling onto the survivor. Returns
/// whether the flow moved.
fn maybe_rebalance(
    w: &mut World,
    nic: NicId,
    id: FlowId,
    app: AppId,
    comm: CommunicatorId,
    seq: u64,
) -> bool {
    let Some(route) = w.net.flow_route(id) else {
        return false;
    };
    let current = route.id.0 as usize;
    let dst = route.dst;
    let policy = w.svc.degradation;
    let weights = route_weights(w, nic, dst);
    if weights.iter().all(|&x| x >= 1.0) {
        // Fully healthy fabric between this pair (the common case):
        // nothing to rebalance around.
        return false;
    }
    let line = w.topo.nic(nic).bandwidth.as_bps();
    let score = |i: usize| -> f64 {
        w.net
            .estimate_route_share(nic, dst, RouteId(i as u32), app.0, Some(id))
            .as_bps()
            / line
    };
    // Best usable route by estimated share; ties keep the lowest id.
    let mut best: Option<(usize, f64)> = None;
    for (i, &wt) in weights.iter().enumerate() {
        if policy.usable_weight(wt) <= 0.0 {
            continue;
        }
        let s = score(i);
        if best.is_none_or(|(_, bs)| s > bs) {
            best = Some((i, s));
        }
    }
    let Some((idx, best_score)) = best else {
        return false;
    };
    if idx == current {
        return false;
    }
    // A flow on a usable route only moves when the alternative clears the
    // hysteresis band; one on an unusable route moves unconditionally.
    if policy.usable_weight(weights[current]) > 0.0
        && best_score - score(current) <= policy.rebalance_hysteresis
    {
        return false;
    }
    w.net.repin_flow(w.clock, id, RouteId(idx as u32));
    w.health.counters.flow_rebalances += 1;
    w.health.record(FailureEvent::FlowRebalanced {
        comm,
        seq,
        at: w.clock,
    });
    true
}

impl Engine<World> for TransportEngine {
    fn progress(&mut self, w: &mut World) -> Poll {
        // A crashed host freezes its transports (plan-gated; no check at
        // all on the fault-free path).
        if w.fault_plan.is_some() && w.health.is_host_down(w.topo.nics()[self.nic.index()].host) {
            return Poll::Idle;
        }
        let mut progressed = false;
        // Flow completions routed to us by the world.
        let completions = std::mem::take(&mut w.transport_flow_events[self.nic.index()]);
        for c in completions {
            let f = self
                .active
                .remove(&c.id)
                .expect("completion for a flow this transport never started");
            w.complete_token(f.token, c.finished_at);
            progressed = true;
        }
        // Fault-killed flows routed to us by the world: retry immediately.
        // (Only ever populated by an installed fault plan.)
        let failures = std::mem::take(&mut w.transport_flow_failures[self.nic.index()]);
        for (id, token) in failures {
            let f = self
                .active
                .remove(&id)
                .expect("kill notice for a flow this transport never started");
            debug_assert_eq!(f.token, token, "kill notice token mismatch");
            // The net may still know the killed flow's route; if so, steer
            // the retry away from it.
            let failing_route = w.net.flow_route(id).map(|r| r.id);
            self.schedule_retry(
                w,
                RetryEntry {
                    app: f.app,
                    token: f.token,
                    comm: f.comm,
                    seq: f.seq,
                    dst_nic: f.dst_nic,
                    bytes: f.bytes,
                    attempts: f.attempts + 1,
                    exclude: failing_route,
                },
            );
            progressed = true;
        }
        // New commands.
        loop {
            let now = w.clock;
            let Some(msg) = w.transport_inbox[self.nic.index()].pop(now) else {
                break;
            };
            self.handle_msg(w, msg);
            progressed = true;
        }
        // Failure machinery (plan-gated: inert on production runs).
        if w.fault_plan.is_some() {
            progressed |= self.run_due_retries(w);
            progressed |= self.sweep_stalls(w);
        }
        // QoS window enforcement.
        progressed |= self.enforce_windows(w);
        if progressed {
            Poll::Progressed
        } else {
            Poll::Idle
        }
    }

    /// Read phase (fault-free path only): decode the visible inbox prefix
    /// and pre-assemble the flow spec for every `Send` in it. With a
    /// fault plan installed the transport's step interleaves timer-driven
    /// machinery whose inputs move between plan and commit, so it stays
    /// on the in-place path there.
    fn plan(&self, w: &World) -> Option<EnginePlan> {
        if w.fault_plan.is_some() {
            return None;
        }
        let mut specs: Vec<(u64, FlowSpec)> = Vec::new();
        for msg in w.transport_inbox[self.nic.index()].visible(w.clock) {
            let TransportMsg::Send {
                app,
                token,
                src_nic,
                dst_nic,
                bytes,
                route,
                ..
            } = *msg
            else {
                continue;
            };
            debug_assert_eq!(src_nic, self.nic, "send routed to the wrong transport");
            specs.push((
                token,
                FlowSpec {
                    src: self.nic,
                    dst: dst_nic,
                    bytes: Some(bytes),
                    routing: route,
                    rate_cap: None,
                    tag: token,
                    guaranteed: false,
                    tenant: app.0,
                },
            ));
        }
        if specs.is_empty() {
            None
        } else {
            Some(EnginePlan::new(TransportPlan { specs }))
        }
    }

    /// Commit phase: stash the pre-assembled specs for `start_flow` to
    /// consume by token, run the normal in-place step, then drop whatever
    /// was not consumed (a send pended behind a closed QoS window starts
    /// on a later poll and re-assembles its spec in place).
    fn progress_planned(&mut self, w: &mut World, plan: EnginePlan) -> Poll {
        if let Some(p) = plan.downcast::<TransportPlan>() {
            self.planned_specs = p.specs;
        }
        let poll = self.progress(w);
        self.planned_specs.clear();
        poll
    }

    fn wake_when(&self, w: &World) -> Wake {
        let plan = w.fault_plan.is_some();
        // Frozen on a crashed host: only a health event (HostUp) matters.
        if plan && w.health.is_host_down(w.topo.nics()[self.nic.index()].host) {
            return Wake::on(vec![resources::health_channel()]);
        }
        let mut ws = WakeSet::new();
        let idx = self.nic.index();
        // Commands from proxies, and flow completions / kill notices
        // routed to this NIC by the world.
        ws.watch(resources::transport_inbox(idx as u32));
        ws.watch(resources::transport_flow(idx as u32));
        ws.deadline_opt(w.transport_inbox[idx].next_visible());
        if !plan {
            // Installing a plan arms the retry/stall timers below.
            ws.watch(resources::fault_plan_installed());
        } else {
            // Backoff-delayed restarts and the recurring stall sweep.
            ws.deadline_opt(self.retries.iter().map(|(t, _)| *t).min());
            ws.deadline_opt(self.next_stall_check);
        }
        // QoS window boundaries, mirrored from `enforce_windows`' arming
        // condition: boundaries only matter while something is gated.
        if !self.windows.is_empty() && (!self.active.is_empty() || !self.pending.is_empty()) {
            for win in self.windows.values() {
                ws.deadline(win.next_boundary(w.clock));
            }
        }
        ws.build()
    }

    /// A transport touches its own inbox and flow-notice resources, the
    /// health channel, the plan-install latch, and — through token
    /// completions and failure reports — the progress resources of the
    /// communicators whose flows it currently carries. The netsim itself
    /// (flow starts/kills) is world-global state the executor's
    /// slot-order merge serializes, so it does not appear here.
    fn footprint(&self, _w: &World) -> Footprint {
        let idx = self.nic.index() as u32;
        let mut rs = vec![
            resources::transport_inbox(idx),
            resources::transport_flow(idx),
            resources::fault_plan_installed(),
            resources::health_channel(),
        ];
        let mut comms: Vec<CommunicatorId> = self.active.values().map(|f| f.comm).collect();
        comms.sort_unstable();
        comms.dedup();
        for comm in comms {
            rs.push(resources::progress(comm));
        }
        Footprint::Resources(rs)
    }

    fn name(&self) -> String {
        format!("transport({})", self.nic)
    }
}
