//! Interactive chaos driving — faults issued *from the test body*.
//!
//! A [`ChaosDriver`] wraps a [`Cluster`] and interleaves stepping with
//! live fault control: run to an instant, look at the world, decide to
//! partition a rack or crash a host *now*, keep running. Every fault
//! goes through the same [`FaultPlan`] machinery a pre-scripted run
//! uses — the driver appends events to the installed plan at the current
//! virtual clock and fires them before any engine polls at that instant.
//!
//! # Equivalence with pre-scripted plans
//!
//! The driver's stepping primitives all stop at the **brink** of an
//! instant: every event strictly before `t` has been processed, the
//! clock sits exactly on `t`, and no engine has polled at `t` yet
//! ([`Cluster::run_until_brink`]). Injecting a fault there and resuming
//! reproduces, call for call, what a scripted plan entry at `t`
//! produces: substrates advance to `t`, the fault applies, and the next
//! poll at `t` observes it. RNG streams are untouched by injection
//! (control-jitter draws happen per message send, never per fault), so a
//! driver issuing the same events at the same instants yields a trace
//! digest **byte-identical** to the equivalent pre-scripted plan — a
//! property CI enforces.
//!
//! # Quickstart
//!
//! ```ignore
//! let mut cluster = build_two_tenant_cluster();
//! let mut driver = ChaosDriver::new(&mut cluster);
//! driver.run_until(Nanos::from_millis(10)); // brink of 10ms
//! driver.link_down(hot_spine);              // fires at 10ms
//! driver.run_for(Nanos::from_millis(5));
//! driver.repair_all();                      // bring the fabric back
//! let end = driver.run_to_quiescence(Nanos::from_secs(20)).unwrap();
//! ```

use crate::cluster::{Cluster, ClusterHang};
use crate::health::{FailureEvent, HealthDelivery, HealthSubscription};
use mccs_netsim::FaultEvent;
use mccs_sim::Nanos;
use mccs_topology::{graph, HostId, LinkId, RackId, SwitchId};
use std::collections::VecDeque;
use std::sync::Arc;

/// A test-body handle over a [`Cluster`] that interleaves stepping with
/// live fault control. See the module docs for the equivalence argument.
pub struct ChaosDriver<'c> {
    cluster: &'c mut Cluster,
    /// Private health-channel cursor for [`run_until_event`]
    /// (independent of the recovery engine's and any monitor's).
    sub: HealthSubscription,
    /// Events delivered but not yet matched by a predicate.
    pending: VecDeque<FailureEvent>,
}

impl<'c> ChaosDriver<'c> {
    /// Wrap `cluster`. Installs an empty [`FaultPlan`] if none is
    /// present so the fault machinery (liveness timers, retry timers,
    /// the recovery engine) is active from the start — exactly as it
    /// would be under a pre-scripted plan installed before the run.
    pub fn new(cluster: &'c mut Cluster) -> Self {
        if cluster.world.fault_plan.is_none() {
            cluster.install_fault_plan(mccs_netsim::FaultPlan::new());
        }
        ChaosDriver {
            cluster,
            sub: HealthSubscription::from_start(),
            pending: VecDeque::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.cluster.world.clock
    }

    /// Next scheduled instant (engines may schedule more once polled).
    pub fn next_time(&self) -> Option<Nanos> {
        self.cluster.world.next_time()
    }

    /// The wrapped cluster (world inspection between steps).
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// The wrapped cluster, mutably (attach apps, management calls).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        self.cluster
    }

    /// Digest of everything observable so far
    /// ([`Cluster::observable_digest`]).
    pub fn digest(&self) -> u64 {
        self.cluster.observable_digest()
    }

    // ---- stepping ------------------------------------------------------

    /// One event step ([`Cluster::step`]): poll at the current instant,
    /// advance to the next scheduled one. Returns the new clock, or
    /// `None` at quiescence. Each return is a decision point: faults
    /// injected now fire before any engine polls at this instant.
    pub fn step(&mut self) -> Option<Nanos> {
        self.cluster.step()
    }

    /// Run to the brink of absolute time `t` (see
    /// [`Cluster::run_until_brink`]).
    pub fn run_until(&mut self, t: Nanos) {
        self.cluster.run_until_brink(t);
    }

    /// Run to the brink of `now + d`.
    pub fn run_for(&mut self, d: Nanos) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// Run until a health event matching `pred` is recorded, or the
    /// clock would pass `deadline`. Returns the matching event, with the
    /// world stopped at the instant it was delivered (a decision point).
    /// Events scanned and not matched are consumed; events after the
    /// match stay buffered for the next call.
    pub fn run_until_event(
        &mut self,
        deadline: Nanos,
        mut pred: impl FnMut(&FailureEvent) -> bool,
    ) -> Option<FailureEvent> {
        loop {
            if let Some(ev) = self.scan(&mut pred) {
                return Some(ev);
            }
            self.cluster.poll_once();
            if let Some(ev) = self.scan(&mut pred) {
                return Some(ev);
            }
            let w = &mut self.cluster.world;
            match w.next_time() {
                Some(t) if t <= deadline => w.advance_to(t),
                _ if w.clock < deadline => w.advance_to(deadline),
                _ => return None,
            }
        }
    }

    /// Run until nothing can ever happen again; a hang past `deadline`
    /// is returned as data ([`Cluster::try_run_until_quiescent`]).
    pub fn run_to_quiescence(&mut self, deadline: Nanos) -> Result<Nanos, ClusterHang> {
        self.cluster.try_run_until_quiescent(deadline)
    }

    fn scan(&mut self, pred: &mut impl FnMut(&FailureEvent) -> bool) -> Option<FailureEvent> {
        match self.cluster.world.health.poll(&mut self.sub) {
            HealthDelivery::Events(evs) => {
                self.pending.extend(evs.into_iter().map(|(_, e)| e));
            }
            // Channel overflow: continuity is lost; predicates resume
            // from the current edge of the stream.
            HealthDelivery::Resync(_) => {}
        }
        while let Some(ev) = self.pending.pop_front() {
            if pred(&ev) {
                return Some(ev);
            }
        }
        None
    }

    // ---- live fault control --------------------------------------------

    /// Inject any [`FaultEvent`] at the current instant.
    pub fn inject(&mut self, ev: FaultEvent) {
        self.cluster.inject_fault(ev);
    }

    /// Take a link down now.
    pub fn link_down(&mut self, link: LinkId) {
        self.inject(FaultEvent::LinkDown(link));
    }

    /// Bring a link back to full capacity now.
    pub fn link_up(&mut self, link: LinkId) {
        self.inject(FaultEvent::LinkUp(link));
    }

    /// Degrade a link to `milli`/1000 of line rate now (1000 = repair).
    pub fn degrade(&mut self, link: LinkId, milli: u32) {
        self.inject(FaultEvent::LinkDegrade { link, milli });
    }

    /// Degrade a group of links together (correlated brownout).
    pub fn degrade_group(&mut self, links: &[LinkId], milli: u32) {
        self.inject(FaultEvent::CorrelatedDegrade {
            links: Arc::from(links),
            milli,
        });
    }

    /// Crash a host now.
    pub fn crash_host(&mut self, host: HostId) {
        self.inject(FaultEvent::CrashHost(host));
    }

    /// Warm-restart a crashed host now.
    pub fn restart_host(&mut self, host: HostId) {
        self.inject(FaultEvent::RestartHost(host));
    }

    /// Crash the controller now: the recovery engine and health monitor
    /// freeze, and health events accumulate in the bounded channel until
    /// a restart. Idempotent while already down.
    pub fn crash_controller(&mut self) {
        self.inject(FaultEvent::CrashController);
    }

    /// Restart a crashed controller: working state is rebuilt from the
    /// last checkpoint and the recovery engine runs its reconciliation
    /// pass. Idempotent while already up.
    pub fn restart_controller(&mut self) {
        self.inject(FaultEvent::RestartController);
    }

    /// Whether the controller is currently down.
    pub fn is_controller_down(&self) -> bool {
        self.cluster.world.controller.down
    }

    /// Cut `rack` off from the rest of the fabric: every switch-to-switch
    /// link touching the rack's leaf goes down. Returns the links cut
    /// (already-down links are skipped), so the test can repair them.
    pub fn partition_rack(&mut self, rack: RackId) -> Vec<LinkId> {
        let cut: Vec<LinkId> = self
            .uplinks_of_rack(rack)
            .into_iter()
            .filter(|&l| self.cluster.world.net.link_up(l))
            .collect();
        for &l in &cut {
            self.link_down(l);
        }
        cut
    }

    /// Undo a partition: bring every down switch-to-switch link touching
    /// the rack's leaf back up. Returns the links repaired.
    pub fn repair_rack(&mut self, rack: RackId) -> Vec<LinkId> {
        let fixed: Vec<LinkId> = self
            .uplinks_of_rack(rack)
            .into_iter()
            .filter(|&l| !self.cluster.world.net.link_up(l))
            .collect();
        for &l in &fixed {
            self.link_up(l);
        }
        fixed
    }

    /// Repair everything: bring every down link up, restart every
    /// crashed host, clear every brownout, restart a crashed controller,
    /// and release held control traffic. The world returns to a healthy
    /// fabric (detour pins remain until the recovery engine fails them
    /// back).
    pub fn repair_all(&mut self) {
        let w = &self.cluster.world;
        let down: Vec<LinkId> = w
            .topo
            .links()
            .iter()
            .map(|l| l.id)
            .filter(|&l| !w.net.link_up(l))
            .collect();
        let degraded: Vec<LinkId> = w
            .topo
            .links()
            .iter()
            .map(|l| l.id)
            .filter(|&l| w.net.link_up(l) && w.net.link_weight(l) < 1.0)
            .collect();
        let crashed: Vec<HostId> = w.health.hosts_down().collect();
        for l in down {
            self.link_up(l);
        }
        for l in degraded {
            self.degrade(l, 1000);
        }
        for h in crashed {
            self.restart_host(h);
        }
        if self.cluster.world.controller.down {
            self.restart_controller();
        }
        if self.cluster.world.is_control_held() {
            self.release_control();
        }
    }

    /// Hold all control-ring traffic: messages sent from now on are
    /// parked (with their already-drawn latency) instead of delivered.
    pub fn hold_control(&mut self) {
        self.cluster.world.hold_control();
    }

    /// Release held control traffic: parked messages are re-sent from
    /// the current instant with their original latency draws —
    /// observably identical to a scripted `delay_control` of the hold
    /// duration on each affected ordinal.
    pub fn release_control(&mut self) {
        self.cluster.world.release_control();
    }

    /// Whether control traffic is currently held.
    pub fn is_control_held(&self) -> bool {
        self.cluster.world.is_control_held()
    }

    /// Control messages currently parked by a hold.
    pub fn held_control(&self) -> usize {
        self.cluster.world.held_control_len()
    }

    // ---- topology helpers ----------------------------------------------

    /// The leaf switch serving `rack`.
    pub fn leaf_of_rack(&self, rack: RackId) -> SwitchId {
        self.cluster
            .world
            .topo
            .switches()
            .iter()
            .find(|s| s.rack == Some(rack))
            .map(|s| s.id)
            .unwrap_or_else(|| panic!("no leaf switch serves {rack:?}"))
    }

    /// All switch-to-switch links touching `rack`'s leaf (both
    /// directions), in topology order.
    pub fn uplinks_of_rack(&self, rack: RackId) -> Vec<LinkId> {
        let leaf = self.leaf_of_rack(rack);
        self.cluster
            .world
            .topo
            .links()
            .iter()
            .filter(|l| {
                let touches = l.from == graph::Endpoint::Switch(leaf)
                    || l.to == graph::Endpoint::Switch(leaf);
                let switch_to_switch = matches!(l.from, graph::Endpoint::Switch(_))
                    && matches!(l.to, graph::Endpoint::Switch(_));
                touches && switch_to_switch
            })
            .map(|l| l.id)
            .collect()
    }
}
