//! Failure observability — the health half of the management plane.
//!
//! The service records every fault it observes (links and hosts going
//! down and up, flow retries, stalled collectives) and every corrective
//! action it takes (re-pins, recoveries, clean failures) in a single
//! [`HealthRegistry`] on the world. The controller's recovery policy
//! consumes the event log; tests and the management API read the
//! counters. With no fault plan installed nothing ever writes here, so
//! an all-default registry doubles as the zero-overhead regression check.

use mccs_ipc::CommunicatorId;
use mccs_sim::Nanos;
use mccs_topology::{HostId, LinkId};
use std::collections::BTreeSet;

/// One observed failure or recovery action, timestamped in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureEvent {
    /// A link lost all capacity.
    LinkDown {
        /// The failed link.
        link: LinkId,
        /// When it went down.
        at: Nanos,
    },
    /// A link came back.
    LinkUp {
        /// The repaired link.
        link: LinkId,
        /// When it came back.
        at: Nanos,
    },
    /// A host crashed (its service engines froze).
    HostDown {
        /// The crashed host.
        host: HostId,
        /// When it crashed.
        at: Nanos,
    },
    /// A crashed host warm-restarted.
    HostUp {
        /// The restarted host.
        host: HostId,
        /// When it restarted.
        at: Nanos,
    },
    /// A transport retried a stalled or killed flow.
    FlowRetried {
        /// Owning communicator.
        comm: CommunicatorId,
        /// The collective the flow belongs to.
        seq: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// When the retry fired.
        at: Nanos,
    },
    /// A transport gave up on a flow after exhausting its retries.
    FlowExhausted {
        /// Owning communicator.
        comm: CommunicatorId,
        /// The collective the flow belonged to.
        seq: u64,
        /// When retries ran out.
        at: Nanos,
    },
    /// A proxy's liveness timer fired on an in-flight collective.
    CollectiveStalled {
        /// The communicator.
        comm: CommunicatorId,
        /// The stalled collective.
        seq: u64,
        /// When the timer fired.
        at: Nanos,
    },
    /// The recovery engine issued a corrective reconfiguration.
    RecoveryIssued {
        /// The communicator being re-formed.
        comm: CommunicatorId,
        /// The target epoch of the corrective configuration.
        epoch: u64,
        /// When it was issued.
        at: Nanos,
    },
    /// A proxy rejected a reconfiguration request (unknown communicator,
    /// wrong epoch, or mid-barrier) instead of panicking.
    ReconfigRejected {
        /// The communicator named by the request.
        comm: CommunicatorId,
        /// When it was rejected.
        at: Nanos,
    },
}

/// Monotonic recovery counters the management API exposes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Flows restarted after a stall or kill.
    pub flow_retries: u64,
    /// Retries that moved the flow to a different equal-cost route.
    pub flow_repins: u64,
    /// Flows abandoned after exhausting retries.
    pub flow_failures: u64,
    /// `CollectiveFailed` completions delivered to tenant ranks.
    pub collectives_failed: u64,
    /// Corrective reconfigurations issued by the recovery engine.
    pub recoveries: u64,
    /// Barrier gossip resends after suspected control-message loss.
    pub gossip_resends: u64,
    /// Reconfiguration requests rejected instead of applied.
    pub reconfig_rejects: u64,
}

/// Per-link/host status plus the failure event log and counters.
#[derive(Debug, Default)]
pub struct HealthRegistry {
    links_down: BTreeSet<LinkId>,
    hosts_down: BTreeSet<HostId>,
    events: Vec<FailureEvent>,
    /// Monotonic counters (public: hot paths bump them directly).
    pub counters: HealthCounters,
}

impl HealthRegistry {
    /// A fresh, all-healthy registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a link going down.
    pub fn link_down(&mut self, link: LinkId, at: Nanos) {
        if self.links_down.insert(link) {
            self.events.push(FailureEvent::LinkDown { link, at });
        }
    }

    /// Record a link repair.
    pub fn link_up(&mut self, link: LinkId, at: Nanos) {
        if self.links_down.remove(&link) {
            self.events.push(FailureEvent::LinkUp { link, at });
        }
    }

    /// Record a host crash.
    pub fn host_down(&mut self, host: HostId, at: Nanos) {
        if self.hosts_down.insert(host) {
            self.events.push(FailureEvent::HostDown { host, at });
        }
    }

    /// Record a host restart.
    pub fn host_up(&mut self, host: HostId, at: Nanos) {
        if self.hosts_down.remove(&host) {
            self.events.push(FailureEvent::HostUp { host, at });
        }
    }

    /// Append a non-topology failure event.
    pub fn record(&mut self, event: FailureEvent) {
        self.events.push(event);
    }

    /// Whether this link is currently believed down.
    pub fn is_link_down(&self, link: LinkId) -> bool {
        self.links_down.contains(&link)
    }

    /// Whether this host is currently crashed.
    pub fn is_host_down(&self, host: HostId) -> bool {
        self.hosts_down.contains(&host)
    }

    /// Links currently down.
    pub fn links_down(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links_down.iter().copied()
    }

    /// Hosts currently down.
    pub fn hosts_down(&self) -> impl Iterator<Item = HostId> + '_ {
        self.hosts_down.iter().copied()
    }

    /// The full failure event log, in observation order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// True when nothing was ever recorded — the invariant a run without
    /// a fault plan must preserve.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
            && self.links_down.is_empty()
            && self.hosts_down.is_empty()
            && self.counters == HealthCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_sets_dedupe_and_log_everything() {
        let mut h = HealthRegistry::new();
        assert!(h.is_quiet());
        h.link_down(LinkId(3), Nanos::from_micros(1));
        h.link_down(LinkId(3), Nanos::from_micros(2));
        assert!(h.is_link_down(LinkId(3)));
        assert_eq!(h.events().len(), 1, "duplicate down not re-logged");
        h.link_up(LinkId(3), Nanos::from_micros(5));
        assert!(!h.is_link_down(LinkId(3)));
        h.host_down(HostId(1), Nanos::from_micros(6));
        assert!(h.is_host_down(HostId(1)));
        assert_eq!(h.events().len(), 3);
        assert!(!h.is_quiet());
    }

    #[test]
    fn counters_break_quiet() {
        let mut h = HealthRegistry::new();
        h.counters.flow_retries += 1;
        assert!(!h.is_quiet());
    }
}
