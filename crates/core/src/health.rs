//! Failure observability — the health half of the management plane.
//!
//! The service records every fault it observes (links and hosts going
//! down, up, or degrading, flow retries, stalled collectives) and every
//! corrective action it takes (re-pins, rebalances, recoveries, clean
//! failures) in a single [`HealthRegistry`] on the world. Every recorded
//! event is also published on a bounded, sequence-numbered
//! [`HealthChannel`]: subscribers ([`RecoveryEngine`], the controller's
//! health monitor) consume per-event deliveries instead of polling, and
//! a subscriber that falls behind the ring gets a snapshot-resync marker
//! rather than silently missing events. The polling accessors
//! (`links_down()`, `events()`, the counters) remain as a compatibility
//! shim over the same state. With no fault plan installed nothing ever
//! writes here, so an all-default registry doubles as the zero-overhead
//! regression check.
//!
//! [`RecoveryEngine`]: crate::recovery::RecoveryEngine

use mccs_ipc::CommunicatorId;
use mccs_sim::Nanos;
use mccs_topology::{GpuId, HostId, LinkId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One observed failure or recovery action, timestamped in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureEvent {
    /// A link lost all capacity.
    LinkDown {
        /// The failed link.
        link: LinkId,
        /// When it went down.
        at: Nanos,
    },
    /// A link came back.
    LinkUp {
        /// The repaired link.
        link: LinkId,
        /// When it came back.
        at: Nanos,
    },
    /// A host crashed (its service engines froze).
    HostDown {
        /// The crashed host.
        host: HostId,
        /// When it crashed.
        at: Nanos,
    },
    /// A crashed host warm-restarted.
    HostUp {
        /// The restarted host.
        host: HostId,
        /// When it restarted.
        at: Nanos,
    },
    /// A link degraded to a fraction of line rate (or recovered back to
    /// it — `milli == 1000` clears the degradation).
    LinkDegraded {
        /// The degraded link.
        link: LinkId,
        /// Remaining capacity in thousandths of line rate (integer so the
        /// event stays `Copy`/`Eq`; 1000 = restored to full rate).
        milli: u32,
        /// When the degradation was observed.
        at: Nanos,
    },
    /// A transport moved an in-flight flow to a better-weighted route
    /// under the degradation policy (progress kept, no retry burned).
    FlowRebalanced {
        /// Owning communicator.
        comm: CommunicatorId,
        /// The collective the flow belongs to.
        seq: u64,
        /// When the flow was re-pinned.
        at: Nanos,
    },
    /// A transport retried a stalled or killed flow.
    FlowRetried {
        /// Owning communicator.
        comm: CommunicatorId,
        /// The collective the flow belongs to.
        seq: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// When the retry fired.
        at: Nanos,
    },
    /// A transport gave up on a flow after exhausting its retries.
    FlowExhausted {
        /// Owning communicator.
        comm: CommunicatorId,
        /// The collective the flow belonged to.
        seq: u64,
        /// When retries ran out.
        at: Nanos,
    },
    /// A rank finished draining and applied a new configuration epoch —
    /// the per-rank completion notification of the Figure 4 protocol.
    /// The controller retires a drain obligation once every rank of the
    /// communicator has reported (and runs its fail-back retirement
    /// check when the drain was restorative). Only recorded under a
    /// fault plan, like the rest of the liveness machinery.
    ReconfigApplied {
        /// The communicator.
        comm: CommunicatorId,
        /// The reporting rank's GPU.
        gpu: GpuId,
        /// The epoch now in effect on this rank.
        epoch: u64,
        /// When the drain completed.
        at: Nanos,
    },
    /// A proxy's liveness timer fired on an in-flight collective.
    CollectiveStalled {
        /// The communicator.
        comm: CommunicatorId,
        /// The stalled collective.
        seq: u64,
        /// When the timer fired.
        at: Nanos,
    },
    /// The recovery engine issued a corrective reconfiguration.
    RecoveryIssued {
        /// The communicator being re-formed.
        comm: CommunicatorId,
        /// The target epoch of the corrective configuration.
        epoch: u64,
        /// When it was issued.
        at: Nanos,
    },
    /// A proxy rejected a reconfiguration request (unknown communicator,
    /// wrong epoch, or mid-barrier) instead of panicking.
    ReconfigRejected {
        /// The communicator named by the request.
        comm: CommunicatorId,
        /// When it was rejected.
        at: Nanos,
    },
    /// The recovery engine issued a *restorative* reconfiguration after a
    /// repair: the communicator's detour pins / dropped rings were rolled
    /// back toward the policy's healthy-fabric choice.
    FailbackIssued {
        /// The communicator being restored.
        comm: CommunicatorId,
        /// The target epoch of the restorative configuration.
        epoch: u64,
        /// When it was issued.
        at: Nanos,
    },
}

impl FailureEvent {
    /// Whether publishing this event should raise the health-channel wake
    /// edge. Topology transitions and stall reports demand subscriber
    /// action (the recovery engine reroutes; crashed-host engines park on
    /// the channel waiting for their `HostUp`). The service's own action
    /// reports — retries, rebalances, issued recoveries/fail-backs,
    /// rejections — are informational: every engine that cares is the one
    /// that just recorded them, so waking subscribers for them is a
    /// guaranteed wasted poll (the recovery engine re-readied by its own
    /// `RecoveryIssued`). They still reach subscribers on the next
    /// genuine wake — the channel cursor, not the edge, carries the data.
    pub fn wakes_subscribers(&self) -> bool {
        match self {
            FailureEvent::LinkDown { .. }
            | FailureEvent::LinkUp { .. }
            | FailureEvent::HostDown { .. }
            | FailureEvent::HostUp { .. }
            | FailureEvent::LinkDegraded { .. }
            | FailureEvent::ReconfigApplied { .. }
            | FailureEvent::CollectiveStalled { .. } => true,
            FailureEvent::FlowRebalanced { .. }
            | FailureEvent::FlowRetried { .. }
            | FailureEvent::FlowExhausted { .. }
            | FailureEvent::RecoveryIssued { .. }
            | FailureEvent::ReconfigRejected { .. }
            | FailureEvent::FailbackIssued { .. } => false,
        }
    }
}

/// Monotonic recovery counters the management API exposes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Flows restarted after a stall or kill.
    pub flow_retries: u64,
    /// Retries that moved the flow to a different equal-cost route.
    pub flow_repins: u64,
    /// In-flight flows moved to a better-weighted route by the
    /// degradation sweep (progress kept, no retry burned).
    pub flow_rebalances: u64,
    /// Gauge: links currently running below line rate (brownouts, as
    /// opposed to the `links_down` blackout set).
    pub links_degraded: u64,
    /// Flows abandoned after exhausting retries.
    pub flow_failures: u64,
    /// `CollectiveFailed` completions delivered to tenant ranks.
    pub collectives_failed: u64,
    /// Corrective reconfigurations issued by the recovery engine.
    pub recoveries: u64,
    /// Barrier gossip resends after suspected control-message loss.
    pub gossip_resends: u64,
    /// Reconfiguration requests rejected instead of applied.
    pub reconfig_rejects: u64,
    /// Restorative reconfigurations issued after a repair returned the
    /// fabric to health (detour pins rolled back).
    pub failbacks: u64,
}

/// Engine-scheduler efficiency counters, synced from the runtime pool
/// after every run loop. Kept separate from [`HealthCounters`]: scheduler
/// choice is not observable behaviour, so these must stay out of the
/// trace digest and the [`HealthRegistry::is_quiet`] invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Engine polls issued by the pool.
    pub polls: u64,
    /// Polls that returned `Idle` (no work done).
    pub wasted_polls: u64,
    /// Parked engines readied by a resource signal or deadline.
    pub wakes: u64,
    /// Conflict-partition waves built by the parallel scheduler (0 on the
    /// sequential path, which skips partitioning entirely).
    pub waves: u64,
    /// Largest conflict group seen in any wave — the unit of work the
    /// pool cannot split further.
    pub max_group: u64,
    /// Polls that committed a pre-computed plan (the effect-buffer
    /// protocol's concurrent read phase) instead of planning inline.
    pub planned_polls: u64,
    /// Plans computed but voided before commit (a mid-sweep joiner
    /// invalidated the frozen view they were derived from).
    pub dropped_plans: u64,
}

/// Default capacity of the bounded health push channel.
pub const DEFAULT_HEALTH_CHANNEL_CAPACITY: usize = 256;

/// Bounded, sequence-numbered ring of published [`FailureEvent`]s.
///
/// Every event gets an absolute sequence number (0-based, never reused).
/// When the ring is full the oldest event is dropped and `base_seq`
/// advances — a subscriber whose cursor falls below `base_seq` missed
/// events and is handed a snapshot resync instead of a gapped stream.
#[derive(Debug)]
pub struct HealthChannel {
    buf: VecDeque<FailureEvent>,
    /// Sequence number of `buf[0]`.
    base_seq: u64,
    capacity: usize,
    /// Total events dropped off the front (observability).
    overflows: u64,
}

impl Default for HealthChannel {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_HEALTH_CHANNEL_CAPACITY)
    }
}

impl HealthChannel {
    /// An empty channel holding at most `capacity` undelivered events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "health channel needs room for one event");
        HealthChannel {
            buf: VecDeque::with_capacity(capacity.min(64)),
            base_seq: 0,
            capacity,
            overflows: 0,
        }
    }

    /// Sequence number the next published event will get.
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.buf.len() as u64
    }

    /// Events dropped to overflow so far.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    fn publish(&mut self, event: FailureEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.base_seq += 1;
            self.overflows += 1;
        }
        self.buf.push_back(event);
    }
}

/// A subscriber's cursor into the [`HealthChannel`].
#[derive(Clone, Copy, Debug)]
pub struct HealthSubscription {
    /// Next sequence number this subscriber has not yet seen.
    next_seq: u64,
}

impl HealthSubscription {
    /// A cursor at sequence zero: the subscriber sees every event ever
    /// published (or a resync if the ring already rolled past zero).
    pub fn from_start() -> Self {
        HealthSubscription { next_seq: 0 }
    }

    /// A cursor at an explicit sequence number — used to resume a
    /// checkpointed subscription after a controller restart. If the ring
    /// has already rolled past `seq`, the next poll resyncs.
    pub fn at(seq: u64) -> Self {
        HealthSubscription { next_seq: seq }
    }

    /// The next sequence number this subscription expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// What one [`HealthRegistry::poll`] hands a subscriber.
#[derive(Clone, Debug)]
pub enum HealthDelivery {
    /// In-order events with their absolute sequence numbers (empty when
    /// the subscriber is caught up).
    Events(Vec<(u64, FailureEvent)>),
    /// The subscriber fell behind the bounded ring and lost events; the
    /// snapshot re-establishes current status and the cursor resumes at
    /// the ring's oldest retained event.
    Resync(HealthSnapshot),
}

/// Current health status, handed out on channel overflow resync.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Links currently down.
    pub links_down: Vec<LinkId>,
    /// Hosts currently crashed.
    pub hosts_down: Vec<HostId>,
    /// Links currently degraded, with remaining milli-capacity.
    pub links_degraded: Vec<(LinkId, u32)>,
    /// Counter values at snapshot time.
    pub counters: HealthCounters,
    /// How many events this subscriber missed.
    pub lost: u64,
    /// Sequence number the subscription resumes at.
    pub resumed_at_seq: u64,
}

/// Per-link/host status plus the failure event log, push channel, and
/// counters.
#[derive(Debug, Default)]
pub struct HealthRegistry {
    links_down: BTreeSet<LinkId>,
    hosts_down: BTreeSet<HostId>,
    /// Degraded links with remaining milli-capacity (1..=999).
    links_degraded: BTreeMap<LinkId, u32>,
    events: Vec<FailureEvent>,
    channel: HealthChannel,
    /// Monotonic counters (public: hot paths bump them directly).
    pub counters: HealthCounters,
    /// Scheduler efficiency counters (not observable behaviour: excluded
    /// from the digest and from [`Self::is_quiet`]).
    pub scheduler: SchedulerStats,
    /// Edge flag: an event was published since the last `take_signal`.
    /// The world's wake plumbing drains this into the health-channel
    /// resource so subscribed engines are readied.
    signal: bool,
}

impl HealthRegistry {
    /// A fresh, all-healthy registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh registry whose push channel retains at most `capacity`
    /// events (older ones roll off into a resync snapshot).
    pub fn with_channel_capacity(capacity: usize) -> Self {
        HealthRegistry {
            channel: HealthChannel::with_capacity(capacity),
            ..Self::default()
        }
    }

    /// Record a link going down.
    pub fn link_down(&mut self, link: LinkId, at: Nanos) {
        if self.links_down.insert(link) {
            self.push(FailureEvent::LinkDown { link, at });
        }
    }

    /// Record a link repair.
    pub fn link_up(&mut self, link: LinkId, at: Nanos) {
        if self.links_down.remove(&link) {
            self.push(FailureEvent::LinkUp { link, at });
        }
    }

    /// Record a link degrading to `milli`/1000 of line rate; 1000 clears
    /// the degradation. Duplicates (same link, same fraction) are not
    /// re-logged, mirroring the down/up dedup.
    pub fn link_degraded(&mut self, link: LinkId, milli: u32, at: Nanos) {
        let milli = milli.min(1000);
        let changed = if milli >= 1000 {
            self.links_degraded.remove(&link).is_some()
        } else {
            self.links_degraded.insert(link, milli) != Some(milli)
        };
        if changed {
            self.counters.links_degraded = self.links_degraded.len() as u64;
            self.push(FailureEvent::LinkDegraded { link, milli, at });
        }
    }

    /// Record a host crash.
    pub fn host_down(&mut self, host: HostId, at: Nanos) {
        if self.hosts_down.insert(host) {
            self.push(FailureEvent::HostDown { host, at });
        }
    }

    /// Record a host restart.
    pub fn host_up(&mut self, host: HostId, at: Nanos) {
        if self.hosts_down.remove(&host) {
            self.push(FailureEvent::HostUp { host, at });
        }
    }

    /// Append a non-topology failure event.
    pub fn record(&mut self, event: FailureEvent) {
        self.push(event);
    }

    fn push(&mut self, event: FailureEvent) {
        self.channel.publish(event);
        self.events.push(event);
        self.signal |= event.wakes_subscribers();
    }

    /// Consume the edge flag raised by any publication since the last
    /// call (wake plumbing; see the `signal` field).
    pub fn take_signal(&mut self) -> bool {
        std::mem::take(&mut self.signal)
    }

    /// Whether this link is currently believed down.
    pub fn is_link_down(&self, link: LinkId) -> bool {
        self.links_down.contains(&link)
    }

    /// Whether this host is currently crashed.
    pub fn is_host_down(&self, host: HostId) -> bool {
        self.hosts_down.contains(&host)
    }

    /// Links currently down.
    pub fn links_down(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links_down.iter().copied()
    }

    /// Hosts currently down.
    pub fn hosts_down(&self) -> impl Iterator<Item = HostId> + '_ {
        self.hosts_down.iter().copied()
    }

    /// Whether this link currently runs below line rate.
    pub fn is_link_degraded(&self, link: LinkId) -> bool {
        self.links_degraded.contains_key(&link)
    }

    /// Links currently degraded, with remaining milli-capacity.
    pub fn links_degraded(&self) -> impl Iterator<Item = (LinkId, u32)> + '_ {
        self.links_degraded.iter().map(|(&l, &m)| (l, m))
    }

    /// The full failure event log, in observation order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    // ---- push channel -----------------------------------------------------

    /// Subscribe from the current channel tail: the subscription sees
    /// only events published after this call.
    pub fn subscribe(&self) -> HealthSubscription {
        HealthSubscription {
            next_seq: self.channel.next_seq(),
        }
    }

    /// Drain everything published since the subscription's cursor. If the
    /// cursor fell behind the bounded ring the delivery is a
    /// [`HealthDelivery::Resync`] carrying a status snapshot, and the
    /// cursor jumps to the ring's oldest retained event.
    pub fn poll(&self, sub: &mut HealthSubscription) -> HealthDelivery {
        let ch = &self.channel;
        if sub.next_seq < ch.base_seq {
            let lost = ch.base_seq - sub.next_seq;
            sub.next_seq = ch.base_seq;
            return HealthDelivery::Resync(HealthSnapshot {
                links_down: self.links_down.iter().copied().collect(),
                hosts_down: self.hosts_down.iter().copied().collect(),
                links_degraded: self.links_degraded.iter().map(|(&l, &m)| (l, m)).collect(),
                counters: self.counters,
                lost,
                resumed_at_seq: ch.base_seq,
            });
        }
        let skip = (sub.next_seq - ch.base_seq) as usize;
        let out: Vec<(u64, FailureEvent)> = ch
            .buf
            .iter()
            .enumerate()
            .skip(skip)
            .map(|(i, &ev)| (ch.base_seq + i as u64, ev))
            .collect();
        sub.next_seq = ch.next_seq();
        HealthDelivery::Events(out)
    }

    /// Events dropped off the bounded channel so far.
    pub fn channel_overflows(&self) -> u64 {
        self.channel.overflows()
    }

    /// True when nothing was ever recorded — the invariant a run without
    /// a fault plan must preserve.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
            && self.links_down.is_empty()
            && self.hosts_down.is_empty()
            && self.links_degraded.is_empty()
            && self.counters == HealthCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_sets_dedupe_and_log_everything() {
        let mut h = HealthRegistry::new();
        assert!(h.is_quiet());
        h.link_down(LinkId(3), Nanos::from_micros(1));
        h.link_down(LinkId(3), Nanos::from_micros(2));
        assert!(h.is_link_down(LinkId(3)));
        assert_eq!(h.events().len(), 1, "duplicate down not re-logged");
        h.link_up(LinkId(3), Nanos::from_micros(5));
        assert!(!h.is_link_down(LinkId(3)));
        h.host_down(HostId(1), Nanos::from_micros(6));
        assert!(h.is_host_down(HostId(1)));
        assert_eq!(h.events().len(), 3);
        assert!(!h.is_quiet());
    }

    #[test]
    fn counters_break_quiet() {
        let mut h = HealthRegistry::new();
        h.counters.flow_retries += 1;
        assert!(!h.is_quiet());
    }

    #[test]
    fn degraded_links_gauge_and_dedup() {
        let mut h = HealthRegistry::new();
        h.link_degraded(LinkId(2), 500, Nanos::from_micros(1));
        h.link_degraded(LinkId(2), 500, Nanos::from_micros(2));
        assert_eq!(h.events().len(), 1, "same fraction not re-logged");
        assert!(h.is_link_degraded(LinkId(2)));
        assert_eq!(h.counters.links_degraded, 1);
        h.link_degraded(LinkId(2), 250, Nanos::from_micros(3));
        assert_eq!(h.events().len(), 2, "deeper degrade is news");
        assert_eq!(h.counters.links_degraded, 1);
        h.link_degraded(LinkId(2), 1000, Nanos::from_micros(4));
        assert!(!h.is_link_degraded(LinkId(2)));
        assert_eq!(h.counters.links_degraded, 0);
        assert_eq!(h.links_degraded().count(), 0);
        assert!(!h.is_quiet(), "the event log remembers the brownout");
    }

    #[test]
    fn channel_delivers_in_order_with_seq_numbers() {
        let mut h = HealthRegistry::new();
        let mut sub = h.subscribe();
        h.link_down(LinkId(1), Nanos::from_micros(1));
        h.link_degraded(LinkId(2), 500, Nanos::from_micros(2));
        match h.poll(&mut sub) {
            HealthDelivery::Events(evs) => {
                assert_eq!(evs.len(), 2);
                assert_eq!(evs[0].0, 0);
                assert_eq!(evs[1].0, 1);
                assert!(matches!(evs[0].1, FailureEvent::LinkDown { .. }));
                assert!(matches!(
                    evs[1].1,
                    FailureEvent::LinkDegraded { milli: 500, .. }
                ));
            }
            d => panic!("expected events, got {d:?}"),
        }
        // Caught up: next poll is empty, and a late subscriber sees only
        // what comes after its subscribe().
        assert!(matches!(h.poll(&mut sub), HealthDelivery::Events(e) if e.is_empty()));
        let mut late = h.subscribe();
        h.host_down(HostId(1), Nanos::from_micros(3));
        match h.poll(&mut late) {
            HealthDelivery::Events(evs) => {
                assert_eq!(evs.len(), 1);
                assert_eq!(evs[0].0, 2);
            }
            d => panic!("expected events, got {d:?}"),
        }
    }

    #[test]
    fn channel_overflow_resyncs_with_snapshot() {
        let mut h = HealthRegistry::new();
        let mut sub = HealthSubscription::from_start();
        // Blow well past the ring capacity with alternating degrades.
        for i in 0..(DEFAULT_HEALTH_CHANNEL_CAPACITY as u32 + 50) {
            let milli = 100 + (i % 2) * 100;
            h.link_degraded(LinkId(3), milli, Nanos::from_micros(u64::from(i)));
        }
        h.link_down(LinkId(7), Nanos::from_secs(1));
        match h.poll(&mut sub) {
            HealthDelivery::Resync(snap) => {
                assert_eq!(snap.lost, 51);
                assert_eq!(snap.resumed_at_seq, sub.next_seq());
                assert_eq!(snap.links_down, vec![LinkId(7)]);
                assert_eq!(snap.links_degraded.len(), 1);
                assert_eq!(snap.counters.links_degraded, 1);
            }
            d => panic!("expected resync, got {d:?}"),
        }
        // After the resync the subscriber streams normally again.
        match h.poll(&mut sub) {
            HealthDelivery::Events(evs) => {
                assert_eq!(evs.len(), DEFAULT_HEALTH_CHANNEL_CAPACITY);
                assert!(matches!(
                    evs.last().unwrap().1,
                    FailureEvent::LinkDown { .. }
                ));
            }
            d => panic!("expected events, got {d:?}"),
        }
        assert_eq!(h.channel_overflows(), 51);
    }
}
