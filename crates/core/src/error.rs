//! Typed service errors.
//!
//! Fallible data-path operations return [`ServiceError`] instead of
//! panicking; the frontend/proxy turn one into an error completion the
//! shim surfaces as an NCCL-style result code. Panics remain only for
//! true service invariants (state the simulation itself guarantees).

use mccs_ipc::{ErrorCode, ShimCompletion};
use std::fmt;

/// A classified, user-visible service failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceError {
    /// NCCL-style classification.
    pub code: ErrorCode,
    /// Human-readable cause.
    pub message: String,
}

impl ServiceError {
    /// A malformed caller argument (`ncclInvalidArgument`).
    pub fn invalid_argument(message: impl Into<String>) -> Self {
        ServiceError {
            code: ErrorCode::InvalidArgument,
            message: message.into(),
        }
    }

    /// An API usage violation (`ncclInvalidUsage`).
    pub fn invalid_usage(message: impl Into<String>) -> Self {
        ServiceError {
            code: ErrorCode::InvalidUsage,
            message: message.into(),
        }
    }

    /// An unrecoverable fabric/system failure (`ncclSystemError`).
    pub fn system(message: impl Into<String>) -> Self {
        ServiceError {
            code: ErrorCode::SystemError,
            message: message.into(),
        }
    }

    /// A service-internal inconsistency (`ncclInternalError`).
    pub fn internal(message: impl Into<String>) -> Self {
        ServiceError {
            code: ErrorCode::InternalError,
            message: message.into(),
        }
    }

    /// A failure caused by another rank (`ncclRemoteError`).
    pub fn remote(message: impl Into<String>) -> Self {
        ServiceError {
            code: ErrorCode::RemoteError,
            message: message.into(),
        }
    }

    /// The error completion for request `req`.
    pub fn completion(self, req: u64) -> ShimCompletion {
        ShimCompletion::Error {
            req,
            code: self.code,
            message: self.message,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify_and_display() {
        let e = ServiceError::invalid_usage("unknown communicator");
        assert_eq!(e.code, ErrorCode::InvalidUsage);
        assert_eq!(e.to_string(), "InvalidUsage: unknown communicator");
        match e.completion(7) {
            ShimCompletion::Error { req, code, message } => {
                assert_eq!(req, 7);
                assert_eq!(code, ErrorCode::InvalidUsage);
                assert_eq!(message, "unknown communicator");
            }
            other => panic!("unexpected completion {other:?}"),
        }
    }
}
