//! Tenant application engines.
//!
//! One [`AppEngine`] per rank: it owns the rank's [`ShimSession`] and its
//! [`AppProgram`](mccs_shim::AppProgram), and on each poll hands the
//! program a [`ShimApi`](mccs_shim::ShimApi) scoped to the rank's endpoint.
//! From the world's perspective the tenant is just another engine —
//! but one whose only access is the shim surface (queues, own streams,
//! handles): the isolation boundary of the paper.

use crate::world::{resources, EndpointPort, World};
use mccs_shim::{AppProgram, AppStatus, ShimApi, ShimSession};
use mccs_sim::{Engine, Footprint, Poll, Wake, WakeSet};

/// The engine driving one tenant rank.
pub struct AppEngine {
    endpoint: usize,
    session: ShimSession,
    program: Box<dyn AppProgram>,
}

impl AppEngine {
    /// Drive `program` as the rank attached to `endpoint`.
    pub fn new(endpoint: usize, program: Box<dyn AppProgram>) -> Self {
        AppEngine {
            endpoint,
            session: ShimSession::new(),
            program,
        }
    }
}

impl Engine<World> for AppEngine {
    // No `plan` implementation, deliberately: the app engine's step is
    // dominated by driving an opaque `Box<dyn AppProgram>` through its
    // session — tenant code the engine cannot inspect, whose every call
    // both reads and mutates program state (and draws from the
    // endpoint's RNG for IPC latency sampling). There is no pure read
    // phase to hoist, so the engine stays on the in-place path and the
    // pool spawns it `Local` rather than `Par`.
    fn progress(&mut self, w: &mut World) -> Poll {
        let ep = &mut w.endpoints[self.endpoint];
        let gpu = ep.gpu;
        // A due program timer is consumed by this poll; the program
        // re-arms it if it blocks on time again.
        if ep.next_app_wake.is_some_and(|t| t <= w.clock) {
            ep.next_app_wake = None;
        }
        let mut port = EndpointPort {
            world: w,
            idx: self.endpoint,
        };
        let mut api = ShimApi::new(&mut self.session, &mut port, gpu);
        match self.program.poll(&mut api) {
            AppStatus::Running => Poll::Progressed,
            AppStatus::Blocked => Poll::Idle,
            AppStatus::Finished => Poll::Finished,
        }
    }

    fn wake_when(&self, w: &World) -> Wake {
        let ep = &w.endpoints[self.endpoint];
        let mut ws = WakeSet::new();
        // Completions from the service, and their head-visibility lag.
        ws.watch(resources::endpoint_comp(self.endpoint as u32));
        ws.deadline_opt(ep.comp.next_visible());
        // Programs also block on device streams (compute kernels, event
        // waits); the fabric attributes activity per GPU, so watch only
        // this rank's device.
        ws.watch(resources::device_activity(ep.gpu.index() as u32));
        // Program-armed timers (SleepUntil-style waits).
        ws.deadline_opt(ep.next_app_wake);
        // Under command-queue back-pressure the session holds unsent
        // commands; the frontend signals when it frees space.
        if self.session.has_unsent() {
            ws.watch(resources::endpoint_cmd_space(self.endpoint as u32));
        }
        ws.build()
    }

    /// A rank touches exactly its own endpoint queues and its GPU's
    /// device streams: the full wake/signal surface of `progress`
    /// (commands pushed, completions popped, back-pressure space,
    /// device work launched). World-global effects (RNG, allocators)
    /// are excluded by the parallel-executor contract: the slot-order
    /// merge serializes them regardless of grouping.
    fn footprint(&self, w: &World) -> Footprint {
        let ep = self.endpoint as u32;
        Footprint::Resources(vec![
            resources::endpoint_cmd(ep),
            resources::endpoint_comp(ep),
            resources::endpoint_cmd_space(ep),
            resources::device_activity(w.endpoints[self.endpoint].gpu.index() as u32),
        ])
    }

    fn name(&self) -> String {
        format!("app-rank({}, {})", self.endpoint, self.program.name())
    }
}
