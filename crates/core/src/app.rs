//! Tenant application engines.
//!
//! One [`AppEngine`] per rank: it owns the rank's [`ShimSession`] and its
//! [`AppProgram`](mccs_shim::AppProgram), and on each poll hands the
//! program a [`ShimApi`](mccs_shim::ShimApi) scoped to the rank's endpoint.
//! From the world's perspective the tenant is just another engine —
//! but one whose only access is the shim surface (queues, own streams,
//! handles): the isolation boundary of the paper.

use crate::world::{EndpointPort, World};
use mccs_shim::{AppProgram, AppStatus, ShimApi, ShimSession};
use mccs_sim::{Engine, Poll};

/// The engine driving one tenant rank.
pub struct AppEngine {
    endpoint: usize,
    session: ShimSession,
    program: Box<dyn AppProgram>,
}

impl AppEngine {
    /// Drive `program` as the rank attached to `endpoint`.
    pub fn new(endpoint: usize, program: Box<dyn AppProgram>) -> Self {
        AppEngine {
            endpoint,
            session: ShimSession::new(),
            program,
        }
    }
}

impl Engine<World> for AppEngine {
    fn progress(&mut self, w: &mut World) -> Poll {
        let gpu = w.endpoints[self.endpoint].gpu;
        let mut port = EndpointPort {
            world: w,
            idx: self.endpoint,
        };
        let mut api = ShimApi::new(&mut self.session, &mut port, gpu);
        match self.program.poll(&mut api) {
            AppStatus::Running => Poll::Progressed,
            AppStatus::Blocked => Poll::Idle,
            AppStatus::Finished => Poll::Finished,
        }
    }

    fn name(&self) -> String {
        format!("app-rank({}, {})", self.endpoint, self.program.name())
    }
}
