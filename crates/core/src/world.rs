//! The shared simulation world.
//!
//! All engine-visible state lives here: the clock, the simulated network
//! and devices, every IPC queue and engine inbox, the communicator
//! registry, collective progress, and traces. Engines receive
//! `&mut World` when polled and communicate exclusively through it.

use crate::config::{CollectiveConfig, ServiceConfig};
use crate::health::HealthRegistry;
use crate::messages::{ProxyMsg, TransportMsg};
use crate::proxy::CommRank;
use crate::recovery::RecoveryPolicy;
use crate::tracing::TraceCollector;
use mccs_collectives::{CollectiveSchedule, RingOrder, ScheduleKey};
use mccs_device::{
    DeviceConfig, DeviceFabric, DeviceNotification, DevicePtr, EventId, MemHandle, StreamId,
};
use mccs_ipc::{AppId, CommunicatorId, IpcConfig, LatencyQueue, ShimCommand, ShimCompletion};
use mccs_netsim::{ControlFault, FaultEvent, FaultPlan, FlowCompletion, FlowId, Network};
use mccs_shim::ShimPort;
use mccs_sim::{Nanos, ResourceId, Rng, ShardedEventQueue, WakeSource};
use mccs_topology::{GpuId, LinkId, NicId, Topology};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// The world's wake-resource keying: every queue, channel, and event
/// stream an engine can block on maps to a [`ResourceId`] here. Engines
/// declare these in `wake_when`; the world raises the matching signal at
/// each produce site, and the [`RuntimePool`](mccs_sim::RuntimePool)
/// readies exactly the parked engines that watch them.
pub mod resources {
    use mccs_ipc::CommunicatorId;
    use mccs_sim::ResourceId;

    /// Shim -> service command queue of one endpoint gained a message.
    pub const fn endpoint_cmd(endpoint: u32) -> ResourceId {
        ResourceId::new(1, endpoint)
    }

    /// Service -> shim completion queue of one endpoint gained a message.
    pub const fn endpoint_comp(endpoint: u32) -> ResourceId {
        ResourceId::new(2, endpoint)
    }

    /// A GPU's proxy inbox gained a message.
    pub const fn proxy_inbox(gpu: u32) -> ResourceId {
        ResourceId::new(3, gpu)
    }

    /// A NIC's transport inbox gained a message.
    pub const fn transport_inbox(nic: u32) -> ResourceId {
        ResourceId::new(4, nic)
    }

    /// A NIC's transport received flow completions or failure notices.
    pub const fn transport_flow(nic: u32) -> ResourceId {
        ResourceId::new(5, nic)
    }

    /// Device activity on one GPU: a stream of that GPU dispatched,
    /// completed (silently or not — inline-executed records included),
    /// or was unblocked by an event recorded elsewhere. Attribution
    /// comes from [`mccs_device::DeviceFabric::take_touched_gpus`], so
    /// engines park against their own GPU instead of the whole fabric.
    pub const fn device_activity(gpu: u32) -> ResourceId {
        ResourceId::new(6, gpu)
    }

    /// Cluster-wide progress of one communicator's collectives changed
    /// (launch registered, task token completed or failed, abort). The
    /// 64-bit communicator id is truncated; collisions only cause
    /// harmless extra wakes.
    pub const fn progress(comm: CommunicatorId) -> ResourceId {
        ResourceId::new(7, comm.0 as u32)
    }

    /// A failure event was published on the health channel.
    pub const fn health_channel() -> ResourceId {
        ResourceId::new(8, 0)
    }

    /// A fault plan was installed (fault-gated engines leave their
    /// plan-free parking).
    pub const fn fault_plan_installed() -> ResourceId {
        ResourceId::new(9, 0)
    }

    /// The service drained messages from an endpoint's command queue —
    /// space freed for a back-pressured rank to resume pushing.
    pub const fn endpoint_cmd_space(endpoint: u32) -> ResourceId {
        ResourceId::new(10, endpoint)
    }

    /// The controller crashed or restarted (the recovery engine parks on
    /// this while the controller is down).
    pub const fn controller_status() -> ResourceId {
        ResourceId::new(11, 0)
    }
}

/// Scheduled wake-ups (payload-free: advancing time re-polls every engine).
#[derive(Clone, Copy, Debug)]
pub enum WorldEvent {
    /// Re-poll engines at this time (window boundaries, retries).
    Wake,
}

/// Who gets a flow's completion event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowOwner {
    /// The transport engine of this NIC index (MCCS data path).
    Transport(usize),
    /// An external engine (the NCCL-like baseline library, scale studies).
    External(u32),
}

/// Dense `flow id → owner` table. Flow ids are allocated sequentially by
/// the network and each is inserted exactly once, so instead of hashing,
/// the table is a sliding window (`VecDeque`) over the live id range:
/// `base` trails the oldest live flow, completed prefixes are reclaimed on
/// removal, and memory is bounded by the live-flow *span*, not by the
/// total flow count of the run.
#[derive(Default, Debug)]
pub struct FlowOwners {
    base: u64,
    slots: VecDeque<Option<FlowOwner>>,
    len: usize,
}

impl FlowOwners {
    /// Register a flow's owner. Ids arrive in increasing order (they are
    /// handed out by `Network::start_flow`), never below `base`.
    pub fn insert(&mut self, id: FlowId, owner: FlowOwner) {
        if self.slots.is_empty() {
            self.base = id.0;
        }
        let idx = (id.0 - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].replace(owner).is_none() {
            self.len += 1;
        }
    }

    /// Deregister a flow (on completion, kill or cancel).
    pub fn remove(&mut self, id: FlowId) -> Option<FlowOwner> {
        let idx = usize::try_from(id.0.checked_sub(self.base)?).ok()?;
        let out = self.slots.get_mut(idx)?.take();
        if out.is_some() {
            self.len -= 1;
        }
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        out
    }

    /// Number of registered flows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no flow is registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One tenant rank's IPC attachment point.
pub struct Endpoint {
    /// Owning application.
    pub app: AppId,
    /// Rank within the application.
    pub rank: usize,
    /// The GPU this rank was assigned.
    pub gpu: GpuId,
    /// The rank's default compute stream.
    pub app_stream: StreamId,
    /// Shim -> service commands.
    pub cmd: LatencyQueue<ShimCommand>,
    /// Service -> shim completions.
    pub comp: LatencyQueue<ShimCompletion>,
    /// Tenant-local randomness.
    pub rng: Rng,
    /// Earliest program-armed timer (`ShimPort::schedule_wake`) not yet
    /// reached — the app engine mirrors it as its wake deadline.
    pub next_app_wake: Option<Nanos>,
}

/// Cluster-wide completion tracking for one collective — the flow-level
/// shortcut standing in for per-rank kernel completion plumbing (the
/// paper's §6.5 simulator makes the same approximation).
#[derive(Debug)]
pub struct CollectiveProgress {
    /// Ranks expected to launch.
    pub expected_ranks: usize,
    /// Ranks that have launched their local tasks.
    pub launched_ranks: usize,
    /// Edge tasks still moving data.
    pub outstanding_tasks: usize,
    /// Configuration epoch of the first launch; every later launch must
    /// agree (the exactly-once-under-one-epoch oracle).
    pub epoch: u64,
    /// First launch time.
    pub first_launch_at: Nanos,
    /// Set when every rank launched and every task finished.
    pub completed_at: Option<Nanos>,
    /// Set when recovery was exhausted: the collective will never
    /// complete; every rank cleanly fails it to its tenant instead.
    pub failed: bool,
}

impl CollectiveProgress {
    fn new(expected_ranks: usize, epoch: u64, now: Nanos) -> Self {
        CollectiveProgress {
            expected_ranks,
            launched_ranks: 0,
            outstanding_tasks: 0,
            epoch,
            first_launch_at: now,
            completed_at: None,
            failed: false,
        }
    }

    /// Mark complete if all ranks launched, nothing is outstanding, and
    /// the collective was not failed.
    pub fn maybe_complete(&mut self, now: Nanos) {
        if self.completed_at.is_none()
            && !self.failed
            && self.launched_ranks == self.expected_ranks
            && self.outstanding_tasks == 0
        {
            self.completed_at = Some(now);
        }
    }
}

/// The world-level schedule cache: derived [`CollectiveSchedule`]s keyed
/// by [`ScheduleKey`] (canonicalized ring shape + op + size + channel
/// count), shared across **communicators** — any two communicators whose
/// launches resolve to the same key get the same `Arc`, each rank
/// extracting its own work via `tasks_from_gpu`. Because the rings
/// themselves are part of the key, epoch and reconfiguration correctness
/// is structural: a reconfigured communicator's new rings form a new key,
/// while a rank still draining under the old epoch derives the old key
/// from its old rings and keeps hitting the old entry.
#[derive(Debug, Default)]
pub struct WorldScheduleCache {
    by_key: HashMap<ScheduleKey, Arc<CollectiveSchedule>>,
    hits: u64,
    misses: u64,
}

/// Cached schedules beyond this are assumed to be shapes retired by
/// reconfigurations or one-off sizes; the cache is dropped wholesale and
/// rebuilt on demand.
const SCHEDULE_CACHE_LIMIT: usize = 256;

impl WorldScheduleCache {
    /// The schedule under `key`, deriving and caching it on a miss.
    pub fn get_or_derive(
        &mut self,
        key: ScheduleKey,
        derive: impl FnOnce() -> CollectiveSchedule,
    ) -> Arc<CollectiveSchedule> {
        if let Some(s) = self.by_key.get(&key) {
            self.hits += 1;
            return Arc::clone(s);
        }
        self.misses += 1;
        if self.by_key.len() >= SCHEDULE_CACHE_LIMIT {
            self.by_key.clear();
        }
        let s = Arc::new(derive());
        self.by_key.insert(key, Arc::clone(&s));
        s
    }

    /// Whether `key` is already cached. Read-only — safe from the wave
    /// scheduler's concurrent plan phase, where engines probe the cache
    /// against the frozen world view to decide what to pre-derive.
    pub fn contains(&self, key: &ScheduleKey) -> bool {
        self.by_key.contains_key(key)
    }

    /// Insert a schedule derived off-thread (the plan phase). A no-op if
    /// `key` is already present — derivation is a pure function of the
    /// key, so a concurrent/stale plan can only ever insert the same
    /// value the serial path would have derived. Counts as a miss (the
    /// derivation did happen, just not on the scheduler thread).
    pub fn insert_derived(&mut self, key: ScheduleKey, schedule: CollectiveSchedule) {
        if self.by_key.contains_key(&key) {
            return;
        }
        self.misses += 1;
        if self.by_key.len() >= SCHEDULE_CACHE_LIMIT {
            self.by_key.clear();
        }
        self.by_key.insert(key, Arc::new(schedule));
    }

    /// (hits, misses) since construction — benchmark/test probe.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct schedules currently cached.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the cache holds no schedules.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

/// A corrective reconfiguration the controller has issued but whose
/// completion (every rank back in `Normal` at the target epoch) it has
/// not yet observed. Carried in checkpoints so a restarted controller can
/// re-drive the drain.
#[derive(Clone, Debug)]
pub struct DrainObligation {
    /// The exact configuration that was sent (target epoch inside) — a
    /// re-drive resends *this*, never a replanned variant, so ranks that
    /// already applied it see a duplicate epoch and drop it.
    pub config: CollectiveConfig,
    /// When it was (re-)issued, for the liveness rate limit.
    pub issued_at: Nanos,
    /// Whether this drain rolls the communicator back toward its healthy
    /// baseline (a fail-back) rather than away from a failure. Completion
    /// of a restorative drain triggers the fail-back retirement check.
    pub restorative: bool,
}

/// The controller's durable working state: everything the recovery
/// engine must not forget across a crash. Checkpointed periodically;
/// restart restores the last checkpoint and reconciles the gap.
#[derive(Clone, Debug, Default)]
pub struct ControllerState {
    /// In-flight Fig-4 drain obligations per communicator.
    pub issued: HashMap<CommunicatorId, DrainObligation>,
    /// Communicators currently steered off their healthy-fabric plan.
    pub detoured: BTreeSet<CommunicatorId>,
    /// Pre-detour channel rings per communicator — the fail-back
    /// baselines a repair edge restores.
    pub baselines: HashMap<CommunicatorId, Vec<RingOrder>>,
    /// Health-channel cursor at checkpoint time; the restarted engine
    /// resumes (or resyncs) from here.
    pub channel_seq: u64,
}

/// Controller availability counters. Deliberately outside
/// [`crate::health::HealthCounters`]: a crash + restart that reconciles
/// to a no-op must leave the observable digest identical to the
/// crash-free run, so none of this is hashed (the `scheduler_stats`
/// precedent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Controller crashes applied.
    pub crashes: u64,
    /// Controller restarts applied.
    pub restarts: u64,
    /// Cumulative nanoseconds the controller has been down.
    pub downtime_ns: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Post-restart reconciliation passes run.
    pub reconciliations: u64,
    /// Reconfiguration commands ranks fenced as coming from a dead
    /// controller incarnation.
    pub stale_fenced: u64,
}

/// The crashable controller process, as the world sees it: liveness, the
/// incarnation fence, live working state, and the last checkpoint.
#[derive(Debug, Default)]
pub struct Controller {
    /// Whether the controller is currently down (recovery engine and
    /// health monitor frozen).
    pub down: bool,
    /// When the current outage began; `Some` exactly while `down`.
    pub crashed_at: Option<Nanos>,
    /// Bumped on every restart. Every reconfiguration command carries the
    /// issuing incarnation so ranks can fence commands a dead incarnation
    /// left in flight.
    pub incarnation: u64,
    /// Set by a restart; consumed by the recovery engine's first
    /// post-restart poll, which runs the reconciliation pass.
    pub pending_restart: bool,
    /// Live working state (the recovery engine reads and writes this;
    /// world-resident so management and tests can inspect it).
    pub live: ControllerState,
    /// The last checkpoint; a restart restores `live` from it (or from
    /// empty state if none was ever taken).
    pub checkpoint: Option<ControllerState>,
    /// When the last checkpoint was taken.
    pub last_checkpoint_at: Option<Nanos>,
    /// Availability counters (digest-excluded).
    pub stats: ControllerStats,
}

/// Everything the engines share.
pub struct World {
    /// The provider's private topology.
    pub topo: Arc<Topology>,
    /// Virtual time.
    pub clock: Nanos,
    /// World-level randomness (latency jitter).
    pub rng: Rng,
    /// The flow-level network.
    pub net: Network,
    /// The simulated GPUs.
    pub devices: DeviceFabric,
    /// IPC latency model.
    pub ipc: IpcConfig,
    /// Service tuning knobs.
    pub svc: ServiceConfig,
    /// Scheduled wake-ups, sharded by rack bucket (shard 0 is the
    /// shared/global bucket; rack *r* maps to shard *r + 1*). With one
    /// shard this is exactly the old global queue; with more, racks with
    /// no mutual work keep their pending wakes apart and `next_time`
    /// becomes a k-way min over the shard heads. Pop order between
    /// same-instant wakes on different shards is unobservable — the
    /// payload is a bare [`WorldEvent::Wake`] tick.
    pub events: ShardedEventQueue<WorldEvent>,
    /// Tenant rank endpoints.
    pub endpoints: Vec<Endpoint>,
    /// Per-GPU proxy inboxes.
    pub proxy_inbox: Vec<LatencyQueue<ProxyMsg>>,
    /// Per-NIC transport inboxes.
    pub transport_inbox: Vec<LatencyQueue<TransportMsg>>,
    /// Per-NIC completed-flow events awaiting transport processing.
    pub transport_flow_events: Vec<Vec<FlowCompletion>>,
    /// Per-NIC killed-flow notifications (fault-injected aborts), as
    /// `(flow, token)`; the transport retries these immediately.
    pub transport_flow_failures: Vec<Vec<(FlowId, u64)>>,
    /// Which NIC's transport owns each in-flight network flow (dense,
    /// id-windowed — see [`FlowOwners`]).
    pub flow_owner_nic: FlowOwners,
    /// Completed flows owned by external (library-mode) engines, keyed by
    /// their owner handle.
    pub external_flow_events: HashMap<u32, Vec<FlowCompletion>>,
    next_external_owner: u32,
    /// Communicator state, keyed `(comm, gpu)` — owned by proxy engines,
    /// world-resident so the management API can inspect it. Mutate through
    /// [`World::comm_insert`] / [`World::comm_remove`] so the per-GPU
    /// index stays in sync.
    pub comms: BTreeMap<(CommunicatorId, GpuId), CommRank>,
    /// `gpu → sorted communicator ids with a rank on that GPU` — the
    /// proxy-poll index. Without it every proxy scans the cluster-wide
    /// `comms` map per poll, which is O(GPUs²) per step at scale.
    comms_by_gpu: Vec<Vec<CommunicatorId>>,
    /// Cluster-wide collective progress, keyed `(comm, seq)`.
    pub progress: HashMap<(CommunicatorId, u64), CollectiveProgress>,
    /// World-level schedule cache, shared across communicators and ranks.
    pub schedule_cache: WorldScheduleCache,
    /// Task-token -> collective routing.
    token_targets: HashMap<u64, (CommunicatorId, u64)>,
    next_token: u64,
    /// The installed fault schedule. `None` (production runs) keeps every
    /// fault code path inert: no timers, no events, no trace changes.
    pub fault_plan: Option<FaultPlan>,
    /// Past-dated plan events clamped to "now" by mid-run installs
    /// (install-semantics observability; see [`Self::install_fault_plan`]).
    pub clamped_fault_events: u64,
    /// While set, control-plane sends are buffered instead of delivered
    /// (the chaos driver's `hold_control`). Only ever true with a fault
    /// plan installed, so fault-free runs pay a single branch.
    control_held: bool,
    /// Buffered control messages with their already-drawn latencies, in
    /// send order.
    held_control: Vec<(GpuId, Nanos, ProxyMsg)>,
    /// Link/host status, failure events and recovery counters.
    pub health: HealthRegistry,
    /// The crashable controller process: liveness, incarnation fence,
    /// live recovery state, and the last checkpoint.
    pub controller: Controller,
    /// Controller policy the recovery engine consults for corrective
    /// configurations; `None` falls back to the built-in detour policy.
    pub recovery_policy: Option<Box<dyn RecoveryPolicy>>,
    /// Cluster-wide control-message send ordinal (orders `ControlFault`
    /// directives; the counter itself costs nothing).
    control_seq: u64,
    /// Collective traces (management plane).
    pub trace: TraceCollector,
    /// Tenant-perceived collective latencies (issue at the shim to
    /// completion at the shim), keyed by what the tenant observes.
    pub tenant_log: TenantLog,
    /// Application names, indexed by `AppId`.
    pub app_names: Vec<String>,
    /// Wake-resource signals raised since the scheduler last drained them
    /// (edge events; duplicates are fine).
    signals: Vec<ResourceId>,
}

/// Tenant-side latency bookkeeping, fed by the endpoint ports: a real
/// benchmark (nccl-tests style) measures at the application, which sees
/// the full IPC round trip on top of the service's internal latency.
#[derive(Default, Debug)]
pub struct TenantLog {
    /// (endpoint, req) -> push time of the collective command.
    pending_issue: HashMap<(usize, u64), Nanos>,
    /// (endpoint, comm, seq) -> issue time (after the launch ack named the seq).
    issued: HashMap<(usize, CommunicatorId, u64), Nanos>,
    /// Finished records — completed *and* cleanly failed collectives.
    records: Vec<TenantRecord>,
}

/// One finished collective as the tenant saw it: issue at the shim to
/// the final completion message — `CollectiveDone`, or `CollectiveFailed`
/// for work the service gave up on. Failed work still consumed tenant
/// time; JCT accounting that dropped it would silently flatter failures.
#[derive(Clone, Copy, Debug)]
pub struct TenantRecord {
    /// Owning application.
    pub app: AppId,
    /// Endpoint (rank attachment) index.
    pub endpoint: usize,
    /// The communicator.
    pub comm: CommunicatorId,
    /// Collective sequence number.
    pub seq: u64,
    /// When the tenant pushed the collective command.
    pub issued: Nanos,
    /// When the final completion (done or failed) arrived.
    pub finished: Nanos,
    /// Whether the collective failed instead of completing.
    pub failed: bool,
}

impl TenantLog {
    fn on_push(&mut self, endpoint: usize, cmd: &ShimCommand, now: Nanos) {
        if let ShimCommand::Collective { req, .. } = cmd {
            self.pending_issue.insert((endpoint, *req), now);
        }
    }

    fn on_pop(&mut self, endpoint: usize, app: AppId, comp: &ShimCompletion, now: Nanos) {
        match comp {
            ShimCompletion::CollectiveLaunched { req, seq } => {
                if let Some(t) = self.pending_issue.remove(&(endpoint, *req)) {
                    // The communicator arrives with the done message; store
                    // under a wildcard comm resolved at completion. Since
                    // an endpoint serves one rank, (endpoint, seq) pairs are
                    // unique per communicator in practice; we keep the comm
                    // from the completion. Use a placeholder comm of 0 and
                    // fix up at done time via (endpoint, seq) scan.
                    self.issued
                        .insert((endpoint, CommunicatorId(u64::MAX), *seq), t);
                }
            }
            ShimCompletion::CollectiveDone { comm, seq } => {
                self.finish(endpoint, app, *comm, *seq, now, false);
            }
            ShimCompletion::CollectiveFailed { comm, seq, .. } => {
                self.finish(endpoint, app, *comm, *seq, now, true);
            }
            _ => {}
        }
    }

    fn finish(
        &mut self,
        endpoint: usize,
        app: AppId,
        comm: CommunicatorId,
        seq: u64,
        now: Nanos,
        failed: bool,
    ) {
        let key_any = (endpoint, CommunicatorId(u64::MAX), seq);
        if let Some(t) = self.issued.remove(&key_any) {
            self.records.push(TenantRecord {
                app,
                endpoint,
                comm,
                seq,
                issued: t,
                finished: now,
                failed,
            });
        }
    }

    /// Tenant-perceived `(seq, issued, done)` records of one endpoint's
    /// **completed** collectives, in issue order — the success-only JCT
    /// view. Use [`Self::outcomes_of_endpoint`] when failed work must be
    /// counted too.
    pub fn latencies_of_endpoint(&self, endpoint: usize) -> Vec<(u64, Nanos, Nanos)> {
        let mut v: Vec<(u64, Nanos, Nanos)> = self
            .records
            .iter()
            .filter(|r| r.endpoint == endpoint && !r.failed)
            .map(|r| (r.seq, r.issued, r.finished))
            .collect();
        v.sort_by_key(|&(_, t, _)| t);
        v
    }

    /// Every finished collective of one endpoint — completed and failed —
    /// in issue order.
    pub fn outcomes_of_endpoint(&self, endpoint: usize) -> Vec<TenantRecord> {
        let mut v: Vec<TenantRecord> = self
            .records
            .iter()
            .filter(|r| r.endpoint == endpoint)
            .copied()
            .collect();
        v.sort_by_key(|r| r.issued);
        v
    }

    /// All records of an app (completed and failed).
    pub fn records_of_app(&self, app: AppId) -> Vec<TenantRecord> {
        self.records
            .iter()
            .filter(|r| r.app == app)
            .copied()
            .collect()
    }

    /// Every finished record, in completion order (the chaos explorer's
    /// oracle input).
    pub fn records(&self) -> &[TenantRecord] {
        &self.records
    }

    /// Collectives issued at the shim but not yet finished. Must be zero
    /// at clean quiescence — a nonzero value there means a completion was
    /// lost, which the explorer reports as an oracle violation.
    pub fn unfinished(&self) -> usize {
        self.pending_issue.len() + self.issued.len()
    }
}

impl World {
    /// A fresh world over `topo`.
    pub fn new(
        topo: Arc<Topology>,
        device_cfg: DeviceConfig,
        ipc: IpcConfig,
        svc: ServiceConfig,
        seed: u64,
    ) -> Self {
        let gpu_count = topo.gpus().len();
        let nic_count = topo.nics().len();
        let cap = ipc.queue_capacity;
        let health = HealthRegistry::with_channel_capacity(svc.health_channel_capacity);
        World {
            net: Network::new(Arc::clone(&topo)),
            devices: DeviceFabric::new(gpu_count, device_cfg),
            topo,
            clock: Nanos::ZERO,
            rng: Rng::seed_from(seed),
            ipc,
            svc,
            events: ShardedEventQueue::default(),
            endpoints: Vec::new(),
            proxy_inbox: (0..gpu_count).map(|_| LatencyQueue::new(cap)).collect(),
            transport_inbox: (0..nic_count).map(|_| LatencyQueue::new(cap)).collect(),
            transport_flow_events: vec![Vec::new(); nic_count],
            transport_flow_failures: vec![Vec::new(); nic_count],
            flow_owner_nic: FlowOwners::default(),
            external_flow_events: HashMap::new(),
            next_external_owner: 0,
            comms: BTreeMap::new(),
            comms_by_gpu: vec![Vec::new(); gpu_count],
            progress: HashMap::new(),
            schedule_cache: WorldScheduleCache::default(),
            token_targets: HashMap::new(),
            next_token: 1,
            fault_plan: None,
            clamped_fault_events: 0,
            control_held: false,
            held_control: Vec::new(),
            health,
            controller: Controller::default(),
            recovery_policy: None,
            control_seq: 0,
            trace: TraceCollector::new(),
            tenant_log: TenantLog::default(),
            app_names: Vec::new(),
            signals: Vec::new(),
        }
    }

    /// Raise a wake-resource signal (edge event; consumed by the pool on
    /// its next drain). Harmless under the naive scheduler, which drains
    /// and discards.
    pub fn signal(&mut self, r: ResourceId) {
        self.signals.push(r);
    }

    // ---- communicator index ---------------------------------------------

    /// Install (or replace) a communicator rank, keeping the per-GPU
    /// index in sync. Returns the prior rank, like `BTreeMap::insert`.
    pub fn comm_insert(
        &mut self,
        key: (CommunicatorId, GpuId),
        rank: CommRank,
    ) -> Option<CommRank> {
        let prior = self.comms.insert(key, rank);
        if prior.is_none() {
            let list = &mut self.comms_by_gpu[key.1.index()];
            if let Err(pos) = list.binary_search(&key.0) {
                list.insert(pos, key.0);
            }
        }
        prior
    }

    /// Remove a communicator rank, keeping the per-GPU index in sync.
    pub fn comm_remove(&mut self, key: (CommunicatorId, GpuId)) -> Option<CommRank> {
        let out = self.comms.remove(&key);
        if out.is_some() {
            let list = &mut self.comms_by_gpu[key.1.index()];
            if let Ok(pos) = list.binary_search(&key.0) {
                list.remove(pos);
            }
        }
        out
    }

    /// Communicators with a rank on `gpu`, in ascending id order — the
    /// same order a filtered scan of `comms` would visit them.
    pub fn comms_on_gpu(&self, gpu: GpuId) -> &[CommunicatorId] {
        &self.comms_by_gpu[gpu.index()]
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    // ---- time -----------------------------------------------------------

    /// The earliest future instant at which anything can happen.
    ///
    /// Only the event schedule and the self-timing substrates (network,
    /// devices, fault plan) are consulted: every queue push pairs with a
    /// `schedule_wake` at its visibility time, so a queue head that is
    /// not yet visible is always covered by a pending event. The debug
    /// assertion checks that invariant against the exhaustive scan on
    /// every call in debug builds.
    pub fn next_time(&self) -> Option<Nanos> {
        let mut best: Option<Nanos> = None;
        let mut consider = |t: Option<Nanos>| {
            if let Some(t) = t {
                if t > self.clock {
                    best = Some(best.map_or(t, |b| b.min(t)));
                }
            }
        };
        // The queue only exposes its head; a head at or before the clock
        // (scheduled during a poll at the current instant) must surface
        // as "immediately" rather than mask later entries behind it —
        // the advance drains it and re-exposes whatever follows.
        consider(
            self.events
                .next_time()
                .map(|t| t.max(self.clock + Nanos(1))),
        );
        consider(self.net.next_completion_time());
        consider(self.devices.next_time());
        if let Some(plan) = &self.fault_plan {
            consider(plan.next_time());
        }
        debug_assert_eq!(
            best,
            self.next_time_exhaustive(),
            "a queue became visible with no covering scheduled wake"
        );
        best
    }

    /// The original exhaustive next-time scan over every queue head —
    /// kept as the debug-mode oracle for [`Self::next_time`].
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn next_time_exhaustive(&self) -> Option<Nanos> {
        let mut best: Option<Nanos> = None;
        let mut consider = |t: Option<Nanos>| {
            if let Some(t) = t {
                if t > self.clock {
                    best = Some(best.map_or(t, |b| b.min(t)));
                }
            }
        };
        consider(
            self.events
                .next_time()
                .map(|t| t.max(self.clock + Nanos(1))),
        );
        consider(self.net.next_completion_time());
        consider(self.devices.next_time());
        if let Some(plan) = &self.fault_plan {
            consider(plan.next_time());
        }
        for ep in &self.endpoints {
            consider(ep.cmd.next_visible());
            consider(ep.comp.next_visible());
        }
        for q in &self.proxy_inbox {
            consider(q.next_visible());
        }
        for q in &self.transport_inbox {
            consider(q.next_visible());
        }
        best
    }

    /// Advance every substrate to `t`, routing network completions to
    /// their transports and device completions into collective progress.
    /// Scripted faults due on the way fire at their exact instants.
    pub fn advance_to(&mut self, t: Nanos) {
        assert!(t >= self.clock, "world time went backwards");
        while let Some(ft) = self.fault_plan.as_ref().and_then(|p| p.next_time()) {
            if ft > t {
                break;
            }
            // A plan installed "late" may script events in the past; they
            // fire now rather than rewinding the substrates.
            self.advance_substrates(ft.max(self.clock));
            let due = self
                .fault_plan
                .as_mut()
                .expect("plan checked above")
                .pop_due(ft);
            for ev in due {
                self.apply_fault(ev);
            }
        }
        self.advance_substrates(t);
    }

    fn advance_substrates(&mut self, t: Nanos) {
        for c in self.net.advance_to(t) {
            match self
                .flow_owner_nic
                .remove(c.id)
                .expect("completed flow has no registered owner")
            {
                FlowOwner::Transport(nic) => {
                    self.signals.push(resources::transport_flow(nic as u32));
                    self.transport_flow_events[nic].push(c);
                }
                FlowOwner::External(owner) => {
                    self.external_flow_events.entry(owner).or_default().push(c)
                }
            }
        }
        for n in self.devices.advance_to(t) {
            if let DeviceNotification::OpDone { token, at, .. } = n {
                self.complete_token(token, at);
            }
        }
        // Device completions can be silent (token-0 kernels, inline
        // records): the fabric's touched-GPU set covers those too, with
        // per-GPU attribution so only that GPU's engines wake.
        for gpu in self.devices.take_touched_gpus() {
            self.signals.push(resources::device_activity(gpu));
        }
        while self.events.pop_due(t).is_some() {}
        self.clock = t;
    }

    fn apply_fault(&mut self, ev: FaultEvent) {
        let now = self.clock;
        match ev {
            FaultEvent::LinkDown(link) => {
                self.net.set_link_up(now, link, false);
                self.health.link_down(link, now);
            }
            FaultEvent::LinkUp(link) => {
                self.net.set_link_up(now, link, true);
                self.health.link_up(link, now);
            }
            FaultEvent::LinkDegrade { link, milli } => {
                self.apply_degrade(link, milli);
            }
            FaultEvent::CorrelatedDegrade { links, milli } => {
                for &link in links.iter() {
                    self.apply_degrade(link, milli);
                }
            }
            FaultEvent::AbortFlowsOn(link) => {
                let victims = self.net.kill_flows_on_link(now, link);
                self.route_failed_flows(victims);
            }
            FaultEvent::CrashHost(host) => {
                self.health.host_down(host, now);
                let nics = self.topo.host(host).nics.clone();
                for nic in nics {
                    let victims = self.net.kill_flows_touching_nic(now, nic);
                    self.route_failed_flows(victims);
                }
            }
            FaultEvent::RestartHost(host) => {
                self.health.host_up(host, now);
            }
            // Controller liveness deliberately bypasses the health
            // registry: crash/restart must stay invisible to the
            // observable digest so a run whose restart reconciles to a
            // no-op hashes identically to the crash-free run.
            FaultEvent::CrashController => {
                if !self.controller.down {
                    self.controller.down = true;
                    self.controller.crashed_at = Some(now);
                    self.controller.stats.crashes += 1;
                    self.signals.push(resources::controller_status());
                }
            }
            FaultEvent::RestartController => {
                if self.controller.down {
                    let since = self
                        .controller
                        .crashed_at
                        .take()
                        .expect("down controller records its crash instant");
                    self.controller.stats.downtime_ns += now.0 - since.0;
                    self.controller.stats.restarts += 1;
                    self.controller.down = false;
                    self.controller.incarnation += 1;
                    // The in-memory working state died with the process;
                    // rebuild from the last checkpoint (empty if none).
                    self.controller.live = self.controller.checkpoint.clone().unwrap_or_default();
                    self.controller.pending_restart = true;
                    self.signals.push(resources::controller_status());
                }
            }
        }
    }

    fn apply_degrade(&mut self, link: LinkId, milli: u32) {
        let now = self.clock;
        let milli = milli.min(1000);
        self.net
            .set_link_degrade(now, link, f64::from(milli) / 1000.0);
        self.health.link_degraded(link, milli, now);
    }

    /// Hand fault-killed flows to their owning transports for retry.
    /// (Library-mode external flows are outside the fault model and are
    /// dropped silently — their owner never started under a service SLA.)
    fn route_failed_flows(&mut self, victims: Vec<(FlowId, u64)>) {
        for (id, token) in victims {
            match self
                .flow_owner_nic
                .remove(id)
                .expect("killed flow has no registered owner")
            {
                FlowOwner::Transport(nic) => {
                    self.signals.push(resources::transport_flow(nic as u32));
                    self.transport_flow_failures[nic].push((id, token));
                }
                FlowOwner::External(_) => {}
            }
        }
    }

    /// Install (or replace) the scripted fault plan, waking the engines
    /// parked on its absence.
    ///
    /// Mid-run installs have defined semantics: events scripted strictly
    /// before the current clock are clamped to "now" (counted in
    /// [`clamped_fault_events`](Self::clamped_fault_events)) instead of
    /// bursting as a fictitious history, and anything due at the current
    /// instant fires immediately — before the next engine poll — exactly
    /// where a plan installed at time zero would have fired it.
    pub fn install_fault_plan(&mut self, mut plan: FaultPlan) {
        self.clamped_fault_events += plan.clamp_before(self.clock) as u64;
        self.fault_plan = Some(plan);
        self.signal(resources::fault_plan_installed());
        let due_now = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.next_time())
            .is_some_and(|t| t <= self.clock);
        if due_now {
            // `next_time()` only reports strictly-future instants, so an
            // event at exactly `clock` would otherwise never surface.
            self.advance_to(self.clock);
        }
    }

    /// Inject one fault at the current virtual instant, live — the chaos
    /// driver's primitive. The event is appended to the installed plan
    /// (installing an empty one on demand) and fired through the same
    /// `pop_due`/`apply_fault` path as a pre-scripted event at this
    /// instant, so a driver-issued sequence is byte-identical to the
    /// equivalent script.
    pub fn inject_fault(&mut self, ev: FaultEvent) {
        let now = self.clock;
        self.fault_plan
            .get_or_insert_with(FaultPlan::new)
            .push_at(now, ev);
        self.signal(resources::fault_plan_installed());
        self.advance_to(now);
    }

    /// Buffer all subsequent control-plane sends until
    /// [`release_control`](Self::release_control) — the chaos driver's
    /// primitive for stretching a reconfiguration handshake across other
    /// faults. Arms the fault machinery (installs an empty plan) if
    /// nothing is installed yet.
    pub fn hold_control(&mut self) {
        if self.fault_plan.is_none() {
            self.install_fault_plan(FaultPlan::new());
        }
        self.control_held = true;
    }

    /// Deliver every held control message, preserving send order. Each
    /// message keeps the latency drawn at send time, so a hold-until-`t`
    /// is observably identical to scripting `delay_control` by
    /// `t - send_time` on each ordinal.
    pub fn release_control(&mut self) {
        self.control_held = false;
        let now = self.clock;
        for (gpu, lat, msg) in std::mem::take(&mut self.held_control) {
            self.proxy_inbox[gpu.index()]
                .push(now, lat, msg)
                .unwrap_or_else(|_| panic!("proxy inbox overflow on {gpu}"));
            let shard = self.gpu_event_shard(gpu);
            self.schedule_wake_on(shard, now + lat);
            self.signals
                .push(resources::proxy_inbox(gpu.index() as u32));
        }
    }

    /// Whether control-plane sends are currently being held.
    pub fn is_control_held(&self) -> bool {
        self.control_held
    }

    /// Control messages currently held.
    pub fn held_control_len(&self) -> usize {
        self.held_control.len()
    }

    /// Enqueue a device-stream op and raise device-activity signals so
    /// engines blocked on stream/event state re-poll. An inline-executed
    /// record can unblock waiters on other GPUs' streams, so every GPU
    /// the fabric touched is signalled, not just the enqueue target.
    pub fn device_enqueue(&mut self, stream: StreamId, op: mccs_device::StreamOp) {
        self.devices.enqueue(stream, op);
        for gpu in self.devices.take_touched_gpus() {
            self.signal(resources::device_activity(gpu));
        }
    }

    /// Schedule a payload-free wake-up on the shared/global shard.
    pub fn schedule_wake(&mut self, at: Nanos) {
        self.events.schedule_on(0, at, WorldEvent::Wake);
    }

    /// Schedule a payload-free wake-up on a specific rack shard
    /// (out-of-range shards clamp to the shared bucket inside the queue).
    pub fn schedule_wake_on(&mut self, shard: usize, at: Nanos) {
        self.events.schedule_on(shard, at, WorldEvent::Wake);
    }

    // ---- event sharding ----------------------------------------------------

    /// Number of event-queue shards (1 = the global single-queue oracle).
    pub fn event_shards(&self) -> usize {
        self.events.shards()
    }

    /// Re-shard the wake-event queue. Pending wakes keep their firing
    /// times (they all land in the shared bucket; only *future* wakes
    /// route by rack), so observable behaviour is unchanged.
    pub fn set_event_shards(&mut self, n: usize) {
        self.events.set_shards(n);
    }

    /// The event shard of a GPU: its host's rack bucket.
    pub fn gpu_event_shard(&self, gpu: GpuId) -> usize {
        self.rack_shard(self.topo.rack_of(self.topo.host_of_gpu(gpu)))
    }

    /// The event shard of a NIC: its host's rack bucket.
    pub fn nic_event_shard(&self, nic: NicId) -> usize {
        self.rack_shard(self.topo.rack_of(self.topo.nics()[nic.index()].host))
    }

    fn rack_shard(&self, rack: mccs_topology::RackId) -> usize {
        let s = rack.index() + 1;
        if s < self.events.shards() {
            s
        } else {
            0
        }
    }

    // ---- collective progress ------------------------------------------------

    /// Register a rank's launch: bumps the launched count, adds its local
    /// task count, and returns fresh tokens for those tasks.
    pub fn register_launch(
        &mut self,
        comm: CommunicatorId,
        seq: u64,
        epoch: u64,
        expected_ranks: usize,
        local_tasks: usize,
    ) -> Vec<u64> {
        let now = self.clock;
        let prog = self
            .progress
            .entry((comm, seq))
            .or_insert_with(|| CollectiveProgress::new(expected_ranks, epoch, now));
        assert_eq!(
            prog.expected_ranks, expected_ranks,
            "ranks disagree on communicator size"
        );
        assert_eq!(
            prog.epoch, epoch,
            "ranks disagree on the execution epoch of {comm} seq {seq}"
        );
        prog.launched_ranks += 1;
        assert!(
            prog.launched_ranks <= prog.expected_ranks,
            "more launches than ranks for {comm} seq {seq}"
        );
        prog.outstanding_tasks += local_tasks;
        let tokens: Vec<u64> = (0..local_tasks)
            .map(|i| self.next_token + i as u64)
            .collect();
        for &t in &tokens {
            self.token_targets.insert(t, (comm, seq));
        }
        self.next_token += local_tasks as u64;
        prog.maybe_complete(now);
        // Launches and task completions are only observable through the
        // completed/failed predicates, so signal on those transitions
        // alone — a per-task signal would wake every rank of the
        // communicator once per task for nothing.
        if prog.completed_at.is_some() {
            self.signals.push(resources::progress(comm));
        }
        tokens
    }

    /// Mark one task token finished at `at`.
    pub fn complete_token(&mut self, token: u64, at: Nanos) {
        let (comm, seq) = self
            .token_targets
            .remove(&token)
            .unwrap_or_else(|| panic!("completion for unknown token {token}"));
        let prog = self
            .progress
            .get_mut(&(comm, seq))
            .expect("progress entry exists while tokens are live");
        assert!(prog.outstanding_tasks > 0, "token underflow");
        prog.outstanding_tasks -= 1;
        prog.maybe_complete(at);
        if prog.completed_at.is_some() {
            self.signals.push(resources::progress(comm));
        }
    }

    /// When a collective completed (if it has).
    pub fn collective_completed_at(&self, comm: CommunicatorId, seq: u64) -> Option<Nanos> {
        self.progress.get(&(comm, seq)).and_then(|p| p.completed_at)
    }

    /// Mark the collective owning `token` as failed and consume the token
    /// (a transport exhausted its retries on the task's flow). Returns the
    /// collective so the caller can log it.
    pub fn fail_token(&mut self, token: u64) -> (CommunicatorId, u64) {
        let (comm, seq) = self
            .token_targets
            .remove(&token)
            .unwrap_or_else(|| panic!("failure for unknown token {token}"));
        let prog = self
            .progress
            .get_mut(&(comm, seq))
            .expect("progress entry exists while tokens are live");
        assert!(prog.outstanding_tasks > 0, "token underflow");
        prog.outstanding_tasks -= 1;
        prog.failed = true;
        self.signals.push(resources::progress(comm));
        (comm, seq)
    }

    /// Force-fail a collective cluster-wide (recovery exhausted): it will
    /// never complete; every rank cleanly fails it to its tenant.
    pub fn abort_collective(&mut self, comm: CommunicatorId, seq: u64) {
        if let Some(prog) = self.progress.get_mut(&(comm, seq)) {
            prog.failed = true;
            self.signals.push(resources::progress(comm));
        }
    }

    /// Whether a collective has been marked failed.
    pub fn collective_failed(&self, comm: CommunicatorId, seq: u64) -> bool {
        self.progress.get(&(comm, seq)).is_some_and(|p| p.failed)
    }

    // ---- messaging helpers -------------------------------------------------

    /// Push to a GPU's proxy inbox with one internal engine hop of latency.
    pub fn send_to_proxy(&mut self, gpu: GpuId, msg: ProxyMsg) {
        let lat = self.ipc.sample_hop_latency(&mut self.rng);
        let now = self.clock;
        self.proxy_inbox[gpu.index()]
            .push(now, lat, msg)
            .unwrap_or_else(|_| panic!("proxy inbox overflow on {gpu}"));
        let shard = self.gpu_event_shard(gpu);
        self.schedule_wake_on(shard, now + lat);
        self.signals
            .push(resources::proxy_inbox(gpu.index() as u32));
    }

    /// Push to a NIC's transport inbox with one internal engine hop.
    pub fn send_to_transport(&mut self, nic: NicId, msg: TransportMsg) {
        let lat = self.ipc.sample_hop_latency(&mut self.rng);
        let now = self.clock;
        self.transport_inbox[nic.index()]
            .push(now, lat, msg)
            .unwrap_or_else(|_| panic!("transport inbox overflow on {nic}"));
        let shard = self.nic_event_shard(nic);
        self.schedule_wake_on(shard, now + lat);
        self.signals
            .push(resources::transport_inbox(nic.index() as u32));
    }

    /// Push a completion back to a tenant endpoint.
    pub fn send_completion(&mut self, endpoint: usize, completion: ShimCompletion) {
        let lat = self.ipc.sample_completion_latency(&mut self.rng);
        let now = self.clock;
        self.endpoints[endpoint]
            .comp
            .push(now, lat, completion)
            .unwrap_or_else(|_| panic!("completion queue overflow on endpoint {endpoint}"));
        let shard = self.gpu_event_shard(self.endpoints[endpoint].gpu);
        self.schedule_wake_on(shard, now + lat);
        self.signals.push(resources::endpoint_comp(endpoint as u32));
    }

    /// Deliver a control-plane message to a proxy with control-channel
    /// latency and jitter (reconfiguration requests, barrier gossip).
    pub fn send_control(&mut self, gpu: GpuId, msg: ProxyMsg) {
        let base = self.svc.control_ring_latency;
        // The jitter draw happens before any fault directive is consulted
        // so the RNG stream is identical with and without a plan.
        let jit = 1.0 + self.rng.f64() * self.svc.control_jitter_frac;
        let mut lat = base.mul_f64(jit);
        let ordinal = self.control_seq;
        self.control_seq += 1;
        if let Some(plan) = self.fault_plan.as_mut() {
            match plan.control_fault(ordinal) {
                Some(ControlFault::Drop) => return,
                Some(ControlFault::Delay(by)) => lat += by,
                None => {}
            }
        }
        if self.control_held {
            // Park the message with its drawn latency; `release_control`
            // replays it from the release instant.
            self.held_control.push((gpu, lat, msg));
            return;
        }
        let now = self.clock;
        self.proxy_inbox[gpu.index()]
            .push(now, lat, msg)
            .unwrap_or_else(|_| panic!("proxy inbox overflow on {gpu}"));
        let shard = self.gpu_event_shard(gpu);
        self.schedule_wake_on(shard, now + lat);
        self.signals
            .push(resources::proxy_inbox(gpu.index() as u32));
    }

    /// The send ordinal the *next* control message will get — what a
    /// [`FaultPlan`] keys its drop/delay directives on. Read it right
    /// before triggering a reconfiguration to target its Req messages.
    pub fn control_ordinal(&self) -> u64 {
        self.control_seq
    }

    /// Allocate an owner handle for an external (library-mode) engine.
    pub fn alloc_external_owner(&mut self) -> u32 {
        let o = self.next_external_owner;
        self.next_external_owner += 1;
        o
    }

    /// Drain the completed flows of an external owner.
    pub fn take_external_events(&mut self, owner: u32) -> Vec<FlowCompletion> {
        self.external_flow_events.remove(&owner).unwrap_or_default()
    }

    /// The GPUs an application's endpoints occupy.
    pub fn app_gpus(&self, app: AppId) -> Vec<GpuId> {
        self.endpoints
            .iter()
            .filter(|e| e.app == app)
            .map(|e| e.gpu)
            .collect()
    }
}

impl WakeSource for World {
    fn now(&self) -> Nanos {
        self.clock
    }

    fn drain_signals(&mut self, into: &mut Vec<ResourceId>) {
        if self.health.take_signal() {
            self.signals.push(resources::health_channel());
        }
        into.append(&mut self.signals);
    }
}

/// The concurrent engine plan phase reads `&World` from worker threads;
/// this assertion keeps the world `Sync` (compile error here means some
/// field regained non-thread-safe interior mutability).
#[allow(dead_code)]
fn _assert_world_sync() {
    fn is_sync<T: Sync>() {}
    is_sync::<World>();
}

/// A borrow of the world scoped to one endpoint, implementing the tenant's
/// [`ShimPort`]. Constructed per poll by the app engine.
pub struct EndpointPort<'a> {
    /// The world.
    pub world: &'a mut World,
    /// Index into `world.endpoints`.
    pub idx: usize,
}

impl ShimPort for EndpointPort<'_> {
    fn now(&self) -> Nanos {
        self.world.clock
    }

    fn try_push(&mut self, cmd: ShimCommand) -> bool {
        let now = self.world.clock;
        let cfg = self.world.ipc.clone();
        self.world.tenant_log.on_push(self.idx, &cmd, now);
        let ep = &mut self.world.endpoints[self.idx];
        let lat = cfg.sample_command_latency(&mut ep.rng);
        match ep.cmd.push(now, lat, cmd) {
            Ok(()) => {
                let shard = self
                    .world
                    .gpu_event_shard(self.world.endpoints[self.idx].gpu);
                self.world
                    .events
                    .schedule_on(shard, now + lat, WorldEvent::Wake);
                self.world
                    .signals
                    .push(resources::endpoint_cmd(self.idx as u32));
                true
            }
            Err(_) => false,
        }
    }

    fn try_pop(&mut self) -> Option<ShimCompletion> {
        let now = self.world.clock;
        let app = self.world.endpoints[self.idx].app;
        let comp = self.world.endpoints[self.idx].comp.pop(now);
        if let Some(c) = &comp {
            self.world.tenant_log.on_pop(self.idx, app, c, now);
        }
        comp
    }

    fn open_handle(&self, handle: MemHandle) -> Option<DevicePtr> {
        self.world.devices.open(handle).ok()
    }

    fn app_stream(&self) -> StreamId {
        self.world.endpoints[self.idx].app_stream
    }

    fn create_event(&mut self) -> EventId {
        self.world.devices.create_event()
    }

    fn enqueue_kernel(&mut self, stream: StreamId, duration: Nanos) {
        self.world
            .device_enqueue(stream, mccs_device::StreamOp::Kernel { duration, token: 0 });
    }

    fn enqueue_record(&mut self, stream: StreamId, event: EventId) {
        self.world
            .device_enqueue(stream, mccs_device::StreamOp::RecordEvent(event));
    }

    fn enqueue_wait(&mut self, stream: StreamId, event: EventId) {
        self.world
            .device_enqueue(stream, mccs_device::StreamOp::WaitEvent(event));
    }

    fn stream_idle(&self, stream: StreamId) -> bool {
        self.world.devices.stream_idle(stream)
    }

    fn event_time(&self, event: EventId) -> Option<Nanos> {
        self.world.devices.event_time(event)
    }

    fn rng(&mut self) -> &mut Rng {
        &mut self.world.endpoints[self.idx].rng
    }

    fn schedule_wake(&mut self, at: Nanos) {
        let shard = self
            .world
            .gpu_event_shard(self.world.endpoints[self.idx].gpu);
        self.world.schedule_wake_on(shard, at);
        let ep = &mut self.world.endpoints[self.idx];
        ep.next_app_wake = Some(ep.next_app_wake.map_or(at, |t| t.min(at)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_topology::presets;

    fn world() -> World {
        World::new(
            Arc::new(presets::testbed()),
            DeviceConfig::default(),
            IpcConfig::default(),
            ServiceConfig::default(),
            1,
        )
    }

    #[test]
    fn construction_sizes_queues_by_topology() {
        let w = world();
        assert_eq!(w.proxy_inbox.len(), 8);
        assert_eq!(w.transport_inbox.len(), 8);
        assert_eq!(w.devices.gpu_count(), 8);
    }

    #[test]
    fn progress_lifecycle() {
        let mut w = world();
        let comm = CommunicatorId(1);
        let t0 = w.register_launch(comm, 0, 0, 2, 2);
        assert_eq!(t0.len(), 2);
        assert!(w.collective_completed_at(comm, 0).is_none());
        let t1 = w.register_launch(comm, 0, 0, 2, 1);
        assert_eq!(t1.len(), 1);
        w.complete_token(t0[0], Nanos::from_micros(10));
        w.complete_token(t0[1], Nanos::from_micros(20));
        assert!(w.collective_completed_at(comm, 0).is_none());
        w.complete_token(t1[0], Nanos::from_micros(30));
        assert_eq!(
            w.collective_completed_at(comm, 0),
            Some(Nanos::from_micros(30))
        );
    }

    #[test]
    fn zero_task_collective_completes_on_last_launch() {
        let mut w = world();
        let comm = CommunicatorId(2);
        w.register_launch(comm, 0, 0, 2, 0);
        assert!(w.collective_completed_at(comm, 0).is_none());
        w.register_launch(comm, 0, 0, 2, 0);
        assert_eq!(w.collective_completed_at(comm, 0), Some(Nanos::ZERO));
    }

    #[test]
    fn failed_collective_never_completes() {
        let mut w = world();
        let comm = CommunicatorId(3);
        let t0 = w.register_launch(comm, 0, 0, 1, 2);
        assert_eq!(w.fail_token(t0[0]), (comm, 0));
        w.complete_token(t0[1], Nanos::from_micros(5));
        assert!(w.collective_failed(comm, 0));
        assert_eq!(w.collective_completed_at(comm, 0), None);
    }

    #[test]
    #[should_panic(expected = "disagree on the execution epoch")]
    fn epoch_disagreement_rejected() {
        let mut w = world();
        let comm = CommunicatorId(4);
        w.register_launch(comm, 0, 0, 2, 0);
        w.register_launch(comm, 0, 1, 2, 0);
    }

    #[test]
    #[should_panic(expected = "unknown token")]
    fn unknown_token_rejected() {
        let mut w = world();
        w.complete_token(999, Nanos::ZERO);
    }

    #[test]
    fn next_time_sees_queued_messages() {
        let mut w = world();
        assert_eq!(w.next_time(), None);
        w.send_to_proxy(
            GpuId(0),
            ProxyMsg::CommDestroy {
                endpoint: 0,
                req: 0,
                comm: CommunicatorId(0),
            },
        );
        let t = w.next_time().expect("queued message");
        assert!(t > Nanos::ZERO);
        w.advance_to(t);
        // message is visible now, not in the future
        assert!(w.proxy_inbox[0].pop(w.clock).is_some());
    }

    #[test]
    fn control_jitter_varies_delivery() {
        let mut w = world();
        let mut times = Vec::new();
        for g in 0..4u32 {
            w.send_control(
                GpuId(g),
                ProxyMsg::CommDestroy {
                    endpoint: 0,
                    req: 0,
                    comm: CommunicatorId(0),
                },
            );
            times.push(w.proxy_inbox[g as usize].next_visible().expect("sent"));
        }
        // with 50% jitter, four sends almost surely differ
        let distinct: std::collections::BTreeSet<_> = times.iter().collect();
        assert!(distinct.len() > 1, "no jitter across control sends");
    }
}
