//! The frontend engine — one per application per host.
//!
//! Terminates the shim command queues of the application's ranks on this
//! host: services memory management directly against the device fabric
//! (allocation redirection with IPC handles, §4.1) and forwards
//! communicator and collective commands to the owning proxy engines.

use crate::messages::ProxyMsg;
use crate::world::{resources, World};
use mccs_ipc::{AppId, ErrorCode, ShimCommand, ShimCompletion};
use mccs_sim::{Engine, EnginePlan, Footprint, Poll, Wake, WakeSet};
use mccs_topology::{GpuId, HostId};

/// The frontend's plan-phase output: the validation context its visible
/// commands will be checked against. The app→GPU assignment is fixed at
/// `add_app` time and never mutated by engines, so a set computed against
/// the frozen wave view is valid for the whole commit — the frontend's
/// per-command `gpu_allowed` scan over every world endpoint collapses to
/// a sorted-set probe.
struct FrontendPlan {
    /// GPUs assigned to this frontend's application, sorted.
    allowed_gpus: Vec<GpuId>,
}

/// The per-(application, host) frontend engine.
pub struct FrontendEngine {
    app: AppId,
    host: HostId,
    /// Endpoint indices this frontend serves (the app's ranks on `host`).
    endpoints: Vec<usize>,
    /// Allowed-GPU set from the current commit's plan (cleared after each
    /// `progress_planned`; `None` = validate by scanning the world).
    planned_allowed: Option<Vec<GpuId>>,
}

impl FrontendEngine {
    /// A frontend serving `endpoints` of `app` on `host`.
    pub fn new(app: AppId, host: HostId, endpoints: Vec<usize>) -> Self {
        FrontendEngine {
            app,
            host,
            endpoints,
            planned_allowed: None,
        }
    }

    fn gpu_allowed(&self, w: &World, endpoint: usize, gpu: GpuId) -> bool {
        // Tenant isolation: an app may only touch GPUs assigned to it.
        let _ = endpoint;
        if let Some(allowed) = &self.planned_allowed {
            return allowed.binary_search(&gpu).is_ok();
        }
        w.endpoints
            .iter()
            .any(|e| e.app == self.app && e.gpu == gpu)
    }

    fn handle(&mut self, w: &mut World, endpoint: usize, cmd: ShimCommand) {
        match cmd {
            ShimCommand::MemAlloc { req, gpu, size } => {
                if !self.gpu_allowed(w, endpoint, gpu) {
                    w.send_completion(
                        endpoint,
                        ShimCompletion::Error {
                            req,
                            code: ErrorCode::InvalidArgument,
                            message: format!("{gpu} is not assigned to this application"),
                        },
                    );
                    return;
                }
                match w.devices.alloc(gpu, size) {
                    Ok(handle) => {
                        w.send_completion(endpoint, ShimCompletion::MemAlloc { req, handle })
                    }
                    Err(e) => w.send_completion(
                        endpoint,
                        ShimCompletion::Error {
                            req,
                            code: ErrorCode::InvalidArgument,
                            message: format!("allocation failed: {e}"),
                        },
                    ),
                }
            }
            ShimCommand::MemFree { req, handle } => match w.devices.free(handle) {
                Ok(()) => w.send_completion(endpoint, ShimCompletion::MemFree { req }),
                Err(e) => w.send_completion(
                    endpoint,
                    ShimCompletion::Error {
                        req,
                        code: ErrorCode::InvalidArgument,
                        message: format!("free failed: {e}"),
                    },
                ),
            },
            ShimCommand::CommInit {
                req,
                comm,
                world,
                rank,
            } => {
                let gpu = w.endpoints[endpoint].gpu;
                if world.get(rank).copied() != Some(gpu) {
                    w.send_completion(
                        endpoint,
                        ShimCompletion::Error {
                            req,
                            code: ErrorCode::InvalidUsage,
                            message: format!(
                                "rank {rank} of {comm} does not map to this endpoint's {gpu}"
                            ),
                        },
                    );
                    return;
                }
                // The communicator's service-side completion event, shared
                // back to the shim through the init completion.
                let comm_event = w.devices.create_event();
                w.send_to_proxy(
                    gpu,
                    ProxyMsg::RegisterRank {
                        app: self.app,
                        endpoint,
                        comm,
                        world,
                        rank,
                        comm_event,
                    },
                );
                w.send_completion(
                    endpoint,
                    ShimCompletion::CommInit {
                        req,
                        comm,
                        comm_event,
                    },
                );
            }
            ShimCommand::CommDestroy { req, comm } => {
                let gpu = w.endpoints[endpoint].gpu;
                w.send_to_proxy(
                    gpu,
                    ProxyMsg::CommDestroy {
                        endpoint,
                        req,
                        comm,
                    },
                );
            }
            ShimCommand::Collective { req, coll } => {
                let gpu = w.endpoints[endpoint].gpu;
                w.send_to_proxy(
                    gpu,
                    ProxyMsg::Collective {
                        endpoint,
                        req,
                        coll,
                    },
                );
            }
        }
    }
}

impl Engine<World> for FrontendEngine {
    fn progress(&mut self, w: &mut World) -> Poll {
        let mut progressed = false;
        for i in 0..self.endpoints.len() {
            let endpoint = self.endpoints[i];
            let mut popped = false;
            loop {
                let now = w.clock;
                let Some(cmd) = w.endpoints[endpoint].cmd.pop(now) else {
                    break;
                };
                popped = true;
                self.handle(w, endpoint, cmd);
                progressed = true;
            }
            if popped {
                // Space freed: resume any rank back-pressured on this
                // command queue.
                w.signal(resources::endpoint_cmd_space(endpoint as u32));
            }
        }
        if progressed {
            Poll::Progressed
        } else {
            Poll::Idle
        }
    }

    /// Read phase: pre-compute the validation context for the visible
    /// command prefix — the app's allowed-GPU set, normally re-scanned
    /// from every world endpoint per `MemAlloc`/`CommInit`. Planned only
    /// when at least one served endpoint has a visible command, so idle
    /// frontends contribute nothing to the wave's plan fan-out.
    fn plan(&self, w: &World) -> Option<EnginePlan> {
        let any_visible = self
            .endpoints
            .iter()
            .any(|&e| w.endpoints[e].cmd.peek(w.clock).is_some());
        if !any_visible {
            return None;
        }
        let mut allowed_gpus: Vec<GpuId> = w
            .endpoints
            .iter()
            .filter(|e| e.app == self.app)
            .map(|e| e.gpu)
            .collect();
        allowed_gpus.sort_unstable();
        allowed_gpus.dedup();
        Some(EnginePlan::new(FrontendPlan { allowed_gpus }))
    }

    /// Commit phase: validate popped commands against the plan's
    /// allowed-GPU set instead of rescanning the world, then clear it —
    /// the set is only guaranteed for this commit's frozen view.
    fn progress_planned(&mut self, w: &mut World, plan: EnginePlan) -> Poll {
        if let Some(p) = plan.downcast::<FrontendPlan>() {
            self.planned_allowed = Some(p.allowed_gpus);
        }
        let poll = self.progress(w);
        self.planned_allowed = None;
        poll
    }

    fn wake_when(&self, w: &World) -> Wake {
        // One command-queue resource per served endpoint, plus the
        // earliest not-yet-visible head as a deadline (pushes signal at
        // push time; visibility lags by the sampled IPC latency).
        let mut ws = WakeSet::new();
        for &endpoint in &self.endpoints {
            ws.watch(resources::endpoint_cmd(endpoint as u32));
            ws.deadline_opt(w.endpoints[endpoint].cmd.next_visible());
        }
        ws.build()
    }

    /// A frontend touches the queues of the endpoints it serves (pops
    /// commands, frees back-pressure space, pushes error completions)
    /// and the proxy inboxes of those endpoints' GPUs, to which it
    /// forwards the decoded requests.
    fn footprint(&self, w: &World) -> Footprint {
        let mut rs = Vec::with_capacity(self.endpoints.len() * 4);
        for &endpoint in &self.endpoints {
            rs.push(resources::endpoint_cmd(endpoint as u32));
            rs.push(resources::endpoint_cmd_space(endpoint as u32));
            rs.push(resources::endpoint_comp(endpoint as u32));
            rs.push(resources::proxy_inbox(
                w.endpoints[endpoint].gpu.index() as u32
            ));
        }
        Footprint::Resources(rs)
    }

    fn name(&self) -> String {
        format!("frontend({}, {})", self.app, self.host)
    }
}
