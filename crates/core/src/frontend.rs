//! The frontend engine — one per application per host.
//!
//! Terminates the shim command queues of the application's ranks on this
//! host: services memory management directly against the device fabric
//! (allocation redirection with IPC handles, §4.1) and forwards
//! communicator and collective commands to the owning proxy engines.

use crate::messages::ProxyMsg;
use crate::world::{resources, World};
use mccs_ipc::{AppId, ErrorCode, ShimCommand, ShimCompletion};
use mccs_sim::{Engine, Footprint, Poll, Wake, WakeSet};
use mccs_topology::{GpuId, HostId};

/// The per-(application, host) frontend engine.
pub struct FrontendEngine {
    app: AppId,
    host: HostId,
    /// Endpoint indices this frontend serves (the app's ranks on `host`).
    endpoints: Vec<usize>,
}

impl FrontendEngine {
    /// A frontend serving `endpoints` of `app` on `host`.
    pub fn new(app: AppId, host: HostId, endpoints: Vec<usize>) -> Self {
        FrontendEngine {
            app,
            host,
            endpoints,
        }
    }

    fn gpu_allowed(&self, w: &World, endpoint: usize, gpu: GpuId) -> bool {
        // Tenant isolation: an app may only touch GPUs assigned to it.
        let _ = endpoint;
        w.endpoints
            .iter()
            .any(|e| e.app == self.app && e.gpu == gpu)
    }

    fn handle(&mut self, w: &mut World, endpoint: usize, cmd: ShimCommand) {
        match cmd {
            ShimCommand::MemAlloc { req, gpu, size } => {
                if !self.gpu_allowed(w, endpoint, gpu) {
                    w.send_completion(
                        endpoint,
                        ShimCompletion::Error {
                            req,
                            code: ErrorCode::InvalidArgument,
                            message: format!("{gpu} is not assigned to this application"),
                        },
                    );
                    return;
                }
                match w.devices.alloc(gpu, size) {
                    Ok(handle) => {
                        w.send_completion(endpoint, ShimCompletion::MemAlloc { req, handle })
                    }
                    Err(e) => w.send_completion(
                        endpoint,
                        ShimCompletion::Error {
                            req,
                            code: ErrorCode::InvalidArgument,
                            message: format!("allocation failed: {e}"),
                        },
                    ),
                }
            }
            ShimCommand::MemFree { req, handle } => match w.devices.free(handle) {
                Ok(()) => w.send_completion(endpoint, ShimCompletion::MemFree { req }),
                Err(e) => w.send_completion(
                    endpoint,
                    ShimCompletion::Error {
                        req,
                        code: ErrorCode::InvalidArgument,
                        message: format!("free failed: {e}"),
                    },
                ),
            },
            ShimCommand::CommInit {
                req,
                comm,
                world,
                rank,
            } => {
                let gpu = w.endpoints[endpoint].gpu;
                if world.get(rank).copied() != Some(gpu) {
                    w.send_completion(
                        endpoint,
                        ShimCompletion::Error {
                            req,
                            code: ErrorCode::InvalidUsage,
                            message: format!(
                                "rank {rank} of {comm} does not map to this endpoint's {gpu}"
                            ),
                        },
                    );
                    return;
                }
                // The communicator's service-side completion event, shared
                // back to the shim through the init completion.
                let comm_event = w.devices.create_event();
                w.send_to_proxy(
                    gpu,
                    ProxyMsg::RegisterRank {
                        app: self.app,
                        endpoint,
                        comm,
                        world,
                        rank,
                        comm_event,
                    },
                );
                w.send_completion(
                    endpoint,
                    ShimCompletion::CommInit {
                        req,
                        comm,
                        comm_event,
                    },
                );
            }
            ShimCommand::CommDestroy { req, comm } => {
                let gpu = w.endpoints[endpoint].gpu;
                w.send_to_proxy(
                    gpu,
                    ProxyMsg::CommDestroy {
                        endpoint,
                        req,
                        comm,
                    },
                );
            }
            ShimCommand::Collective { req, coll } => {
                let gpu = w.endpoints[endpoint].gpu;
                w.send_to_proxy(
                    gpu,
                    ProxyMsg::Collective {
                        endpoint,
                        req,
                        coll,
                    },
                );
            }
        }
    }
}

impl Engine<World> for FrontendEngine {
    fn progress(&mut self, w: &mut World) -> Poll {
        let mut progressed = false;
        for i in 0..self.endpoints.len() {
            let endpoint = self.endpoints[i];
            let mut popped = false;
            loop {
                let now = w.clock;
                let Some(cmd) = w.endpoints[endpoint].cmd.pop(now) else {
                    break;
                };
                popped = true;
                self.handle(w, endpoint, cmd);
                progressed = true;
            }
            if popped {
                // Space freed: resume any rank back-pressured on this
                // command queue.
                w.signal(resources::endpoint_cmd_space(endpoint as u32));
            }
        }
        if progressed {
            Poll::Progressed
        } else {
            Poll::Idle
        }
    }

    fn wake_when(&self, w: &World) -> Wake {
        // One command-queue resource per served endpoint, plus the
        // earliest not-yet-visible head as a deadline (pushes signal at
        // push time; visibility lags by the sampled IPC latency).
        let mut ws = WakeSet::new();
        for &endpoint in &self.endpoints {
            ws.watch(resources::endpoint_cmd(endpoint as u32));
            ws.deadline_opt(w.endpoints[endpoint].cmd.next_visible());
        }
        ws.build()
    }

    /// A frontend touches the queues of the endpoints it serves (pops
    /// commands, frees back-pressure space, pushes error completions)
    /// and the proxy inboxes of those endpoints' GPUs, to which it
    /// forwards the decoded requests.
    fn footprint(&self, w: &World) -> Footprint {
        let mut rs = Vec::with_capacity(self.endpoints.len() * 4);
        for &endpoint in &self.endpoints {
            rs.push(resources::endpoint_cmd(endpoint as u32));
            rs.push(resources::endpoint_cmd_space(endpoint as u32));
            rs.push(resources::endpoint_comp(endpoint as u32));
            rs.push(resources::proxy_inbox(
                w.endpoints[endpoint].gpu.index() as u32
            ));
        }
        Footprint::Resources(rs)
    }

    fn name(&self) -> String {
        format!("frontend({}, {})", self.app, self.host)
    }
}
